//! Cross-crate integration tests exercising the complete stack the way a
//! downstream user would.

use cf_algos::{msn, refmodel, tests, Shape, Variant};
use cf_memmodel::Mode;
use checkfence::{
    commit::AbstractType, mine_reference, CheckOutcome, Engine, EngineConfig, Harness, OpSig,
    Query, TestSpec,
};

#[test]
fn full_pipeline_on_a_custom_data_type() {
    // A user-defined data type: a single-slot mailbox with overwrite
    // semantics, checked end to end from source text, fenced and not.
    let mk = |fenced: bool| {
        let (ss, ll) = if fenced {
            (r#"fence("store-store");"#, r#"fence("load-load");"#)
        } else {
            ("", "")
        };
        let src = format!(
            r#"
            int full;
            int slot;
            void put_op(int v) {{
                slot = v;
                {ss}
                full = 1;
            }}
            int take_op() {{
                int f = full;
                {ll}
                if (f == 1) {{ return slot + 1; }}
                return 0;
            }}
            "#
        );
        let program = cf_minic::compile(&src).expect("compiles");
        Harness {
            name: "mailbox".into(),
            program,
            init_proc: None,
            ops: vec![
                OpSig {
                    key: 'p',
                    proc_name: "put_op".into(),
                    num_args: 1,
                    has_ret: false,
                },
                OpSig {
                    key: 't',
                    proc_name: "take_op".into(),
                    num_args: 0,
                    has_ret: true,
                },
            ],
        }
    };
    let test = TestSpec::parse("mbox", "( p | tt )").expect("parses");
    let unfenced = mk(false);
    let fenced = mk(true);
    let spec = mine_reference(&unfenced, &test).expect("mines").spec;
    assert!(spec.vectors.iter().all(|o| o.len() == 3));
    let mut engine = Engine::new(EngineConfig::default());
    let batch = [
        Query::check_inclusion(&unfenced, &test, spec.clone()).on(Mode::Relaxed),
        Query::check_inclusion(&unfenced, &test, spec.clone()).on(Mode::Sc),
        Query::check_inclusion(&fenced, &test, spec).on(Mode::Relaxed),
    ];
    let verdicts: Vec<bool> = engine
        .run_batch(&batch)
        .into_iter()
        .map(|v| v.expect("checks").passed())
        .collect();
    assert!(
        !verdicts[0],
        "without fences the take can read a stale slot after seeing full"
    );
    // The same build passes under SC, and the fenced build passes on
    // Relaxed (the in-op load-load fence also orders the two takes'
    // loads of `full`, so no CoRR either).
    assert!(verdicts[1]);
    assert!(verdicts[2]);
    // Both builds' checks pooled one session each.
    assert_eq!(engine.stats().sessions, 2);
}

#[test]
fn commit_method_agrees_with_observation_method_on_sc() {
    let h = msn::harness(Variant::Fenced);
    let battery: Vec<TestSpec> = ["T0", "Ti2"]
        .iter()
        .map(|tn| tests::by_name(tn).expect("catalog"))
        .collect();
    let mut engine = Engine::new(EngineConfig::single(Mode::Sc));
    for t in &battery {
        let spec = mine_reference(&h, t).expect("mines").spec;
        let obs = engine
            .run(&Query::check_inclusion(&h, t, spec).on(Mode::Sc))
            .expect("checks")
            .passed();
        let commit = engine
            .run(&Query::commit_method(&h, t, AbstractType::Queue).on(Mode::Sc))
            .expect("commit method runs")
            .passed();
        assert_eq!(obs, commit, "methods disagree on {}", t.name);
        assert!(obs, "msn passes {} on SC", t.name);
    }
    // Observation and commit queries per test share one pooled session.
    assert_eq!(engine.stats().sessions, 2);
    assert_eq!(engine.stats().queries, 4);
}

#[test]
fn commit_method_requires_annotations() {
    // A queue without commit() markers is rejected with a clear error.
    let src = r#"
        int cell;
        void enqueue_op(int v) { cell = v; }
        int dequeue_op() { return cell; }
    "#;
    let program = cf_minic::compile(src).expect("compiles");
    let harness = Harness {
        name: "unannotated".into(),
        program,
        init_proc: None,
        ops: vec![
            OpSig {
                key: 'e',
                proc_name: "enqueue_op".into(),
                num_args: 1,
                has_ret: false,
            },
            OpSig {
                key: 'd',
                proc_name: "dequeue_op".into(),
                num_args: 0,
                has_ret: true,
            },
        ],
    };
    let t = TestSpec::parse("T0", "( e | d )").expect("parses");
    let err = Query::commit_method(&harness, &t, AbstractType::Queue)
        .run()
        .expect_err("missing annotations");
    assert!(err.to_string().contains("commit-point annotation"), "{err}");
}

#[test]
fn reference_models_match_compiled_implementations() {
    // The Rust reference models and the interpreter agree on the full
    // queue catalog subset for both queue implementations.
    for algo in [cf_algos::Algo::Ms2, cf_algos::Algo::Msn] {
        let h = algo.harness(Variant::Fenced);
        for tn in ["T0", "Ti2", "Tpc2", "T1"] {
            let t = tests::by_name(tn).expect("catalog");
            let model = refmodel::mine(Shape::Queue, &t);
            let interp = checkfence::mine_reference(&h, &t).expect("mines").spec;
            assert_eq!(model, interp, "{} vs model on {tn}", algo.name());
        }
    }
}

#[test]
fn counterexamples_have_coherent_traces() {
    // The msn unfenced failure produces a trace whose per-thread events
    // respect program order positions and whose observation matches the
    // claimed inconsistency.
    let h = msn::harness(Variant::Unfenced);
    let t = tests::by_name("T0").expect("catalog");
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let verdict = Query::check_inclusion(&h, &t, spec.clone())
        .on(Mode::Relaxed)
        .run()
        .expect("checks");
    match verdict.into_outcome().expect("outcome") {
        CheckOutcome::Fail(cx) => {
            assert!(
                !spec.contains(&cx.obs),
                "counterexample obs must be outside the spec"
            );
            assert!(!cx.steps.is_empty(), "trace is non-empty");
            assert!(
                cx.steps.iter().any(|s| s.thread == 0),
                "init writes appear in the trace"
            );
            // Init events must come before all other events of the trace.
            let last_init = cx
                .steps
                .iter()
                .rposition(|s| s.thread == 0)
                .expect("has init");
            assert!(
                cx.steps[..last_init].iter().all(|s| s.thread == 0),
                "initialization is ordered before thread events"
            );
        }
        CheckOutcome::Pass => panic!("unfenced msn must fail"),
    }
}
