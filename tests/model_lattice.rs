//! Randomized test for the §2.3.3 model hierarchy on the explicit-state
//! oracle: "We call a model Y stronger than another model Y' if every
//! execution trace that is allowed by model Y is also allowed by Y'."
//!
//! Our chain Serial → SC → TSO → PSO → Relaxed must be monotonically
//! weakening: on random litmus programs, each model's outcome set is a
//! subset of its successor's. A deterministic xorshift generator replaces
//! an external property-testing dependency.

use cf_memmodel::{Litmus, LitmusOp, Mode};

#[derive(Clone, Copy, Debug)]
enum Instr {
    Store { addr: u8, value: i64 },
    Load { addr: u8 },
    Fence(u8),
}

const FENCE_KINDS: [cf_lsl::FenceKind; 4] = [
    cf_lsl::FenceKind::LoadLoad,
    cf_lsl::FenceKind::LoadStore,
    cf_lsl::FenceKind::StoreLoad,
    cf_lsl::FenceKind::StoreStore,
];

use cf_sat::xorshift::Rng;

fn random_program(rng: &mut Rng) -> Vec<Vec<Instr>> {
    let num_threads = 2 + rng.below(2) as usize;
    (0..num_threads)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            (0..len)
                .map(|_| match rng.below(3) {
                    0 => Instr::Store {
                        addr: rng.below(2) as u8,
                        value: 1 + rng.below(2) as i64,
                    },
                    1 => Instr::Load {
                        addr: rng.below(2) as u8,
                    },
                    _ => Instr::Fence(rng.below(4) as u8),
                })
                .collect()
        })
        .collect()
}

fn to_litmus(threads: &[Vec<Instr>]) -> Litmus {
    let mut reg = 0usize;
    let mut lt = Vec::new();
    for instrs in threads {
        let mut ops = Vec::new();
        for ins in instrs {
            match ins {
                Instr::Store { addr, value } => ops.push(LitmusOp::Store {
                    addr: u32::from(*addr),
                    value: *value,
                    ord: cf_lsl::MemOrder::Plain,
                }),
                Instr::Load { addr } => {
                    ops.push(LitmusOp::Load {
                        addr: u32::from(*addr),
                        reg,
                        ord: cf_lsl::MemOrder::Plain,
                    });
                    reg += 1;
                }
                Instr::Fence(k) => ops.push(LitmusOp::Fence(FENCE_KINDS[*k as usize])),
            }
        }
        lt.push(ops);
    }
    Litmus {
        name: "random-lattice",
        threads: lt,
        num_regs: reg,
    }
}

fn accesses(threads: &[Vec<Instr>]) -> usize {
    threads
        .iter()
        .flatten()
        .filter(|i| !matches!(i, Instr::Fence(_)))
        .count()
}

#[test]
fn outcome_sets_weaken_along_the_chain() {
    let mut rng = Rng::new(0xcf06);
    let mut cases = 0usize;
    while cases < 64 {
        let threads = random_program(&mut rng);
        if accesses(&threads) > 8 {
            continue;
        }
        cases += 1;
        let litmus = to_litmus(&threads);
        let chain = Mode::all();
        let sets: Vec<_> = chain.iter().map(|m| litmus.allowed_outcomes(*m)).collect();
        for w in 0..chain.len() - 1 {
            assert!(
                sets[w].is_subset(&sets[w + 1]),
                "{} allows an outcome {} forbids: {:?} vs {:?} on {:?}",
                chain[w].name(),
                chain[w + 1].name(),
                sets[w],
                sets[w + 1],
                threads
            );
        }
        // Fences never *add* behaviour: a fully-fenced variant of the
        // program allows a subset of each model's outcomes.
        let mut fenced = threads.clone();
        for t in &mut fenced {
            let mut out = Vec::new();
            for ins in t.drain(..) {
                out.push(ins);
                for k in 0..4 {
                    out.push(Instr::Fence(k));
                }
            }
            *t = out;
        }
        let fenced_litmus = to_litmus(&fenced);
        for (mode, set) in chain.iter().zip(&sets) {
            let fenced_set = fenced_litmus.allowed_outcomes(*mode);
            assert!(
                fenced_set.is_subset(set),
                "fencing added behaviour on {}: {fenced_set:?} vs {set:?}",
                mode.name()
            );
            // And a fully fenced program is sequentially consistent.
            assert_eq!(
                fenced_set,
                fenced_litmus.allowed_outcomes(Mode::Sc),
                "full fencing must restore SC on {}",
                mode.name()
            );
        }
    }
}
