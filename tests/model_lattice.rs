//! Property test for the §2.3.3 model hierarchy on the explicit-state
//! oracle: "We call a model Y stronger than another model Y' if every
//! execution trace that is allowed by model Y is also allowed by Y'."
//!
//! Our chain Serial → SC → TSO → PSO → Relaxed must be monotonically
//! weakening: on random litmus programs, each model's outcome set is a
//! subset of its successor's.

use cf_memmodel::{Litmus, LitmusOp, Mode};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Instr {
    Store { addr: u8, value: i64 },
    Load { addr: u8 },
    Fence(u8),
}

const FENCE_KINDS: [cf_lsl::FenceKind; 4] = [
    cf_lsl::FenceKind::LoadLoad,
    cf_lsl::FenceKind::LoadStore,
    cf_lsl::FenceKind::StoreLoad,
    cf_lsl::FenceKind::StoreStore,
];

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..2, 1i64..3).prop_map(|(addr, value)| Instr::Store { addr, value }),
        (0u8..2).prop_map(|addr| Instr::Load { addr }),
        (0u8..4).prop_map(Instr::Fence),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    proptest::collection::vec(proptest::collection::vec(arb_instr(), 1..5), 2..4)
}

fn to_litmus(threads: &[Vec<Instr>]) -> Litmus {
    let mut reg = 0usize;
    let mut lt = Vec::new();
    for instrs in threads {
        let mut ops = Vec::new();
        for ins in instrs {
            match ins {
                Instr::Store { addr, value } => ops.push(LitmusOp::Store {
                    addr: u32::from(*addr),
                    value: *value,
                }),
                Instr::Load { addr } => {
                    ops.push(LitmusOp::Load {
                        addr: u32::from(*addr),
                        reg,
                    });
                    reg += 1;
                }
                Instr::Fence(k) => ops.push(LitmusOp::Fence(FENCE_KINDS[*k as usize])),
            }
        }
        lt.push(ops);
    }
    Litmus {
        name: "random-lattice",
        threads: lt,
        num_regs: reg,
    }
}

fn accesses(threads: &[Vec<Instr>]) -> usize {
    threads
        .iter()
        .flatten()
        .filter(|i| !matches!(i, Instr::Fence(_)))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn outcome_sets_weaken_along_the_chain(threads in arb_program()) {
        prop_assume!(accesses(&threads) <= 8);
        let litmus = to_litmus(&threads);
        let chain = Mode::all();
        let sets: Vec<_> = chain
            .iter()
            .map(|m| litmus.allowed_outcomes(*m))
            .collect();
        for w in 0..chain.len() - 1 {
            prop_assert!(
                sets[w].is_subset(&sets[w + 1]),
                "{} allows an outcome {} forbids: {:?} vs {:?} on {:?}",
                chain[w].name(),
                chain[w + 1].name(),
                sets[w],
                sets[w + 1],
                threads
            );
        }
        // Fences never *add* behaviour: a fully-fenced variant of the
        // program allows a subset of each model's outcomes.
        let mut fenced = threads.clone();
        for t in &mut fenced {
            let mut out = Vec::new();
            for ins in t.drain(..) {
                out.push(ins);
                for k in 0..4 {
                    out.push(Instr::Fence(k));
                }
            }
            *t = out;
        }
        let fenced_litmus = to_litmus(&fenced);
        for (mode, set) in chain.iter().zip(&sets) {
            let fenced_set = fenced_litmus.allowed_outcomes(*mode);
            prop_assert!(
                fenced_set.is_subset(set),
                "fencing added behaviour on {}: {:?} vs {:?}",
                mode.name(),
                fenced_set,
                set
            );
            // And a fully fenced program is sequentially consistent.
            prop_assert_eq!(
                &fenced_set,
                &fenced_litmus.allowed_outcomes(Mode::Sc),
                "full fencing must restore SC on {}",
                mode.name()
            );
        }
    }
}
