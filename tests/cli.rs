//! End-to-end tests of the `checkfence` command-line binary.

use std::path::Path;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_checkfence"))
}

fn mailbox_args(cmd: &mut Command) -> &mut Command {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets/mailbox.c");
    cmd.arg(src)
        .args(["--op", "p=put:arg"])
        .args(["--op", "g=get:ret"])
        .args(["--test", "PG=( p | g )"])
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("binary runs")
}

#[test]
fn passes_on_tso_with_exit_zero() {
    let out = run(mailbox_args(&mut cli()).args(["--model", "tso"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS PG on tso"), "{stdout}");
}

#[test]
fn fails_on_relaxed_with_exit_one() {
    let out = run(mailbox_args(&mut cli()).args(["--model", "relaxed"]));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL PG on relaxed"), "{stdout}");
    assert!(stdout.contains("--cx"), "hint expected: {stdout}");
}

#[test]
fn cx_flag_prints_the_memory_order() {
    let out = run(mailbox_args(&mut cli()).args(["--model", "relaxed", "--cx"]));
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("memory order"), "{stdout}");
    assert!(
        stdout.contains("flag"),
        "trace should name locations: {stdout}"
    );
}

#[test]
fn mine_only_prints_the_observation_set() {
    let out = run(mailbox_args(&mut cli()).arg("--mine-only"));
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checkfence-obs-set v1"), "{stdout}");
    assert!(stdout.contains("4 observations"), "{stdout}");
}

#[test]
fn spec_cache_round_trips() {
    let dir = std::env::temp_dir().join(format!("cf-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cache = dir.join("pg.spec");

    let out = run(mailbox_args(&mut cli())
        .args(["--model", "tso"])
        .arg("--spec-cache")
        .arg(&cache));
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("spec mined"));
    assert!(cache.exists());

    let out = run(mailbox_args(&mut cli())
        .args(["--model", "tso"])
        .arg("--spec-cache")
        .arg(&cache));
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("spec cached"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infer_reports_the_two_classic_fences() {
    let out = run(mailbox_args(&mut cli()).args(["--model", "relaxed", "--infer"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inferred 2 fence(s)"), "{stdout}");
    assert!(stdout.contains("store-store"), "{stdout}");
    assert!(stdout.contains("load-load"), "{stdout}");
}

#[test]
fn commit_method_runs_from_the_cli() {
    // The mailbox has no commit annotations, so the commit method must
    // report a usable error instead of passing silently.
    let out = run(mailbox_args(&mut cli()).args(["--model", "sc", "--method", "commit-queue"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("commit"), "{stderr}");
}

#[test]
fn commit_method_does_not_mine_a_specification() {
    // The commit-point method never consumes the mined observation set,
    // so the CLI must not mine one: on an implementation whose *serial*
    // executions already fail, the reported error has to come from the
    // commit machinery (missing annotations here), not from mining.
    let dir = std::env::temp_dir();
    let src = dir.join("checkfence_cli_serial_bug.c");
    std::fs::write(
        &src,
        r#"
        int x;
        void set_op(int v) { x = v; }
        void check_op() { int v = x; assert(v == 0); }
        "#,
    )
    .expect("writable temp dir");
    let args = |cmd: &mut Command| -> Output {
        run(cmd
            .arg(&src)
            .args(["--op", "s=set_op:arg", "--op", "c=check_op"])
            .args(["--test", "T=( s | c )"])
            .args(["--model", "sc"]))
    };
    // Observation method: mining finds the serial bug.
    let out = args(&mut cli());
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mining failed"),
        "{out:?}"
    );
    // Commit method: no mining happens; the commit machinery reports
    // its own (annotation) error instead.
    let out = args(cli().args(["--method", "commit-queue"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("mining failed") && stderr.contains("commit"),
        "{stderr}"
    );
}

#[test]
fn parallel_jobs_preserve_output_order_and_exit_code() {
    // Two tests on two workers: reports must come back in declaration
    // order, and the overall exit code must reflect the failing test.
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets/mailbox.c");
    let out = run(cli()
        .arg(src)
        .args(["--op", "p=put:arg"])
        .args(["--op", "g=get:ret"])
        .args(["--test", "PG=( p | g )"])
        .args(["--test", "GG=( p | g g )"])
        .args(["--model", "tso"])
        .args(["--jobs", "2"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let pg = stdout.find("PASS PG on tso").expect("PG reported");
    let gg = stdout.find("PASS GG on tso").expect("GG reported");
    assert!(pg < gg, "reports out of order: {stdout}");

    let out = run(mailbox_args(&mut cli()).args(["--model", "relaxed", "--jobs", "4"]));
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let out = run(mailbox_args(&mut cli()).args(["--jobs", "0"]));
    assert_eq!(out.status.code(), Some(2), "--jobs 0 is a usage error");
}

#[test]
fn usage_errors_exit_two() {
    let out = run(&mut cli()); // no args at all
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = run(mailbox_args(&mut cli()).args(["--model", "weird"]));
    assert_eq!(out.status.code(), Some(2));

    let out = run(mailbox_args(&mut cli()).args(["--op", "zz=broken"]));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage_with_exit_zero() {
    let out = run(cli().arg("--help"));
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn bundled_cfm_models_run_end_to_end() {
    let specs = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let out =
        run(mailbox_args(&mut cli()).args(["--model", specs.join("tso.cfm").to_str().unwrap()]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS PG on tso"), "{stdout}");

    let out = run(mailbox_args(&mut cli())
        .args(["--model", specs.join("relaxed.cfm").to_str().unwrap()])
        .arg("--cx"));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL PG on relaxed"), "{stdout}");
    assert!(stdout.contains("memory order"), "{stdout}");
}

#[test]
fn user_written_cfm_model_runs_end_to_end() {
    // A custom model: TSO-like but with fences stripped of meaning —
    // the mailbox's fences cannot repair it, so the check must fail
    // under a weak enough ordering axiom.
    let dir = std::env::temp_dir();
    let path = dir.join("checkfence_cli_custom_model.cfm");
    std::fs::write(
        &path,
        "model custom_weak\noption forwarding\norder (po ; [W]) & loc\n",
    )
    .expect("writable temp dir");
    let out = run(mailbox_args(&mut cli()).args(["--model", path.to_str().unwrap()]));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL PG on custom_weak"), "{stdout}");

    // And a strong custom model passes.
    let strong = dir.join("checkfence_cli_custom_sc.cfm");
    std::fs::write(&strong, "model custom_sc\norder po\n").expect("writable temp dir");
    let out = run(mailbox_args(&mut cli()).args(["--model", strong.to_str().unwrap()]));
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("PASS PG on custom_sc"),
        "{out:?}"
    );

    // A malformed spec is a usage error with a spanned message.
    let bad = dir.join("checkfence_cli_bad_model.cfm");
    std::fs::write(&bad, "model broken\norder nonsense\n").expect("writable temp dir");
    let out = run(mailbox_args(&mut cli()).args(["--model", bad.to_str().unwrap()]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown relation"),
        "{out:?}"
    );
}

#[test]
fn ablate_prints_a_mutant_matrix() {
    // The unfenced mailbox: the baseline itself fails on pso/relaxed,
    // so --ablate reports the matrix and exits 1.
    let out = run(mailbox_args(&mut cli()).arg("--ablate"));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mutant matrix — mailbox / PG"), "{stdout}");
    assert!(stdout.contains("(baseline)"), "{stdout}");
    assert!(stdout.contains("delete `"), "{stdout}");
    assert!(stdout.contains("encodes 1"), "{stdout}");
    for model in ["sc", "tso", "pso", "relaxed"] {
        assert!(stdout.contains(model), "missing {model} column: {stdout}");
    }
}

#[test]
fn ablate_jobs_shard_the_matrix_without_changing_the_table() {
    // The mutant × model matrix sharded across 4 engine workers must
    // print bit-identical tables to the sequential run; only the
    // summary line (sessions/encodes/timing) may differ.
    let table_of = |jobs: &str| -> (Option<i32>, Vec<String>, String) {
        let out = run(mailbox_args(&mut cli()).args(["--ablate", "--jobs", jobs]));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let table: Vec<String> = stdout
            .lines()
            .filter(|l| !l.trim_start().starts_with("sessions "))
            .map(str::to_string)
            .collect();
        (out.status.code(), table, stdout)
    };
    let (code1, table1, stdout1) = table_of("1");
    let (code4, table4, stdout4) = table_of("4");
    assert_eq!(code1, code4, "exit codes must agree");
    assert_eq!(
        table1, table4,
        "mutant tables must be identical at --jobs 1 and --jobs 4:\n--- jobs 1 ---\n{stdout1}\n--- jobs 4 ---\n{stdout4}"
    );
    // The sequential run answers each test's matrix from one session.
    assert!(stdout1.contains("sessions 1"), "{stdout1}");
    assert!(stdout1.contains("encodes 1"), "{stdout1}");
    // The sharded run reports one encoding per worker session.
    assert!(stdout4.contains("sessions 4"), "{stdout4}");
    assert!(stdout4.contains("encodes 4"), "{stdout4}");
}

#[test]
fn stats_flag_prints_a_per_query_table() {
    let out = run(mailbox_args(&mut cli()).args(["--model", "tso", "--stats"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("per-query stats:"), "{stdout}");
    for column in [
        "query",
        "solves",
        "conflicts",
        "restarts",
        "assumed",
        "wall",
    ] {
        assert!(stdout.contains(column), "missing column {column}: {stdout}");
    }
    assert!(
        stdout.contains("check mailbox/PG@tso"),
        "per-query label expected: {stdout}"
    );
    // Without the flag, no table.
    let out = run(mailbox_args(&mut cli()).args(["--model", "tso"]));
    assert!(!String::from_utf8_lossy(&out.stdout).contains("per-query stats"));
}

#[test]
fn ablate_accepts_a_cfm_model_column() {
    let dir = std::env::temp_dir();
    let path = dir.join("checkfence_cli_ablate_sc.cfm");
    std::fs::write(&path, "model my_sc\norder po\n").expect("writable temp dir");
    let out = run(mailbox_args(&mut cli()).args(["--ablate", "--model", path.to_str().unwrap()]));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("my_sc"),
        "user spec column missing: {stdout}"
    );
}

#[test]
fn synth_prints_a_coverage_table() {
    let out = run(cli().args(["--synth", "lamport", "--threads", "2", "--ops", "1"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("synth corpus — lamport"), "{stdout}");
    assert!(
        stdout.contains("canonical after symmetry reduction"),
        "{stdout}"
    );
    assert!(stdout.contains("pruned (subsumption)"), "{stdout}");
    for model in ["sc", "tso", "pso", "relaxed"] {
        assert!(stdout.contains(model), "missing {model} column: {stdout}");
    }
    // Synthesis explores shapes outside the hand-written catalog: the
    // two-producer shape breaks the SPSC contract even on SC.
    assert!(stdout.contains("(e|e)"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn synth_coverage_table_is_identical_across_jobs() {
    // Same bounds → byte-identical synthesized corpus and coverage
    // table at --jobs 1 and --jobs 4; only the summary line
    // ("N cells: ... sessions/encodes/timing") may differ.
    let table_of = |jobs: &str| -> (Option<i32>, Vec<String>, String) {
        let out = run(cli().args([
            "--synth",
            "lamport",
            "--threads",
            "2",
            "--ops",
            "1",
            "--jobs",
            jobs,
        ]));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let table: Vec<String> = stdout
            .lines()
            .filter(|l| !l.contains("cells:"))
            .map(str::to_string)
            .collect();
        (out.status.code(), table, stdout)
    };
    let (code1, table1, stdout1) = table_of("1");
    let (code4, table4, stdout4) = table_of("4");
    assert_eq!(code1, code4, "exit codes must agree");
    assert_eq!(
        table1, table4,
        "coverage tables must be identical at --jobs 1 and --jobs 4:\n\
         --- jobs 1 ---\n{stdout1}\n--- jobs 4 ---\n{stdout4}"
    );
    // One pooled session and one encoding per synthesized harness.
    assert!(stdout1.contains("sessions 9  encodes 9"), "{stdout1}");
}

#[test]
fn synth_usage_errors_exit_two() {
    // --synth replaces the source file and the op/test flags.
    let out = run(mailbox_args(&mut cli()).args(["--synth", "treiber"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Synthesis bounds need --synth.
    let out = run(mailbox_args(&mut cli()).args(["--threads", "3"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Unknown data types are rejected with the candidate list.
    let out = run(cli().args(["--synth", "nope"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("treiber"),
        "{out:?}"
    );
    // Other modes do not combine with synthesis.
    let out = run(cli().args(["--synth", "treiber", "--ablate"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Flags the synth mode would silently ignore are rejected, not
    // swallowed: --stats/--stats-json/--cx have no coverage-table
    // meaning, and a built-in --model cannot restrict the lattice (only
    // a .cfm spec adds a column).
    let out = run(cli().args(["--synth", "treiber", "--stats"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(cli().args(["--synth", "treiber", "--cx"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(cli().args(["--synth", "treiber", "--model", "tso"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("lattice"),
        "{out:?}"
    );
}

#[test]
fn starved_budget_reports_inconclusive_with_exit_three() {
    // A 1-tick budget with the retry ladder disabled cannot decide
    // anything: the cell degrades to INCONCLUSIVE and the run exits 3
    // instead of aborting.
    let out =
        run(mailbox_args(&mut cli()).args(["--model", "tso", "--budget", "1", "--retries", "0"]));
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INCONCLUSIVE PG on tso"), "{stdout}");
    assert!(stdout.contains("budget"), "{stdout}");
    assert!(stdout.contains("0 retries"), "{stdout}");

    // The same starved budget with the ladder enabled self-heals: each
    // retry grows the budget geometrically until the query fits.
    let out =
        run(mailbox_args(&mut cli()).args(["--model", "tso", "--budget", "1", "--retries", "10"]));
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("PASS PG on tso"),
        "{out:?}"
    );
}

#[test]
fn counterexample_beats_inconclusive_in_the_exit_code() {
    // One budget, two tests on relaxed: PG concludes (it needs a few
    // hundred ticks) and fails, the three-thread test exhausts (it
    // needs several thousand). The run must report both and exit 1 —
    // a found counterexample outranks an undecided cell.
    let out = run(mailbox_args(&mut cli()).args([
        "--test",
        "BIG=( p p | g g p | p g )",
        "--model",
        "relaxed",
        "--budget",
        "2000",
        "--retries",
        "0",
    ]));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL PG on relaxed"), "{stdout}");
    assert!(stdout.contains("INCONCLUSIVE BIG on relaxed"), "{stdout}");
}

#[test]
fn budget_flag_validation_errors_exit_two() {
    for bad in [
        ["--budget", "0"],
        ["--budget", "nope"],
        ["--deadline-ms", "0"],
        ["--retries", "many"],
    ] {
        let out = run(mailbox_args(&mut cli()).args(["--model", "tso"]).args(bad));
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(bad[0]),
            "{bad:?}: {out:?}"
        );
    }
    // A generous deadline parses and threads through without starving
    // anything (starvation itself is exercised via tick budgets, which
    // are deterministic; a tight wall-clock bound would flake).
    let out = run(mailbox_args(&mut cli()).args(["--model", "tso", "--deadline-ms", "60000"]));
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn starved_synth_table_renders_question_cells_with_exit_three() {
    // The lamport corpus under a 1-tick budget: every solved cell
    // degrades to `?`, nothing is inferred (an inconclusive cell proves
    // nothing, so the model lattice must not propagate it), and the
    // run exits 3. Static triage is off: it needs no solver budget, so
    // it would rescue cells this test wants to see starve.
    let out = run(cli().args([
        "--synth",
        "lamport",
        "--threads",
        "2",
        "--ops",
        "1",
        "--budget",
        "1",
        "--retries",
        "0",
        "--no-static-triage",
    ]));
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("36 solved, 0 inferred"), "{stdout}");
    assert!(stdout.contains('?'), "{stdout}");
    assert!(!stdout.contains("FAIL"), "nothing was decided: {stdout}");
}

#[test]
fn stats_json_matches_the_stats_table() {
    let path = std::env::temp_dir().join(format!("cf-cli-stats-{}.json", std::process::id()));
    let out = run(mailbox_args(&mut cli())
        .args(["--model", "tso", "--stats", "--stats-json"])
        .arg(&path));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = std::fs::read_to_string(&path).expect("stats json written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"schema_version\": 3"), "{json}");
    // The schema-v3 core ledger is always present; without --explain no
    // cores are extracted.
    assert!(json.contains("\"cores_extracted\": 0"), "{json}");
    assert!(json.contains("\"core_size\": 0"), "{json}");
    // The text table's row and the JSON export must agree on the
    // per-query counters, not just both exist.
    let row = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("check mailbox/PG@tso"))
        .expect("table row");
    let cols: Vec<&str> = row.split_whitespace().collect();
    let solves: u64 = cols[2].parse().expect("solves column");
    let conflicts: u64 = cols[3].parse().expect("conflicts column");
    assert!(
        json.contains(&format!(
            "\"query\": \"check mailbox/PG@tso\", \"solves\": {solves}, \"conflicts\": {conflicts}"
        )),
        "JSON and table disagree:\n{json}\n{stdout}"
    );
}

#[test]
fn stripped_traces_are_identical_across_jobs() {
    let trace_of = |jobs: &str| -> String {
        let path =
            std::env::temp_dir().join(format!("cf-cli-trace-{}-{jobs}.jsonl", std::process::id()));
        let out = run(mailbox_args(&mut cli())
            .args(["--test", "GG=( p | g g )"])
            .args(["--model", "tso", "--jobs", jobs, "--trace"])
            .arg(&path));
        assert!(out.status.success(), "{out:?}");
        let text = std::fs::read_to_string(&path).expect("trace written");
        std::fs::remove_file(&path).ok();
        text
    };
    let t1 = trace_of("1");
    let t4 = trace_of("4");
    assert!(t1.starts_with("{\"k\":\"trace_meta\""), "{t1}");
    assert_eq!(
        cf_trace::strip(&t1),
        cf_trace::strip(&t4),
        "stripped traces must be byte-identical at --jobs 1 and --jobs 4"
    );
}

#[test]
fn observability_sinks_leave_stdout_unchanged() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("cf-cli-sink-{}.jsonl", std::process::id()));
    let prom = dir.join(format!("cf-cli-sink-{}.prom", std::process::id()));
    let plain = run(mailbox_args(&mut cli()).args(["--model", "tso"]));
    let sunk = run(mailbox_args(&mut cli())
        .args(["--model", "tso", "--trace"])
        .arg(&trace)
        .arg("--metrics")
        .arg(&prom));
    assert!(plain.status.success() && sunk.status.success());
    // File sinks must not perturb the verdict output.
    assert_eq!(plain.stdout, sunk.stdout, "tracing changed stdout");
    let prom_text = std::fs::read_to_string(&prom).expect("metrics written");
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    std::fs::remove_file(&prom).ok();
    std::fs::remove_file(&trace).ok();
    assert!(
        prom_text.contains("checkfence_solver_ticks_total"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("checkfence_queries_total{outcome=\"pass\"} 1"),
        "{prom_text}"
    );
    assert!(trace_text.contains("\"k\":\"query_done\""), "{trace_text}");

    // --profile prints the attribution table after the verdicts.
    let out = run(mailbox_args(&mut cli()).args(["--model", "tso", "--profile"]));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cost profile (schema 3):"), "{stdout}");
    assert!(stdout.contains("attributed"), "{stdout}");
}

#[test]
fn explain_prints_provenance_per_verdict() {
    // The unfenced mailbox passes on tso and fails on relaxed: with
    // --explain the pass carries a minimized proof core and the failure
    // its witness environment. Without the flag, neither line appears.
    let path = std::env::temp_dir().join(format!("cf-cli-explain-{}.json", std::process::id()));
    let out = run(mailbox_args(&mut cli())
        .args(["--model", "tso", "--explain", "--stats-json"])
        .arg(&path));
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS PG on tso"), "{stdout}");
    assert!(stdout.contains("proof uses:"), "{stdout}");
    assert!(stdout.contains("minimal"), "{stdout}");
    // The core ledger counts the proof.
    let json = std::fs::read_to_string(&path).expect("stats json written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"cores_extracted\": 1"), "{json}");

    let out = run(mailbox_args(&mut cli()).args(["--model", "relaxed", "--explain"]));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL PG on relaxed"), "{stdout}");
    assert!(stdout.contains("witness under:"), "{stdout}");

    let out = run(mailbox_args(&mut cli()).args(["--model", "tso"]));
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("proof uses:"),
        "provenance is opt-in: {out:?}"
    );
}

#[test]
fn explain_output_is_identical_across_jobs() {
    // Provenance reports are pure functions of the verdicts: the whole
    // stdout (verdicts + provenance lines) must be byte-identical at
    // --jobs 1 and --jobs 4, for plain checks and for --synth.
    let check_of = |jobs: &str| -> Vec<u8> {
        let out = run(mailbox_args(&mut cli())
            .args(["--test", "GG=( p | g g )"])
            .args(["--model", "tso", "--explain", "--jobs", jobs]));
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    assert_eq!(
        String::from_utf8_lossy(&check_of("1")),
        String::from_utf8_lossy(&check_of("4")),
        "--explain check output must not depend on --jobs"
    );
    let synth_of = |jobs: &str| -> Vec<String> {
        let out = run(cli().args([
            "--synth",
            "lamport",
            "--threads",
            "2",
            "--ops",
            "1",
            "--explain",
            "--jobs",
            jobs,
        ]));
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("cells:")) // the timing summary line
            .map(str::to_string)
            .collect()
    };
    let s1 = synth_of("1");
    assert!(
        s1.iter().any(|l| l.contains("proof uses:")),
        "synth --explain must print provenance: {s1:?}"
    );
    assert_eq!(
        s1,
        synth_of("4"),
        "--synth --explain output must not depend on --jobs"
    );
}

#[test]
fn metrics_query_classes_cross_check_stats_json() {
    // Satellite contract: `checkfence_queries_by_class` totals in the
    // --metrics snapshot must equal the number of per-query rows the
    // same run exported to --stats-json.
    let dir = std::env::temp_dir();
    let prom = dir.join(format!("cf-cli-class-{}.prom", std::process::id()));
    let json = dir.join(format!("cf-cli-class-{}.json", std::process::id()));
    let out = run(mailbox_args(&mut cli())
        .args(["--test", "GG=( p | g g )"])
        .args(["--model", "tso", "--metrics"])
        .arg(&prom)
        .arg("--stats-json")
        .arg(&json));
    assert!(out.status.success(), "{out:?}");
    let prom_text = std::fs::read_to_string(&prom).expect("metrics written");
    let json_text = std::fs::read_to_string(&json).expect("stats json written");
    std::fs::remove_file(&prom).ok();
    std::fs::remove_file(&json).ok();
    let by_class: u64 = prom_text
        .lines()
        .filter(|l| l.starts_with("checkfence_queries_by_class{"))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable metric line: {l}"))
        })
        .sum();
    let json_rows = json_text.matches("\"query\":").count() as u64;
    assert!(json_rows >= 2, "{json_text}");
    assert_eq!(
        by_class, json_rows,
        "queries_by_class totals must equal the --stats-json row count:\n{prom_text}\n{json_text}"
    );
}

#[test]
fn explain_conflicts_with_non_checking_modes() {
    for extra in [["--mine-only"], ["--infer"], ["--analyze"]] {
        let out = run(mailbox_args(&mut cli()).arg("--explain").args(extra));
        assert_eq!(out.status.code(), Some(2), "{extra:?}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--explain"),
            "{extra:?}: {out:?}"
        );
    }
}

#[test]
fn ablate_conflicts_with_infer() {
    let out = run(mailbox_args(&mut cli()).args(["--ablate", "--infer"]));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--ablate"),
        "{out:?}"
    );
}
