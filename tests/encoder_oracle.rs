//! Cross-crate property test: the SAT pipeline (mini-C → LSL → symbolic
//! execution → CNF → solver) agrees with the explicit-state memory-model
//! oracle (`cf-memmodel`) on randomly generated litmus programs.
//!
//! For every generated program we compare, under every hardware model
//! (SC, TSO, PSO, Relaxed): the set of final register observations the
//! checker enumerates via iterated SAT solving against the set
//! brute-forced directly from the paper's axioms. This exercises the
//! complete stack — including fences, program order, store visibility,
//! forwarding and totality — end to end.

use checkfence::{Checker, Harness, OpSig, OrderEncoding, TestSpec};
use cf_lsl::Value;
use cf_memmodel::{Litmus, LitmusOp, Mode};
use proptest::prelude::*;

/// One straight-line thread instruction.
#[derive(Clone, Copy, Debug)]
enum Instr {
    Store { addr: u8, value: i64 },
    Load { addr: u8 },
    Fence(u8), // 0..4 = ll, ls, sl, ss
}

const FENCES: [&str; 4] = ["load-load", "load-store", "store-load", "store-store"];

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..2, 1i64..3).prop_map(|(addr, value)| Instr::Store { addr, value }),
        (0u8..2).prop_map(|addr| Instr::Load { addr }),
        (0u8..4).prop_map(Instr::Fence),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    proptest::collection::vec(proptest::collection::vec(arb_instr(), 1..5), 2..4)
}

/// Renders a thread as one mini-C operation whose return value packs all
/// loaded registers in base 4 (values are < 3).
fn thread_source(tid: usize, instrs: &[Instr]) -> (String, usize) {
    let mut body = String::new();
    let mut loads = 0usize;
    for (i, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::Store { addr, value } => {
                body.push_str(&format!("    g{addr} = {value};\n"));
            }
            Instr::Load { addr } => {
                body.push_str(&format!("    int r{i} = g{addr};\n"));
                loads += 1;
            }
            Instr::Fence(k) => {
                body.push_str(&format!("    fence(\"{}\");\n", FENCES[*k as usize]));
            }
        }
    }
    // Pack loads into one integer: sum r_i * 4^position.
    let mut ret = String::from("0");
    let mut mult = 1i64;
    for (i, ins) in instrs.iter().enumerate() {
        if matches!(ins, Instr::Load { .. }) {
            ret = format!("{ret} + r{i} * {mult}");
            mult *= 4;
        }
    }
    let fun = format!("int op{tid}() {{\n{body}    return {ret};\n}}\n");
    (fun, loads)
}

/// Builds the matching `Litmus` program for the oracle.
fn to_litmus(threads: &[Vec<Instr>]) -> Litmus {
    let mut reg = 0usize;
    let mut lt_threads = Vec::new();
    for instrs in threads {
        let mut ops = Vec::new();
        for ins in instrs {
            match ins {
                Instr::Store { addr, value } => ops.push(LitmusOp::Store {
                    addr: u32::from(*addr),
                    value: *value,
                }),
                Instr::Load { addr } => {
                    ops.push(LitmusOp::Load {
                        addr: u32::from(*addr),
                        reg,
                    });
                    reg += 1;
                }
                Instr::Fence(k) => ops.push(LitmusOp::Fence(
                    cf_lsl::FenceKind::parse(FENCES[*k as usize]).expect("valid"),
                )),
            }
        }
        lt_threads.push(ops);
    }
    Litmus {
        name: "random",
        threads: lt_threads,
        num_regs: reg,
    }
}

/// Packs an oracle outcome (per-register values, grouped by thread, in
/// program order) into the per-thread base-4 encoding the wrappers use.
fn pack_outcome(threads: &[Vec<Instr>], regs: &[i64]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut next = 0usize;
    for instrs in threads {
        let mut packed = 0i64;
        let mut mult = 1i64;
        for ins in instrs {
            if matches!(ins, Instr::Load { .. }) {
                packed += regs[next] * mult;
                mult *= 4;
                next += 1;
            }
        }
        out.push(Value::Int(packed));
    }
    out
}

fn total_accesses(threads: &[Vec<Instr>]) -> usize {
    threads
        .iter()
        .flatten()
        .filter(|i| !matches!(i, Instr::Fence(_)))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sat_pipeline_matches_axiomatic_oracle(threads in arb_program()) {
        prop_assume!(total_accesses(&threads) <= 8);
        // Build the mini-C harness: globals g0, g1 plus one op per thread.
        let mut src = String::from("int g0;\nint g1;\n");
        let mut ops = Vec::new();
        for (tid, instrs) in threads.iter().enumerate() {
            let (fun, _) = thread_source(tid, instrs);
            src.push_str(&fun);
            ops.push(OpSig {
                key: char::from(b'a' + tid as u8),
                proc_name: format!("op{tid}"),
                num_args: 0,
                has_ret: true,
            });
        }
        let program = cf_minic::compile(&src).expect("generated source compiles");
        let harness = Harness {
            name: "random-litmus".into(),
            program,
            init_proc: None,
            ops,
        };
        let text = format!(
            "( {} )",
            (0..threads.len())
                .map(|t| char::from(b'a' + t as u8).to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let test = TestSpec::parse("rand", &text).expect("test parses");
        let litmus = to_litmus(&threads);

        for mode in Mode::hardware() {
            let oracle: std::collections::BTreeSet<Vec<Value>> = litmus
                .allowed_outcomes(mode)
                .into_iter()
                .map(|regs| pack_outcome(&threads, &regs))
                .collect();
            let checker = Checker::new(&harness, &test)
                .with_order_encoding(OrderEncoding::Pairwise);
            let sat = checker.enumerate_observations(mode).expect("enumerates");
            prop_assert_eq!(
                &sat.vectors,
                &oracle,
                "disagreement on {:?} for {:?}\nsource:\n{}",
                mode,
                threads,
                src
            );
        }
    }
}
