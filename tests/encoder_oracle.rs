//! Cross-crate randomized test: the SAT pipeline (mini-C → LSL → symbolic
//! execution → CNF → solver) agrees with the explicit-state memory-model
//! oracle (`cf-memmodel`) on randomly generated litmus programs.
//!
//! For every generated program we compare, under every hardware model
//! (SC, TSO, PSO, Relaxed): the set of final register observations the
//! checker enumerates via iterated SAT solving against the set
//! brute-forced directly from the paper's axioms. This exercises the
//! complete stack — including fences, program order, store visibility,
//! forwarding and totality — end to end. A deterministic xorshift
//! generator replaces an external property-testing dependency.

use cf_lsl::Value;
use cf_memmodel::{Litmus, LitmusOp, Mode};
use checkfence::{Harness, OpSig, OrderEncoding, TestSpec};

/// One straight-line thread instruction.
#[derive(Clone, Copy, Debug)]
enum Instr {
    Store { addr: u8, value: i64 },
    Load { addr: u8 },
    Fence(u8), // 0..4 = ll, ls, sl, ss
}

const FENCES: [&str; 4] = ["load-load", "load-store", "store-load", "store-store"];

use cf_sat::xorshift::Rng;

fn random_instr(rng: &mut Rng) -> Instr {
    match rng.below(3) {
        0 => Instr::Store {
            addr: rng.below(2) as u8,
            value: 1 + rng.below(2) as i64,
        },
        1 => Instr::Load {
            addr: rng.below(2) as u8,
        },
        _ => Instr::Fence(rng.below(4) as u8),
    }
}

fn random_program(rng: &mut Rng) -> Vec<Vec<Instr>> {
    let num_threads = 2 + rng.below(2) as usize;
    (0..num_threads)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            (0..len).map(|_| random_instr(rng)).collect()
        })
        .collect()
}

/// Renders a thread as one mini-C operation whose return value packs all
/// loaded registers in base 4 (values are < 3).
fn thread_source(tid: usize, instrs: &[Instr]) -> (String, usize) {
    let mut body = String::new();
    let mut loads = 0usize;
    for (i, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::Store { addr, value } => {
                body.push_str(&format!("    g{addr} = {value};\n"));
            }
            Instr::Load { addr } => {
                body.push_str(&format!("    int r{i} = g{addr};\n"));
                loads += 1;
            }
            Instr::Fence(k) => {
                body.push_str(&format!("    fence(\"{}\");\n", FENCES[*k as usize]));
            }
        }
    }
    // Pack loads into one integer: sum r_i * 4^position.
    let mut ret = String::from("0");
    let mut mult = 1i64;
    for (i, ins) in instrs.iter().enumerate() {
        if matches!(ins, Instr::Load { .. }) {
            ret = format!("{ret} + r{i} * {mult}");
            mult *= 4;
        }
    }
    let fun = format!("int op{tid}() {{\n{body}    return {ret};\n}}\n");
    (fun, loads)
}

/// Builds the matching `Litmus` program for the oracle.
fn to_litmus(threads: &[Vec<Instr>]) -> Litmus {
    let mut reg = 0usize;
    let mut lt_threads = Vec::new();
    for instrs in threads {
        let mut ops = Vec::new();
        for ins in instrs {
            match ins {
                Instr::Store { addr, value } => ops.push(LitmusOp::Store {
                    addr: u32::from(*addr),
                    value: *value,
                    ord: cf_lsl::MemOrder::Plain,
                }),
                Instr::Load { addr } => {
                    ops.push(LitmusOp::Load {
                        addr: u32::from(*addr),
                        reg,
                        ord: cf_lsl::MemOrder::Plain,
                    });
                    reg += 1;
                }
                Instr::Fence(k) => ops.push(LitmusOp::Fence(
                    cf_lsl::FenceKind::parse(FENCES[*k as usize]).expect("valid"),
                )),
            }
        }
        lt_threads.push(ops);
    }
    Litmus {
        name: "random",
        threads: lt_threads,
        num_regs: reg,
    }
}

/// Packs an oracle outcome (per-register values, grouped by thread, in
/// program order) into the per-thread base-4 encoding the wrappers use.
fn pack_outcome(threads: &[Vec<Instr>], regs: &[i64]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut next = 0usize;
    for instrs in threads {
        let mut packed = 0i64;
        let mut mult = 1i64;
        for ins in instrs {
            if matches!(ins, Instr::Load { .. }) {
                packed += regs[next] * mult;
                mult *= 4;
                next += 1;
            }
        }
        out.push(Value::Int(packed));
    }
    out
}

fn total_accesses(threads: &[Vec<Instr>]) -> usize {
    threads
        .iter()
        .flatten()
        .filter(|i| !matches!(i, Instr::Fence(_)))
        .count()
}

#[test]
fn sat_pipeline_matches_axiomatic_oracle() {
    let mut rng = Rng::new(0xcf05);
    let mut cases = 0usize;
    while cases < 48 {
        let threads = random_program(&mut rng);
        if total_accesses(&threads) > 8 {
            continue;
        }
        cases += 1;
        // Build the mini-C harness: globals g0, g1 plus one op per thread.
        let mut src = String::from("int g0;\nint g1;\n");
        let mut ops = Vec::new();
        for (tid, instrs) in threads.iter().enumerate() {
            let (fun, _) = thread_source(tid, instrs);
            src.push_str(&fun);
            ops.push(OpSig {
                key: char::from(b'a' + tid as u8),
                proc_name: format!("op{tid}"),
                num_args: 0,
                has_ret: true,
            });
        }
        let program = cf_minic::compile(&src).expect("generated source compiles");
        let harness = Harness {
            name: "random-litmus".into(),
            program,
            init_proc: None,
            ops,
        };
        let text = format!(
            "( {} )",
            (0..threads.len())
                .map(|t| char::from(b'a' + t as u8).to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let test = TestSpec::parse("rand", &text).expect("test parses");
        let litmus = to_litmus(&threads);

        for mode in Mode::hardware() {
            let oracle: std::collections::BTreeSet<Vec<Value>> = litmus
                .allowed_outcomes(mode)
                .into_iter()
                .map(|regs| pack_outcome(&threads, &regs))
                .collect();
            let mut config = checkfence::EngineConfig::single(mode);
            config.check.order_encoding = OrderEncoding::Pairwise;
            let sat = checkfence::Engine::new(config)
                .run(&checkfence::Query::enumerate(&harness, &test).on(mode))
                .expect("enumerates")
                .into_observations()
                .expect("observations");
            assert_eq!(
                sat.vectors, oracle,
                "disagreement on {mode:?} for {threads:?}\nsource:\n{src}"
            );
        }
    }
}
