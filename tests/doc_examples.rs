//! The documentation harness: every fenced code block in `docs/` and
//! the README is machine-checked, so the guides cannot rot.
//!
//! Rust blocks are executed as doctests of the root crate (see the
//! `#[cfg(doctest)]` includes in `src/lib.rs`); this harness covers
//! the rest: it extracts every fenced block, rejects untagged or
//! unknown-tagged fences (an untagged fence would silently become an
//! unchecked doctest or a broken one), compiles every `c` block with
//! the mini-C front end and every `cfm` block with the spec compiler,
//! and cross-checks the documented CLI options against the binary's
//! usage text.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One fenced code block.
struct Block {
    file: String,
    line: usize,
    tag: String,
    body: String,
}

fn doc_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("README.md")];
    let docs = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 3,
        "docs/ must hold the guide, the spec-language reference and the \
         ablation chapter: {entries:?}"
    );
    out.extend(entries);
    out
}

fn extract_blocks() -> Vec<Block> {
    let mut blocks = Vec::new();
    for path in doc_files() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let file = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let mut current: Option<Block> = None;
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("```") {
                match current.take() {
                    Some(block) => blocks.push(block),
                    None => {
                        current = Some(Block {
                            file: file.clone(),
                            line: i + 1,
                            tag: rest.trim().to_string(),
                            body: String::new(),
                        });
                    }
                }
            } else if let Some(block) = &mut current {
                let _ = writeln!(block.body, "{line}");
            }
        }
        assert!(
            current.is_none(),
            "{file}: unterminated code fence at end of file"
        );
    }
    blocks
}

#[test]
fn every_block_is_tagged_with_a_checked_language() {
    const KNOWN: &[&str] = &["rust", "c", "cfm", "text", "console", "json"];
    let blocks = extract_blocks();
    assert!(blocks.len() > 20, "the guides lost their examples?");
    for b in &blocks {
        assert!(
            KNOWN.contains(&b.tag.as_str()),
            "{}:{}: fence tag `{}` is not one of {KNOWN:?} — untagged fences \
             become unchecked (or broken) doctests",
            b.file,
            b.line,
            b.tag
        );
    }
    // The three checked languages are all actually exercised.
    for must in ["rust", "c", "cfm"] {
        assert!(
            blocks.iter().any(|b| b.tag == must),
            "no `{must}` block found in the documentation"
        );
    }
}

#[test]
fn mini_c_blocks_compile() {
    let mut seen = 0;
    for b in extract_blocks().into_iter().filter(|b| b.tag == "c") {
        seen += 1;
        cf_minic::compile(&b.body).unwrap_or_else(|e| {
            panic!("{}:{}: mini-C block does not compile: {e}", b.file, b.line)
        });
    }
    assert!(seen >= 1, "the guide documents mini-C without an example?");
}

#[test]
fn cfm_blocks_compile() {
    let mut seen = 0;
    for b in extract_blocks().into_iter().filter(|b| b.tag == "cfm") {
        seen += 1;
        cf_spec::compile(&b.body)
            .unwrap_or_else(|e| panic!("{}:{}: .cfm block does not compile: {e}", b.file, b.line));
    }
    assert!(
        seen >= 4,
        "spec-language.md must show the file structure and the bundled models"
    );
}

#[test]
fn json_blocks_are_shaped_like_the_bench_records() {
    // No JSON parser in the std-only build: check the documented bench
    // record names the fields the benchmark actually writes.
    for b in extract_blocks().into_iter().filter(|b| b.tag == "json") {
        for field in ["wall_ms", "encodes", "speedup"] {
            assert!(
                b.body.contains(field),
                "{}:{}: bench-record example lost the `{field}` field",
                b.file,
                b.line
            );
        }
    }
}

#[test]
fn usage_text_and_argument_parser_agree_flag_for_flag() {
    // The parser's match arms are the ground truth; every `--flag` arm
    // in the binary source must appear in the usage text and vice
    // versa, so `usage()` can neither advertise flags the parser
    // rejects nor hide flags it accepts.
    let source = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin/checkfence.rs"),
    )
    .expect("binary source readable");
    let parser_body = source
        .split("fn parse_args")
        .nth(1)
        .expect("parse_args exists");
    let mut parser_flags = std::collections::BTreeSet::new();
    for line in parser_body.lines().take_while(|l| !l.contains("fn ")) {
        // Match arms look like `"--flag" =>` (possibly `"-h" | "--help" =>`).
        if !line.contains("=>") {
            continue;
        }
        for piece in line.split('"') {
            if piece.starts_with("--") {
                parser_flags.insert(piece.to_string());
            }
        }
    }
    assert!(
        parser_flags.len() >= 10,
        "flag extraction broke: {parser_flags:?}"
    );

    let usage = String::from_utf8(
        std::process::Command::new(env!("CARGO_BIN_EXE_checkfence"))
            .arg("--help")
            .output()
            .expect("binary runs")
            .stdout,
    )
    .expect("utf8 usage");
    let usage_flags: std::collections::BTreeSet<String> = usage
        .split_whitespace()
        .filter(|t| t.starts_with("--"))
        .map(|t| t.trim_end_matches(',').to_string())
        .collect();

    for flag in &parser_flags {
        assert!(
            usage_flags.contains(flag),
            "parser accepts `{flag}` but usage() does not document it"
        );
    }
    for flag in &usage_flags {
        assert!(
            parser_flags.contains(flag),
            "usage() documents `{flag}` but the parser rejects it"
        );
    }
}

#[test]
fn usage_documents_the_exit_code_contract() {
    // The exit-status contract (0 pass, 1 counterexample, 2 usage or
    // infrastructure error, 3 inconclusive cells, and 1 beating 3) is
    // load-bearing for CI scripts, so the usage text must spell it out.
    // tests/cli.rs asserts each code is actually produced.
    let usage = String::from_utf8(
        std::process::Command::new(env!("CARGO_BIN_EXE_checkfence"))
            .arg("--help")
            .output()
            .expect("binary runs")
            .stdout,
    )
    .expect("utf8 usage");
    let contract = usage
        .split("exit status:")
        .nth(1)
        .expect("usage() must carry an exit-status paragraph");
    for needle in ["0 ", "1 ", "2 ", "3 ", "inconclusive", "(1 beats 3)"] {
        assert!(
            contract.contains(needle),
            "exit-status paragraph lost `{needle}`:{contract}"
        );
    }
}

#[test]
fn ablate_accepts_the_jobs_flag() {
    // `--jobs` composes with `--ablate` (the matrix shards across
    // engine workers); the combination must not be a usage error.
    // tests/cli.rs asserts the sharded table is identical — this
    // cross-check only guards the flag grammar.
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets/mailbox.c");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_checkfence"))
        .arg(src)
        .args(["--op", "p=put:arg", "--op", "g=get:ret"])
        .args(["--test", "PG=( p | g )"])
        .args(["--ablate", "--jobs", "2"])
        .output()
        .expect("binary runs");
    assert_ne!(
        out.status.code(),
        Some(2),
        "--ablate --jobs must parse: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn documented_cli_flags_exist() {
    // Every `--flag` mentioned in console blocks must appear in the
    // binary's usage text (tests/cli.rs checks the flags work; this
    // checks the docs name real ones).
    let usage = String::from_utf8(
        std::process::Command::new(env!("CARGO_BIN_EXE_checkfence"))
            .arg("--help")
            .output()
            .expect("binary runs")
            .stdout,
    )
    .expect("utf8 usage");
    for b in extract_blocks().into_iter().filter(|b| b.tag == "console") {
        for token in b.body.split_whitespace() {
            let flag = token.trim_end_matches(['"', '\\']);
            if !flag.starts_with("--") {
                continue;
            }
            // `cargo build --release` etc. are not checkfence flags.
            if b.body.trim_start().starts_with("cargo") {
                continue;
            }
            assert!(
                usage.contains(flag),
                "{}:{}: console block uses `{flag}`, which the CLI usage does \
                 not document",
                b.file,
                b.line
            );
        }
    }
}
