//! The scenario corpus under `corpus/` is machine-checked: every entry
//! loads, compiles, mines, and reproduces every verdict its header
//! declares — so the corpus cannot rot any more than the docs can.

use std::path::Path;

use cf_synth::corpus::{load_dir, CorpusEntry};
use cf_synth::{run_corpus, CorpusConfig, CorpusVerdict};

fn corpus() -> Vec<CorpusEntry> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    load_dir(&dir).expect("corpus loads")
}

fn c11_corpus() -> Vec<CorpusEntry> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus/c11");
    load_dir(&dir).expect("c11 corpus loads")
}

/// Runs every entry under `config` and asserts that mining succeeds, no
/// model column errors out, and every declared verdict is reproduced.
fn assert_verdicts(entries: &[CorpusEntry], config: &CorpusConfig) {
    for entry in entries {
        let report = run_corpus(&entry.harness, &entry.tests, config);
        for row in &report.rows {
            assert!(
                row.mine_error.is_none(),
                "{}/{}: mining failed: {:?}",
                entry.name,
                row.test.name,
                row.mine_error
            );
            for (model, v) in report.model_names.iter().zip(&row.verdicts) {
                assert!(
                    !matches!(v, CorpusVerdict::Error(_)),
                    "{}/{} on {model}: {v:?}",
                    entry.name,
                    row.test.name
                );
            }
        }
        for expect in &entry.expects {
            let row = report
                .rows
                .iter()
                .find(|r| r.test.name == expect.test)
                .expect("expectation names a declared test");
            let col = report
                .model_names
                .iter()
                .position(|m| *m == expect.model)
                .unwrap_or_else(|| panic!("{}: unknown model {}", entry.name, expect.model));
            let want = if expect.pass {
                CorpusVerdict::Pass
            } else {
                CorpusVerdict::Fail
            };
            assert_eq!(
                row.verdicts[col],
                want,
                "{}: {} @ {} declared {} — got {}",
                entry.name,
                expect.test,
                expect.model,
                if expect.pass { "pass" } else { "fail" },
                row.verdicts[col].cell()
            );
        }
    }
}

#[test]
fn corpus_holds_the_five_scenarios() {
    let names: Vec<String> = corpus().into_iter().map(|e| e.name).collect();
    assert_eq!(
        names,
        ["dekker", "mpmc_queue", "seqlock", "spsc_ring", "treiber"]
    );
}

#[test]
fn every_entry_declares_checked_expectations() {
    for entry in corpus() {
        assert!(
            entry.expects.len() >= 4,
            "{}: a corpus entry must pin at least four verdicts",
            entry.name
        );
        // Every entry tells both stories: fenced ops passing across the
        // lattice, and raw twins pinning at least one failure.
        for model in ["sc", "tso", "pso", "relaxed"] {
            assert!(
                entry.expects.iter().any(|e| e.model == model),
                "{}: no expectation on {model}",
                entry.name
            );
        }
        assert!(
            entry.expects.iter().any(|e| e.pass),
            "{}: no passing expectation",
            entry.name
        );
        assert!(
            entry.expects.iter().any(|e| !e.pass),
            "{}: no failing expectation",
            entry.name
        );
    }
}

#[test]
fn declared_verdicts_are_reproduced() {
    let config = CorpusConfig {
        jobs: 2,
        ..CorpusConfig::default()
    };
    assert_verdicts(&corpus(), &config);
}

/// `// cf: explain` pins are machine-checked too: re-running the entry
/// with provenance on, every pinned fence coordinate must appear in
/// the solved cell's provenance report. The pin is a subset
/// requirement — the core may lean on more fences than the header
/// names, but never fewer.
#[test]
fn declared_explains_are_reproduced() {
    let entries: Vec<CorpusEntry> = corpus()
        .into_iter()
        .filter(|e| !e.explains.is_empty())
        .collect();
    assert!(
        entries.iter().any(|e| e.name == "treiber"),
        "the treiber entry must pin at least one provenance explain"
    );
    let config = CorpusConfig {
        jobs: 2,
        provenance: true,
        ..CorpusConfig::default()
    };
    for entry in &entries {
        let report = run_corpus(&entry.harness, &entry.tests, &config);
        for pin in &entry.explains {
            let row = report
                .rows
                .iter()
                .find(|r| r.test.name == pin.test)
                .expect("explain names a declared test");
            let col = report
                .model_names
                .iter()
                .position(|m| *m == pin.model)
                .unwrap_or_else(|| panic!("{}: unknown model {}", entry.name, pin.model));
            let explain = row.explains[col].as_ref().unwrap_or_else(|| {
                panic!(
                    "{}: {} @ {} pinned but the cell carries no provenance \
                     (was it inferred instead of solved?)",
                    entry.name, pin.test, pin.model
                )
            });
            for coord in &pin.fences {
                assert!(
                    explain.contains(coord),
                    "{}: {} @ {} provenance must mention `{coord}`, got: {explain}",
                    entry.name,
                    pin.test,
                    pin.model
                );
            }
        }
    }
}

/// The ported C11 litmus family in `corpus/c11/` — checked against the
/// hardware lattice *plus* the `c11.cfm` / `rc11.cfm` spec columns.
fn c11_config() -> CorpusConfig {
    let specs = vec![
        cf_spec::compile(cf_spec::bundled::C11).expect("c11.cfm compiles"),
        cf_spec::compile(cf_spec::bundled::RC11).expect("rc11.cfm compiles"),
    ];
    CorpusConfig {
        specs,
        jobs: 2,
        ..CorpusConfig::default()
    }
}

#[test]
fn c11_family_is_ported_in_force() {
    let entries = c11_corpus();
    let total_tests: usize = entries.iter().map(|e| e.tests.len()).sum();
    assert!(
        total_tests >= 25,
        "corpus/c11 must port at least 25 litmus tests, found {total_tests}"
    );
    // Every litmus test pins its verdict on both ordering specs: the
    // family exists to exercise c11.cfm and rc11.cfm, so an entry that
    // only speaks about hardware models has rotted.
    for entry in &entries {
        for test in &entry.tests {
            for spec in ["c11", "rc11"] {
                assert!(
                    entry
                        .expects
                        .iter()
                        .any(|e| e.test == test.name && e.model == spec),
                    "{}/{}: no expectation on {spec}",
                    entry.name,
                    test.name
                );
            }
        }
        // And the family tells both stories per entry: something the
        // orderings make safe, and something they leave broken.
        assert!(
            entry.expects.iter().any(|e| e.pass),
            "{}: no passing expectation",
            entry.name
        );
        assert!(
            entry.expects.iter().any(|e| !e.pass),
            "{}: no failing expectation",
            entry.name
        );
    }
}

#[test]
fn c11_declared_verdicts_are_reproduced() {
    assert_verdicts(&c11_corpus(), &c11_config());
}
