//! The scenario corpus under `corpus/` is machine-checked: every entry
//! loads, compiles, mines, and reproduces every verdict its header
//! declares — so the corpus cannot rot any more than the docs can.

use std::path::Path;

use cf_synth::corpus::{load_dir, CorpusEntry};
use cf_synth::{run_corpus, CorpusConfig, CorpusVerdict};

fn corpus() -> Vec<CorpusEntry> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    load_dir(&dir).expect("corpus loads")
}

#[test]
fn corpus_holds_the_four_scenarios() {
    let names: Vec<String> = corpus().into_iter().map(|e| e.name).collect();
    assert_eq!(names, ["dekker", "mpmc_queue", "seqlock", "spsc_ring"]);
}

#[test]
fn every_entry_declares_checked_expectations() {
    for entry in corpus() {
        assert!(
            entry.expects.len() >= 4,
            "{}: a corpus entry must pin at least four verdicts",
            entry.name
        );
        // Every entry tells both stories: fenced ops passing across the
        // lattice, and raw twins pinning at least one failure.
        for model in ["sc", "tso", "pso", "relaxed"] {
            assert!(
                entry.expects.iter().any(|e| e.model == model),
                "{}: no expectation on {model}",
                entry.name
            );
        }
        assert!(
            entry.expects.iter().any(|e| e.pass),
            "{}: no passing expectation",
            entry.name
        );
        assert!(
            entry.expects.iter().any(|e| !e.pass),
            "{}: no failing expectation",
            entry.name
        );
    }
}

#[test]
fn declared_verdicts_are_reproduced() {
    let config = CorpusConfig {
        jobs: 2,
        ..CorpusConfig::default()
    };
    for entry in corpus() {
        let report = run_corpus(&entry.harness, &entry.tests, &config);
        for row in &report.rows {
            assert!(
                row.mine_error.is_none(),
                "{}/{}: mining failed: {:?}",
                entry.name,
                row.test.name,
                row.mine_error
            );
            for (model, v) in report.model_names.iter().zip(&row.verdicts) {
                assert!(
                    !matches!(v, CorpusVerdict::Error(_)),
                    "{}/{} on {model}: {v:?}",
                    entry.name,
                    row.test.name
                );
            }
        }
        for expect in &entry.expects {
            let row = report
                .rows
                .iter()
                .find(|r| r.test.name == expect.test)
                .expect("expectation names a declared test");
            let col = report
                .model_names
                .iter()
                .position(|m| *m == expect.model)
                .unwrap_or_else(|| panic!("{}: unknown model {}", entry.name, expect.model));
            let want = if expect.pass {
                CorpusVerdict::Pass
            } else {
                CorpusVerdict::Fail
            };
            assert_eq!(
                row.verdicts[col],
                want,
                "{}: {} @ {} declared {} — got {}",
                entry.name,
                expect.test,
                expect.model,
                if expect.pass { "pass" } else { "fail" },
                row.verdicts[col].cell()
            );
        }
    }
}
