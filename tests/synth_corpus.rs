//! Acceptance suite for `cf-synth`: the synthesized bounded corpus
//! subsumes the hand-written treiber catalog — every harness a human
//! wrote appears (canonicalized) in the generated corpus and gets the
//! identical verdict from the engine-batched corpus runner as from the
//! one-shot oracle path the hand-written suites use — plus a
//! seeded-sample equivalence sweep and a jobs-determinism check.

use cf_algos::{tests as catalog, treiber, Variant};
use cf_memmodel::Mode;
use cf_sat::xorshift::Rng;
use cf_synth::{run_corpus, synthesize, CorpusConfig, CorpusVerdict, SynthBounds};
use checkfence::{mine_reference, CheckError, Harness, Query, TestSpec};

/// The one-shot oracle: the pattern every hand-written results suite
/// uses (mine the reference spec, answer one query on a throwaway
/// engine), folded to the corpus verdict domain.
fn oneshot(h: &Harness, t: &TestSpec, mode: Mode) -> CorpusVerdict {
    let spec = match mine_reference(h, t) {
        Ok(m) => m.spec,
        Err(e) => return CorpusVerdict::Error(e.to_string()),
    };
    match Query::check_inclusion(h, t, spec).on(mode).run() {
        Ok(v) => {
            if v.passed() {
                CorpusVerdict::Pass
            } else {
                CorpusVerdict::Fail
            }
        }
        Err(CheckError::BoundsDiverged { .. }) => CorpusVerdict::Diverged,
        Err(e) => CorpusVerdict::Error(e.to_string()),
    }
}

/// The canonical twin of a hand-written stack test, named through the
/// production reduction itself.
fn canonical_name(t: &TestSpec) -> String {
    cf_synth::canonicalize(t).name
}

#[test]
fn synthesized_corpus_covers_the_handwritten_stack_catalog() {
    let ops = treiber::harness(Variant::Fenced).ops;
    // (T=2, K=3) covers U0, Upc2, Upc3 and the init-seeded Ui2 …
    let two_by_three = synthesize(&ops, &SynthBounds::new(2, 3));
    // … and (T=4, K=1) covers the four-thread U1.
    let four_by_one = synthesize(&ops, &SynthBounds::new(4, 1));
    for name in ["U0", "Upc2", "Upc3", "Ui2", "U1"] {
        let t = catalog::by_name(name).expect("catalog test");
        let canonical = canonical_name(&t);
        let found = two_by_three
            .tests
            .iter()
            .chain(&four_by_one.tests)
            .any(|s| s.name == canonical);
        assert!(found, "{name} (canonical `{canonical}`) not synthesized");
    }
}

#[test]
fn synth_corpus_reproduces_every_handwritten_treiber_verdict() {
    // For both builds of the stack, the synthesized twins of the
    // hand-written harnesses must reproduce the hand-written verdicts
    // cell for cell — corpus runner (one engine batch, one encode per
    // test) versus the one-shot oracle the hand-written suites use.
    let names = ["U0", "Upc2", "Ui2", "U1"];
    let config = CorpusConfig {
        jobs: 2,
        ..CorpusConfig::default()
    };
    for variant in [Variant::Fenced, Variant::Unfenced] {
        let h = treiber::harness(variant);
        let all = synthesize(&h.ops, &SynthBounds::new(4, 3));
        let twins: Vec<TestSpec> = names
            .iter()
            .map(|n| {
                let canonical = canonical_name(&catalog::by_name(n).expect("catalog"));
                all.tests
                    .iter()
                    .find(|t| t.name == canonical)
                    .unwrap_or_else(|| panic!("{n} not synthesized"))
                    .clone()
            })
            .collect();
        let report = run_corpus(&h, &twins, &config);
        assert_eq!(report.encodes as usize, report.sessions, "one encode each");
        for (name, row) in names.iter().zip(&report.rows) {
            let t = catalog::by_name(name).expect("catalog");
            for (mode, got) in Mode::hardware().iter().zip(&row.verdicts) {
                let want = oneshot(&h, &t, *mode);
                assert_eq!(
                    *got,
                    want,
                    "{}/{name} on {}: corpus runner vs one-shot oracle",
                    h.name,
                    mode.name()
                );
            }
        }
        // And the paper-style qualitative expectations hold.
        let u0 = &report.rows[0];
        match variant {
            Variant::Fenced => {
                for (mode, v) in report.model_names.iter().zip(&u0.verdicts) {
                    assert_eq!(*v, CorpusVerdict::Pass, "fenced U0 on {mode}");
                }
            }
            Variant::Unfenced => {
                assert_eq!(u0.verdicts[0], CorpusVerdict::Pass, "unfenced U0 on sc");
                assert_eq!(u0.verdicts[1], CorpusVerdict::Pass, "unfenced U0 on tso");
                assert_eq!(u0.verdicts[2], CorpusVerdict::Fail, "unfenced U0 on pso");
                assert_eq!(
                    u0.verdicts[3],
                    CorpusVerdict::Fail,
                    "unfenced U0 on relaxed"
                );
            }
        }
    }
}

#[test]
fn seeded_sample_matches_the_oneshot_oracle_and_jobs_are_deterministic() {
    // A seeded random sample of the synthesized corpus: the
    // engine-batched runner and the one-shot oracle must agree on
    // every sampled (test, model) cell, and the coverage table must be
    // byte-identical at jobs=1 and jobs=4.
    let h = treiber::harness(Variant::Unfenced);
    let corpus = synthesize(&h.ops, &SynthBounds::new(2, 3));
    let small: Vec<&TestSpec> = corpus.tests.iter().filter(|t| t.num_ops() <= 4).collect();
    let mut rng = Rng::new(0xcf5);
    let mut sample: Vec<TestSpec> = Vec::new();
    while sample.len() < 4 {
        let pick = small[rng.below(small.len() as u64) as usize];
        if !sample.iter().any(|t| t.name == pick.name) {
            sample.push(pick.clone());
        }
    }
    let seq = run_corpus(&h, &sample, &CorpusConfig::default());
    let par = run_corpus(
        &h,
        &sample,
        &CorpusConfig {
            jobs: 4,
            ..CorpusConfig::default()
        },
    );
    assert_eq!(seq.table(), par.table(), "tables must not depend on jobs");
    for row in &seq.rows {
        for (mode, got) in Mode::hardware().iter().zip(&row.verdicts) {
            assert_eq!(
                *got,
                oneshot(&h, &row.test, *mode),
                "{} on {}",
                row.test.name,
                mode.name()
            );
        }
    }
}
