//! Fault-injection suite (requires `--features faults`): deterministic,
//! seed-addressed failures prove the engine's graceful-degradation
//! contract — exhausted cells render `?` identically at any `--jobs`
//! level, a panicking worker loses at most its in-flight query, and a
//! cleared plan restores byte-identical verdicts.
#![cfg(feature = "faults")]

use std::sync::Mutex;

use cf_memmodel::Mode;
use cf_sat::faults::{self, FaultKind, FaultPlan};
use cf_synth::{run_corpus, synthesize, CorpusConfig, CorpusVerdict, SynthBounds};
use checkfence::{
    mine_reference, Engine, EngineConfig, Harness, InconclusiveReason, OpSig, Query, TestSpec,
};

/// The fault-plan registry is process-global; serialize every test that
/// installs one.
static GATE: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn mailbox() -> (Harness, TestSpec) {
    let program = cf_minic::compile(
        r#"
        int data; int flag;
        void put(int v) { data = v + 1; fence("store-store"); flag = 1; }
        int get() { int f = flag; fence("load-load");
                    if (f == 0) { return 0 - 1; } return data; }
        "#,
    )
    .expect("compiles");
    let harness = Harness {
        name: "mailbox".into(),
        program,
        init_proc: None,
        ops: vec![
            OpSig {
                key: 'p',
                proc_name: "put".into(),
                num_args: 1,
                has_ret: false,
            },
            OpSig {
                key: 'g',
                proc_name: "get".into(),
                num_args: 0,
                has_ret: true,
            },
        ],
    };
    let test = TestSpec::parse("pg", "( p | g )").expect("parses");
    (harness, test)
}

/// A mode-sweep batch over the mailbox, summarized per cell: `None` for
/// a conclusive verdict (with its pass bit), `Some(reason)` otherwise.
fn sweep(jobs: usize) -> Vec<(String, Result<bool, InconclusiveReason>)> {
    let (h, t) = mailbox();
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let mut engine = Engine::new(EngineConfig::default().with_jobs(jobs));
    let queries: Vec<Query> = Mode::hardware()
        .iter()
        .map(|&m| Query::check_inclusion(&h, &t, spec.clone()).on(m))
        .collect();
    queries
        .iter()
        .zip(engine.run_batch(&queries))
        .map(|(q, v)| {
            let v = v.expect("faults degrade verdicts, never error the batch");
            (
                q.describe(),
                match v.inconclusive() {
                    Some(reason) => Err(reason),
                    None => Ok(v.passed()),
                },
            )
        })
        .collect()
}

/// Scattered synthetic exhaustion starves exactly the k victim cells —
/// selected by address, not arrival order — so the degraded sweep is
/// identical at `jobs = 1` and `jobs = 4`, and every other cell matches
/// the fault-free run.
#[test]
fn scattered_exhaustion_starves_the_same_k_cells_at_any_jobs_level() {
    let _g = locked();
    faults::clear();
    let healthy = sweep(1);

    let addrs: Vec<String> = healthy.iter().map(|(d, _)| format!("solve:{d}")).collect();
    let k = 2;
    let plan = FaultPlan::new(0xC0FFEE).scatter(FaultKind::Exhaust, &addrs, k);
    let victims: Vec<String> = plan.addresses().iter().map(|a| a.to_string()).collect();
    assert_eq!(victims.len(), k);

    faults::install(FaultPlan::new(0xC0FFEE).scatter(FaultKind::Exhaust, &addrs, k));
    let degraded_seq = sweep(1);
    faults::install(FaultPlan::new(0xC0FFEE).scatter(FaultKind::Exhaust, &addrs, k));
    let degraded_par = sweep(4);
    faults::clear();

    assert_eq!(degraded_seq, degraded_par, "degraded sweeps must agree");
    for (describe, cell) in &degraded_seq {
        let addr = format!("solve:{describe}");
        if victims.contains(&addr) {
            assert_eq!(
                *cell,
                Err(InconclusiveReason::Budget),
                "{describe}: a victim cell must starve"
            );
        } else {
            let healthy_cell = healthy
                .iter()
                .find(|(d, _)| d == describe)
                .map(|(_, c)| *c)
                .expect("same batch shape");
            assert_eq!(*cell, healthy_cell, "{describe}: untouched cells agree");
        }
    }
}

/// A worker panic poisons only its own session: the engine rebuilds the
/// session from the query's key and resubmits the in-flight query once,
/// so a single injected panic loses nothing.
#[test]
fn single_worker_panic_is_absorbed_by_rebuild_and_resubmit() {
    let _g = locked();
    let (h, t) = mailbox();
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let queries: Vec<Query> = Mode::hardware()
        .iter()
        .map(|&m| Query::check_inclusion(&h, &t, spec.clone()).on(m))
        .collect();

    faults::install(FaultPlan::new(1).panic_times(format!("worker:{}", queries[0].describe()), 1));
    let mut engine = Engine::new(EngineConfig::default().with_jobs(2));
    let verdicts = engine.run_batch(&queries);
    faults::clear();

    for (q, v) in queries.iter().zip(verdicts) {
        let v = v.expect("verdict");
        assert!(
            v.passed(),
            "{}: one panic must not cost any verdict (fenced mailbox passes everywhere)",
            q.describe()
        );
    }
    assert!(
        engine.stats().sessions >= 1,
        "the rebuilt session returned to the pool"
    );
}

/// The rebuilt session keeps the provenance instrumentation: a panicked
/// worker's resubmitted query still answers with a proof core, because
/// the rebuild path re-derives the provenance bit from the engine
/// config instead of the (lost) session it replaces.
#[test]
fn rebuilt_session_still_extracts_provenance() {
    let _g = locked();
    let (h, t) = mailbox();
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let queries: Vec<Query> = Mode::hardware()
        .iter()
        .map(|&m| Query::check_inclusion(&h, &t, spec.clone()).on(m))
        .collect();
    let victim = queries[0].describe();

    faults::install(FaultPlan::new(1).panic_times(format!("worker:{victim}"), 1));
    let mut engine = Engine::new(EngineConfig::default().with_jobs(2).with_provenance(true));
    let verdicts = engine.run_batch(&queries);
    faults::clear();

    for (q, v) in queries.iter().zip(verdicts) {
        let v = v.expect("verdict");
        assert!(v.passed(), "{}: fenced mailbox passes", q.describe());
        let p = v.provenance.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: a rebuilt session must stay instrumented for provenance",
                q.describe()
            )
        });
        assert!(p.core_size > 0, "{}: empty proof core", q.describe());
    }
}

/// A *persistent* panic (the rebuilt session dies too) degrades exactly
/// the in-flight query to `Inconclusive(ShardCrashed)`; every other
/// query in the batch still gets its verdict.
#[test]
fn persistent_worker_panic_degrades_only_the_inflight_query() {
    let _g = locked();
    let (h, t) = mailbox();
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let queries: Vec<Query> = Mode::hardware()
        .iter()
        .map(|&m| Query::check_inclusion(&h, &t, spec.clone()).on(m))
        .collect();
    let victim = queries[1].describe();

    faults::install(FaultPlan::new(1).panic_at(format!("worker:{victim}")));
    let mut engine = Engine::new(EngineConfig::default().with_jobs(2));
    let verdicts = engine.run_batch(&queries);
    faults::clear();

    for (q, v) in queries.iter().zip(verdicts) {
        let v = v.expect("verdict");
        if q.describe() == victim {
            assert_eq!(
                v.inconclusive(),
                Some(InconclusiveReason::ShardCrashed),
                "the doomed query degrades, it does not vanish"
            );
        } else {
            assert!(v.passed(), "{}: neighbours are unaffected", q.describe());
        }
    }
}

/// An injected stall drives the wall-clock deadline path: the solve
/// sleeps past its armed deadline and comes back `Deadline`, while the
/// retry (stall entry exhausted) succeeds — the transient-hang
/// self-heal story end to end.
#[test]
fn transient_stall_trips_the_deadline_and_the_retry_recovers() {
    let _g = locked();
    let (h, t) = mailbox();
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let q = Query::check_inclusion(&h, &t, spec).on(Mode::Relaxed);

    faults::install(FaultPlan::new(1).stall(format!("solve:{}", q.describe()), 30));
    let mut config = EngineConfig::single(Mode::Relaxed);
    config.check.deadline = Some(std::time::Duration::from_millis(5));
    config.check.max_retries = 0;
    let mut engine = Engine::new(config);
    let v = engine.run(&q).expect("verdict");
    assert_eq!(v.inconclusive(), Some(InconclusiveReason::Deadline));

    // Same stall, but bounded to one firing and one retry permitted:
    // the re-armed attempt runs stall-free and answers conclusively.
    faults::install(FaultPlan::new(1).stall_times(format!("solve:{}", q.describe()), 30, 1));
    let mut config = EngineConfig::single(Mode::Relaxed);
    config.check.deadline = Some(std::time::Duration::from_millis(5));
    config.check.max_retries = 1;
    let mut engine = Engine::new(config);
    let v = engine.run(&q).expect("verdict");
    faults::clear();
    assert!(v.passed(), "the retry self-heals a transient stall");
    assert_eq!(v.stats.retries, 1);
}

/// Fault-injected exhaustion on the synth corpus: victims scattered
/// over the first-solved (weakest) model column render exactly k `?`
/// cells, and the whole coverage table — a pure function of the
/// verdicts — is byte-identical at `jobs = 1` and `jobs = 4`.
#[test]
fn starved_corpus_cells_render_identically_across_jobs() {
    let _g = locked();
    use cf_algos::{lamport, Variant};
    let harness = lamport::harness(Variant::Fenced);
    let corpus = synthesize(&harness.ops, &SynthBounds::new(2, 1));
    assert!(!corpus.tests.is_empty());

    // The ladder solves the weakest column (`relaxed`) first, so those
    // cells are always solved, never inferred — faults there are
    // guaranteed to fire.
    let addrs: Vec<String> = corpus
        .tests
        .iter()
        .map(|t| format!("solve:check {}/{}@relaxed", harness.name, t.name))
        .collect();
    let k = 2.min(addrs.len());
    let table_at = |jobs: usize| {
        faults::install(FaultPlan::new(7).scatter(FaultKind::Exhaust, &addrs, k));
        let config = CorpusConfig {
            jobs,
            ..CorpusConfig::default()
        };
        let report = run_corpus(&harness, &corpus.tests, &config);
        faults::clear();
        let starved = report
            .rows
            .iter()
            .flat_map(|r| r.verdicts.iter())
            .filter(|v| matches!(v, CorpusVerdict::Inconclusive))
            .count();
        assert_eq!(
            starved,
            k,
            "exactly the k victims starve:\n{}",
            report.table()
        );
        report.table()
    };
    assert_eq!(table_at(1), table_at(4), "tables must compare bit for bit");
}
