//! Soundness suite for verdict provenance: assumption cores must
//! *reproduce* their verdicts (re-solving with only the core
//! assumptions yields the same answer — asserted in-session by the
//! `verify_cores` knob), minimized cores must be locally minimal, and
//! the fence sets a proof reports must cross-check against the ablation
//! ground truth: a load-bearing fence, removed, breaks the check.

use cf_algos::{fences, lamport, ms2, tests as catalog, treiber, Variant};
use cf_memmodel::Mode;
use checkfence::{
    mine_reference, Engine, EngineConfig, Harness, ModelSel, ProvenanceKind, Query, TestSpec,
    Verdict,
};

/// An engine whose sessions extract, minimize and *verify* every core:
/// `verify_cores` re-solves with only the core assumptions (panicking
/// if the verdict is not reproduced) and probes each literal of a
/// minimized core for necessity.
fn strict_engine() -> Engine<'static> {
    let mut config = EngineConfig::default().with_provenance(true);
    config.check.core_minimize_ticks = Some(2_000_000);
    config.check.verify_cores = true;
    Engine::new(config)
}

fn check<'a>(engine: &mut Engine<'a>, h: &'a Harness, t: &'a TestSpec, mode: Mode) -> Verdict {
    let spec = mine_reference(h, t).expect("mines").spec;
    let q = Query::check_inclusion(h, t, spec).on(mode);
    engine.run(&q).expect("checks")
}

#[test]
fn cores_reproduce_their_verdicts_across_the_catalog() {
    // Three implementations, all four hardware models. Every PASS must
    // carry a verified proof core; every FAIL a witness environment.
    // The re-solve and minimality assertions happen inside the session
    // (`verify_cores`), so this test failing loudly *is* the check.
    let cells: [(Harness, &str); 3] = [
        (treiber::harness(Variant::Fenced), "U0"),
        (ms2::harness(Variant::Fenced), "T0"),
        (lamport::harness(Variant::Fenced), "L0"),
    ];
    for (h, tname) in &cells {
        let t = catalog::by_name(tname).expect("catalog test");
        let spec = mine_reference(h, &t).expect("mines").spec;
        let mut engine = strict_engine();
        let queries: Vec<Query> = Mode::hardware()
            .iter()
            .map(|m| Query::check_inclusion(h, &t, spec.clone()).on(*m))
            .collect();
        for (mode, v) in Mode::hardware().iter().zip(engine.run_batch(&queries)) {
            let v = v.expect("checks");
            let p = v
                .provenance
                .as_ref()
                .unwrap_or_else(|| panic!("{}/{tname}@{}: no provenance", h.name, mode.name()));
            match p.kind {
                ProvenanceKind::Proof => assert!(v.passed()),
                ProvenanceKind::Witness => assert!(!v.passed()),
            }
            if v.passed() {
                assert!(
                    p.minimized,
                    "{}/{tname}@{}: minimization under a generous budget",
                    h.name,
                    mode.name()
                );
            }
        }
    }
}

#[test]
fn minimized_proof_cores_name_load_bearing_fences() {
    // The ablation cross-check: every fence a minimized proof core
    // reports as load-bearing must, when removed from the program,
    // produce a failing (or bounds-diverging) weaken-mutant. The fence
    // coordinates in the provenance use the same rendering as
    // `cf_algos::fences::FenceSite`, so the two vocabularies join.
    let h = treiber::harness(Variant::Fenced);
    let t = catalog::by_name("U0").expect("catalog test");
    let mut engine = strict_engine();
    let v = check(&mut engine, &h, &t, Mode::Relaxed);
    assert!(v.passed(), "fenced treiber U0 passes on relaxed");
    let p = v.provenance.expect("provenance requested");
    assert_eq!(p.kind, ProvenanceKind::Proof);
    assert!(
        !p.fences.is_empty(),
        "the relaxed-mode proof must lean on at least one fence, got: {p}"
    );
    let spec = mine_reference(&h, &t).expect("mines").spec;
    let sites = fences::fence_sites(&h.program);
    for coord in &p.fences {
        let site = sites
            .iter()
            .find(|s| s.to_string() == *coord)
            .unwrap_or_else(|| panic!("reported fence `{coord}` is not a program site"));
        let mutant = Harness {
            program: fences::remove_fence(&h.program, site),
            ..h.clone()
        };
        let broken = match Query::check_inclusion(&mutant, &t, spec.clone())
            .on(Mode::Relaxed)
            .run()
        {
            Ok(v) => !v.passed(),
            Err(checkfence::CheckError::BoundsDiverged { .. }) => true,
            Err(e) => panic!("weaken-mutant of `{coord}` errored: {e}"),
        };
        assert!(
            broken,
            "core reports `{coord}` as load-bearing, but removing it still passes"
        );
    }
}

#[test]
fn witness_provenance_records_the_assumption_environment() {
    // FAIL verdicts carry the witness's assumption environment with
    // zero extra solves: the model it ran under and every fence that
    // was active while the counterexample was found.
    let h = treiber::harness_with_kinds(true, false); // load-load only
    let t = catalog::by_name("U0").expect("catalog test");
    let mut engine = strict_engine();
    let v = check(&mut engine, &h, &t, Mode::Pso);
    assert!(!v.passed(), "without the store-store fence, pso breaks U0");
    let p = v.provenance.expect("provenance requested");
    assert_eq!(p.kind, ProvenanceKind::Witness);
    assert_eq!(p.model, "pso");
    assert_eq!(p.core_size, 0, "witnesses have no unsat core");
    assert!(
        p.fences.iter().any(|f| f.contains("load-load")),
        "the surviving fence was active under the witness: {p}"
    );
    assert!(!p.minimized);
}

#[test]
fn spec_model_proofs_attribute_axiom_groups() {
    // Against a declarative `.cfm` model, a proof core names the axiom
    // groups it leaned on, in the spec's own `violated_axiom`
    // vocabulary.
    let spec_model = cf_spec::bundled::for_mode(Mode::Sc);
    let h = treiber::harness(Variant::Fenced);
    let t = catalog::by_name("U0").expect("catalog test");
    let mined = mine_reference(&h, &t).expect("mines").spec;
    let mut config = EngineConfig::default()
        .with_specs(vec![spec_model])
        .with_provenance(true);
    config.check.verify_cores = true;
    let mut engine = Engine::new(config);
    let q = Query::check_inclusion(&h, &t, mined).on_model(ModelSel::Spec(0));
    let v = engine.run(&q).expect("checks");
    assert!(v.passed(), "fenced treiber U0 passes under declarative sc");
    let p = v.provenance.expect("provenance requested");
    assert_eq!(p.kind, ProvenanceKind::Proof);
    assert_eq!(p.model, "sc");
    assert!(
        !p.axioms.is_empty(),
        "an sc proof must lean on at least one axiom group: {p}"
    );
}

#[test]
fn provenance_off_queries_are_unaffected_by_instrumented_neighbors() {
    // The zero-overhead contract: a plain query batched next to a
    // provenance query runs on a *separate* session pool and reports
    // exactly the verdict and solver statistics it reports alone.
    let h = treiber::harness(Variant::Fenced);
    let t = catalog::by_name("U0").expect("catalog test");
    let spec = mine_reference(&h, &t).expect("mines").spec;

    let mut alone = Engine::new(EngineConfig::default());
    let baseline = alone
        .run(&Query::check_inclusion(&h, &t, spec.clone()).on(Mode::Relaxed))
        .expect("checks");
    assert!(baseline.provenance.is_none(), "provenance is opt-in");

    let mut mixed = Engine::new(EngineConfig::default());
    let batch = [
        Query::check_inclusion(&h, &t, spec.clone()).on(Mode::Relaxed),
        Query::check_inclusion(&h, &t, spec)
            .on(Mode::Relaxed)
            .with_provenance(),
    ];
    let verdicts = mixed.run_batch(&batch);
    let plain = verdicts[0].as_ref().expect("checks");
    let instrumented = verdicts[1].as_ref().expect("checks");
    assert!(plain.provenance.is_none());
    assert!(instrumented.provenance.is_some());
    assert_eq!(plain.passed(), baseline.passed());
    assert_eq!(plain.stats.solves, baseline.stats.solves);
    assert_eq!(plain.stats.conflicts, baseline.stats.conflicts);
    assert_eq!(plain.stats.propagations, baseline.stats.propagations);
    assert_eq!(
        plain.stats.assumed_literals,
        baseline.stats.assumed_literals
    );
}

#[test]
fn budget_starved_minimization_degrades_to_the_unminimized_core() {
    // Minimization runs under its own tick budget; starving it must
    // degrade to the raw (verified, unminimized) core — never to an
    // inconclusive verdict.
    let h = treiber::harness(Variant::Fenced);
    let t = catalog::by_name("U0").expect("catalog test");
    let mut config = EngineConfig::default().with_provenance(true);
    config.check.core_minimize_ticks = Some(1);
    config.check.verify_cores = true;
    let mut engine = Engine::new(config);
    let v = check(&mut engine, &h, &t, Mode::Relaxed);
    assert!(
        v.passed(),
        "a starved minimizer must not change the verdict"
    );
    let p = v.provenance.expect("provenance requested");
    assert_eq!(p.kind, ProvenanceKind::Proof);
    assert!(
        !p.minimized,
        "one tick cannot complete a deletion pass; the core stays raw"
    );
}
