//! Observability suite: the cf-trace event stream is a deterministic
//! artifact. Stripped of wall clock and nondeterministic side-channel
//! events, a traced run compares bit for bit at any `--jobs` level, and
//! the profile aggregator closes its solver-tick attribution ledger.

use std::sync::Mutex;

use cf_algos::{lamport, Variant};
use cf_synth::{run_corpus, synthesize, CorpusConfig, SynthBounds};

/// The trace collector (and, in the faults module, the fault-plan
/// registry) is process-global; serialize every test that enables it.
static GATE: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs the lamport synth sweep under the collector and returns the
/// rendered JSONL trace. [`cf_trace::enable`] resets the batch/step
/// counters, so back-to-back captures are directly comparable.
fn traced_sweep(jobs: usize) -> String {
    let harness = lamport::harness(Variant::Fenced);
    let corpus = synthesize(&harness.ops, &SynthBounds::new(2, 1));
    assert!(!corpus.tests.is_empty());
    let config = CorpusConfig {
        jobs,
        ..CorpusConfig::default()
    };
    cf_trace::enable();
    let report = run_corpus(&harness, &corpus.tests, &config);
    cf_trace::disable();
    assert!(!report.rows.is_empty());
    cf_trace::render_jsonl(&cf_trace::take())
}

/// The tentpole determinism contract: every deterministic event carries
/// a canonical `(batch, item, step)` coordinate and real solver
/// counters, so the stripped trace of the same workload is
/// byte-identical whether the engine ran sequentially or on four
/// workers.
#[test]
fn stripped_synth_traces_are_identical_across_jobs() {
    let _g = locked();
    let seq = traced_sweep(1);
    let par = traced_sweep(4);
    assert!(
        seq.starts_with("{\"k\":\"trace_meta\""),
        "schema header leads"
    );

    let stripped = cf_trace::strip(&seq);
    assert_eq!(
        stripped,
        cf_trace::strip(&par),
        "stripped traces must compare bit for bit at jobs=1 vs jobs=4"
    );

    // The comparison is over real content: solver counters survive the
    // strip, while wall clock and nd side-channel events do not.
    assert!(stripped.contains("\"k\":\"query_done\""));
    assert!(stripped.contains("\"k\":\"sat_solve\""));
    assert!(stripped.contains("\"k\":\"corpus_done\""));
    assert!(stripped.contains("\"ticks\":"));
    assert!(!stripped.contains("_us\":"), "wall clock is stripped");
    assert!(!stripped.contains("\"nd\":1"), "nd events are stripped");
    // ...but the raw trace does carry them, for humans reading one run.
    assert!(seq.contains("\"k\":\"mine_reference\""));
    assert!(seq.contains("_us\":"));
}

/// The profile ledger closes: whole-query spans plus encode-phase ticks
/// account for (at least) 95% of the ground-truth solver ticks — in
/// practice exactly 100%, because eager unit propagation during CNF
/// construction is credited to the encode row.
#[test]
fn profile_attributes_at_least_95_percent_of_solver_ticks() {
    let _g = locked();
    let harness = lamport::harness(Variant::Fenced);
    let corpus = synthesize(&harness.ops, &SynthBounds::new(2, 1));
    cf_trace::enable();
    run_corpus(&harness, &corpus.tests, &CorpusConfig::default());
    cf_trace::disable();
    let profile = cf_trace::profile(&cf_trace::take());

    assert!(profile.total_ticks > 0, "the sweep does real solver work");
    let fraction = profile.attributed_fraction();
    assert!(
        fraction >= 0.95,
        "attributed {:.1}% of {} solver ticks; the unattributed bucket \
         must stay under 5%",
        fraction * 100.0,
        profile.total_ticks
    );
    assert!(
        fraction <= 1.0 + 1e-9,
        "attribution over 100% means ticks were double-counted"
    );

    let rendered = profile.render();
    assert!(rendered.contains("cost profile"));
    assert!(rendered.contains("attributed"));
}

/// Degraded runs stay in the determinism contract: starved cells,
/// retries, and crashed shards all surface as trace events, and the
/// stripped stream still compares bit for bit across `--jobs` levels.
#[cfg(feature = "faults")]
mod degraded {
    use super::*;

    use cf_memmodel::Mode;
    use cf_sat::faults::{self, FaultKind, FaultPlan};
    use checkfence::{
        mine_reference, Engine, EngineConfig, Harness, InconclusiveReason, OpSig, Query, TestSpec,
    };

    fn mailbox() -> (Harness, TestSpec) {
        let program = cf_minic::compile(
            r#"
            int data; int flag;
            void put(int v) { data = v + 1; fence("store-store"); flag = 1; }
            int get() { int f = flag; fence("load-load");
                        if (f == 0) { return 0 - 1; } return data; }
            "#,
        )
        .expect("compiles");
        let harness = Harness {
            name: "mailbox".into(),
            program,
            init_proc: None,
            ops: vec![
                OpSig {
                    key: 'p',
                    proc_name: "put".into(),
                    num_args: 1,
                    has_ret: false,
                },
                OpSig {
                    key: 'g',
                    proc_name: "get".into(),
                    num_args: 0,
                    has_ret: true,
                },
            ],
        };
        let test = TestSpec::parse("pg", "( p | g )").expect("parses");
        (harness, test)
    }

    /// Exhaustion scattered over the weakest ladder column starves the
    /// same cells by address at any jobs level, and the starved lanes'
    /// `attempt`/`retry`/`query_done` event sequences are part of the
    /// deterministic stream — the stripped traces still match.
    #[test]
    fn starved_sweep_traces_are_identical_and_carry_retry_events() {
        let _g = locked();
        let harness = lamport::harness(Variant::Fenced);
        let corpus = synthesize(&harness.ops, &SynthBounds::new(2, 1));
        let addrs: Vec<String> = corpus
            .tests
            .iter()
            .map(|t| format!("solve:check {}/{}@relaxed", harness.name, t.name))
            .collect();
        let k = 2.min(addrs.len());

        let traced = |jobs: usize| {
            faults::install(FaultPlan::new(7).scatter(FaultKind::Exhaust, &addrs, k));
            let config = CorpusConfig {
                jobs,
                ..CorpusConfig::default()
            };
            cf_trace::enable();
            run_corpus(&harness, &corpus.tests, &config);
            cf_trace::disable();
            faults::clear();
            cf_trace::render_jsonl(&cf_trace::take())
        };

        let seq = traced(1);
        let par = traced(4);
        assert_eq!(
            cf_trace::strip(&seq),
            cf_trace::strip(&par),
            "degraded stripped traces must compare bit for bit"
        );

        // The budget ladder ran out in public: every starved cell left
        // its retries and its inconclusive verdict in the stream.
        assert!(seq.contains("\"k\":\"retry\""));
        assert!(seq.contains("\"reason\":\"budget\""));
        assert!(seq.contains("\"outcome\":\"inconclusive\""));
    }

    /// A mutation matrix is one big (harness, test) group, so its shard
    /// count — and with it the session-pool shape — follows `jobs`.
    /// Starving *every* cell (the solve hook fires before any encode)
    /// leaves only the deterministic per-lane retry ladders in the
    /// stream, which must still compare bit for bit across jobs; the
    /// jobs-dependent pool shape rides the stripped `pool_stats` nd
    /// event instead.
    #[test]
    fn starved_matrix_traces_are_identical_across_jobs() {
        let _g = locked();
        use checkfence::mutate::{run_mutation_matrix, MatrixConfig, MutationConfig, MutationPlan};

        let (h, t) = mailbox();
        let plan = MutationPlan::build(&h.program, &MutationConfig::default());
        assert!(!plan.points.is_empty());
        // One address per cell: active toggles are part of a query's
        // describe string (`+t<id>`), so baseline and mutant cells of
        // the same model starve separately.
        let mut addrs: Vec<String> = Vec::new();
        for m in Mode::hardware() {
            let base = format!("solve:check {}+mutants/{}@{}", h.name, t.name, m.name());
            addrs.push(base.clone());
            for point in &plan.points {
                addrs.push(format!("{base}+t{}", point.id));
            }
        }

        let traced = |jobs: usize| {
            faults::install(FaultPlan::new(3).scatter(FaultKind::Exhaust, &addrs, addrs.len()));
            let config = MatrixConfig {
                jobs,
                ..MatrixConfig::default()
            };
            cf_trace::enable();
            let report = run_mutation_matrix(&h, &t, &plan, &config).expect("matrix runs");
            cf_trace::disable();
            faults::clear();
            for cell in report
                .baseline
                .iter()
                .chain(report.rows.iter().flat_map(|r| r.verdicts.iter()))
            {
                assert!(
                    matches!(cell, checkfence::mutate::MutantVerdict::Inconclusive(_)),
                    "every cell starves: {cell:?}"
                );
            }
            cf_trace::render_jsonl(&cf_trace::take())
        };

        let seq = traced(1);
        let par = traced(4);
        assert_eq!(
            cf_trace::strip(&seq),
            cf_trace::strip(&par),
            "starved matrix stripped traces must compare bit for bit"
        );
        assert!(seq.contains("\"k\":\"matrix_start\""));
        assert!(seq.contains("\"k\":\"matrix_done\""));
        assert!(seq.contains("\"k\":\"pool_stats\""));
        assert!(seq.contains("\"k\":\"retry\""));
    }

    /// A persistent worker panic shows up as `shard_crash` events plus a
    /// degraded `query_done` carrying the `shard-crashed` reason, while
    /// the neighbours' verdicts (and their trace spans) are unaffected.
    #[test]
    fn persistent_panic_emits_shard_crash_events() {
        let _g = locked();
        let (h, t) = mailbox();
        let spec = mine_reference(&h, &t).expect("mines").spec;
        let queries: Vec<Query> = Mode::hardware()
            .iter()
            .map(|&m| Query::check_inclusion(&h, &t, spec.clone()).on(m))
            .collect();
        let victim = queries[1].describe();

        faults::install(FaultPlan::new(1).panic_at(format!("worker:{victim}")));
        let mut engine = Engine::new(EngineConfig::default().with_jobs(2));
        cf_trace::enable();
        let verdicts = engine.run_batch(&queries);
        cf_trace::disable();
        faults::clear();

        for (q, v) in queries.iter().zip(verdicts) {
            let v = v.expect("verdict");
            if q.describe() == victim {
                assert_eq!(v.inconclusive(), Some(InconclusiveReason::ShardCrashed));
            } else {
                assert!(v.passed(), "{}: neighbours are unaffected", q.describe());
            }
        }

        let trace = cf_trace::render_jsonl(&cf_trace::take());
        assert!(trace.contains("\"k\":\"shard_crash\""));
        assert!(trace.contains("\"reason\":\"shard-crashed\""));
        // The crash-and-rebuild cycle spawns sessions more than once.
        assert!(trace.contains("\"k\":\"session_spawn\""));
    }
}
