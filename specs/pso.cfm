// Partial store order (Sun SPARC PSO, paper §2.3.3): TSO plus
// relaxation of store->store order to different addresses (per-address
// FIFO write buffers). Loads stay in order. Equivalent to the built-in
// `Mode::Pso`.
model pso

option forwarding

// Loads stay ordered after loads AND stores; stores stay ordered only
// against later same-address stores.
let ppo = ([R] ; po) | (po & loc & ([W] ; po ; [W]))

order ppo | fence as preserved_program_order
