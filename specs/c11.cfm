// A C11-style per-access-ordering model over the engine's axiomatic
// vocabulary. Accesses carry ordering annotations (relaxed, acquire,
// release, acq_rel, seq_cst; unannotated accesses are non-atomic) and
// only annotated edges constrain the memory order:
//
//   - coherence: program order between same-location accesses,
//   - acquire loads keep all later accesses after them,
//   - release stores keep all earlier accesses before them,
//   - seq_cst accesses are totally ordered among themselves,
//   - C11 fences act as acquire/release/sc barriers positionally.
//
// Synchronizes-with is derived: a release store (or a store after a
// release fence), extended through its release sequence (same-thread
// same-location later stores and RMW chains), read by an acquire load
// (or a relaxed load before an acquire fence). The engine's postulated
// total memory order must respect every sw edge.
//
// Caveat: the engine's single total memory order makes this model
// multi-copy-atomic (stores become visible to all other threads at one
// point), so it is *stronger* than the full C11 standard for shapes
// like IRIW-acq; see docs/guide.md.
model c11

option forwarding

// Preserved program order, edge family by edge family.
let ppo_coh = po & loc
let ppo_acq = [ACQ] ; [R] ; po
let ppo_rel = po ; [REL] ; [W]
let ppo_sc = [SC] ; po ; [SC]
let ppo_facq = [R] ; fence_acq
let ppo_frel = fence_rel ; [W]
let ppo_fsc = fence_sc

order ppo_coh | ppo_acq | ppo_rel | ppo_sc | ppo_facq | ppo_frel | ppo_fsc as preserved_program_order

// Release sequences: a release-annotated store, or any store after a
// release fence, extended by later same-thread same-location stores
// and by read-modify-write chains.
let relw = [REL] ; [W]
let src0 = relw | (fence_rel ; [W])
let rs = src0 | (src0 ; (po & loc) ; [W])
let rsrmw = rs | (rs ; (rf ; rmw)+)

// Synchronizes-with: reading from a release sequence with acquire
// semantics (an acquire load, or a relaxed load before an acquire
// fence).
let swr = rsrmw ; rf
let sw = (swr ; [ACQ] ; [R]) | (swr ; [RLX] ; [R] ; fence_acq)

order sw as synchronizes_with
