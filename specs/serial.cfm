// Seriality (§2.3.2): the specification semantics — sequential
// consistency plus atomicity of whole operations. Equivalent to the
// built-in `Mode::Serial`.
model serial

option atomic_ops

order po as program_order
