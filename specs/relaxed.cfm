// The paper's Relaxed model (§2.3.2): store buffering with forwarding,
// load/store reordering, same-address load-load reordering. Only
// same-address edges *into a store* are preserved (axiom 1 of the
// Relaxed formalization). Equivalent to the built-in `Mode::Relaxed`.
model relaxed

option forwarding

order ((po ; [W]) & loc) | fence as same_address_stores
