// RC11-style strengthening of `c11.cfm`: identical preserved program
// order and synchronizes-with, plus the no-thin-air restriction of
// Lahav et al. (PLDI'17) — `po ∪ rf` must be acyclic, ruling out the
// load-buffering outcomes that plain C11 admits (and with them all
// out-of-thin-air executions). Keep the two files in sync except for
// the extra axiom.
model rc11

option forwarding

let ppo_coh = po & loc
let ppo_acq = [ACQ] ; [R] ; po
let ppo_rel = po ; [REL] ; [W]
let ppo_sc = [SC] ; po ; [SC]
let ppo_facq = [R] ; fence_acq
let ppo_frel = fence_rel ; [W]
let ppo_fsc = fence_sc

order ppo_coh | ppo_acq | ppo_rel | ppo_sc | ppo_facq | ppo_frel | ppo_fsc as preserved_program_order

let relw = [REL] ; [W]
let src0 = relw | (fence_rel ; [W])
let rs = src0 | (src0 ; (po & loc) ; [W])
let rsrmw = rs | (rs ; (rf ; rmw)+)

let swr = rsrmw ; rf
let sw = (swr ; [ACQ] ; [R]) | (swr ; [RLX] ; [R] ; fence_acq)

order sw as synchronizes_with

// No thin-air values: program order together with reads-from cannot
// form a cycle. (`irreflexive` of the transitive closure is true
// acyclicity — unlike `acyclic`, it does not fold the relation into
// the postulated memory order.)
irreflexive (po | rf)+ as no_thin_air
