// Sequential consistency (Lamport): the memory order respects every
// program-order edge, so fences add nothing. Equivalent to the built-in
// `Mode::Sc` (axiom 1 of the paper's SC formalization, §2.3.2).
model sc

order po as program_order
