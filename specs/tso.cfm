// Total store order (Sun SPARC TSO, paper §2.3.3): stores are buffered
// and forwarded to the issuing processor's own later loads; only the
// store->load program-order edge is relaxed. Equivalent to the built-in
// `Mode::Tso`.
model tso

option forwarding

// Preserved program order: everything except store->load.
let ppo = po \ ([W] ; po ; [R])

order ppo | fence as preserved_program_order
