//! `checkfence` — command-line front door to the verifier.
//!
//! ```text
//! checkfence [OPTIONS] <SOURCE.c>
//! checkfence --synth TYPE [--threads T] [--ops K] [--jobs N]
//!
//! ARGS:
//!   <SOURCE.c>           mini-C implementation file
//!
//! OPTIONS:
//!   --op KEY=PROC[:arg][:ret]   declare an operation (repeatable).
//!                               `arg` gives it one nondeterministic {0,1}
//!                               argument, `ret` an observed return value.
//!   --test [NAME=]TEXT          symbolic test in Fig. 8 notation, e.g.
//!                               "( e | d )" (repeatable; default name Tn)
//!   --init PROC                 initialization procedure
//!   --model MODEL               sc | tso | pso | relaxed, or a path to
//!                               a .cfm memory-model spec   [relaxed]
//!   --method METHOD             obs | commit-queue | commit-stack  [obs]
//!   --encoding ENC              pairwise | timestamp       [pairwise]
//!   --spec-cache FILE           read/write the mined observation set
//!                               (single test only)
//!   --mine-only                 print the observation set and exit
//!   --infer                     infer a minimal fence placement instead
//!                               of checking
//!   --infer-procs A,B           restrict inference candidates
//!   --no-prune                  encode every inference candidate, even
//!                               sites the static critical-cycle
//!                               analysis proves irrelevant (the kept
//!                               placement is identical either way)
//!   --analyze                   print the static critical-cycle report
//!                               for each test instead of checking:
//!                               every cycle with, per leg, the ordering
//!                               axiom a fence there would defend and
//!                               the models that relax it
//!   --ablate                    run a Fig. 11-style mutant matrix: every
//!                               statement deletion / fence weakening /
//!                               adjacent-op swap checked under all four
//!                               hardware models (plus the --model spec,
//!                               if one is given) from one incremental
//!                               encoding per test
//!   --synth TYPE                synthesize the whole bounded-test corpus
//!                               for a bundled data type (treiber, ms2,
//!                               msn, lazylist, harris, snark, lamport —
//!                               append `-unfenced` for the build without
//!                               fences), batch-check it across the
//!                               hardware lattice (plus a --model .cfm
//!                               column) and print a Fig. 5-style
//!                               coverage table; replaces <SOURCE.c>
//!   --threads T                 synthesis bound: threads per test  [2]
//!   --ops K                     synthesis bound: operations per
//!                               thread  [2]
//!   --no-static-triage          answer every corpus cell from the
//!                               solver, even cells the critical-cycle
//!                               analysis discharges statically (the
//!                               verdict table is identical either way)
//!   --jobs N                    run checks on N engine workers; shards
//!                               tests, and with --ablate the mutant ×
//!                               model matrix itself  [1]
//!   --budget TICKS              initial solver tick budget per query
//!                               (ticks = propagations + conflicts, so
//!                               the cutoff is machine-independent);
//!                               exhausted cells render as `?`
//!   --deadline-ms N             wall-clock deadline per query attempt
//!                               (machine-dependent safety net)
//!   --retries N                 escalating retries per query: each
//!                               retry multiplies the budgets by 8  [2]
//!   --explain                   attach verdict provenance: after each
//!                               PASS print the assumptions its proof
//!                               leaned on (model, axiom groups, fence
//!                               sites — the minimized unsat core of the
//!                               decisive solve), after each FAIL the
//!                               witness's assumption environment; with
//!                               --ablate/--synth appends the per-cell
//!                               provenance report. Deterministic: the
//!                               report is byte-identical at any --jobs
//!                               count
//!   --stats                     print a per-query solver-statistics
//!                               table (solves, conflicts, restarts,
//!                               retries, assumed literals, wall time,
//!                               static discharge)
//!   --stats-json FILE           write the --stats table as versioned
//!                               JSON (`schema_version` 3; includes the
//!                               cores_extracted/core_size ledger)
//!   --cx                        print full counterexample traces
//!   --trace FILE                write a structured JSONL event trace
//!                               (spans for encodes, solver calls,
//!                               retries, shard lifecycle); stripped of
//!                               timing fields it is byte-identical at
//!                               any --jobs count
//!   --metrics FILE              write a Prometheus-style text metrics
//!                               snapshot of the run
//!   --profile                   print a per-query-class cost profile
//!                               (solver-tick attribution) after the run
//!   -h, --help                  this text
//!
//! EXIT STATUS: 0 all tests pass, 1 some check failed (counterexample
//! or failing baseline), 2 usage or infrastructure error, 3 no failure
//! but some cells inconclusive (budget, deadline, or a crashed worker).
//! A failure wins over an inconclusive cell: 1 beats 3.
//! ```
//!
//! Example:
//!
//! ```text
//! checkfence queue.c --init init_queue \
//!     --op e=enqueue_op:arg --op d=dequeue_op:ret \
//!     --test "T0=( e | d )" --model relaxed
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cf_memmodel::{Mode, ModeSet};
use cf_spec::ModelSpec;
use checkfence::commit::AbstractType;
use checkfence::infer::{infer, InferConfig};
use checkfence::{
    mine_reference, Answer, CheckConfig, CheckOutcome, Engine, EngineConfig, Harness, ModelSel,
    ObsSet, OpSig, OrderEncoding, Query, QueryStats, TestSpec,
};

/// The model axis of a run: a built-in mode or a user `.cfm` spec.
#[derive(Clone)]
enum ModelArg {
    Builtin(Mode),
    Spec(ModelSpec),
}

impl ModelArg {
    fn name(&self) -> &str {
        match self {
            ModelArg::Builtin(m) => m.name(),
            ModelArg::Spec(s) => &s.name,
        }
    }
}

struct Options {
    source: PathBuf,
    ops: Vec<OpSig>,
    tests: Vec<(Option<String>, String)>,
    init: Option<String>,
    model: ModelArg,
    model_explicit: bool,
    method: Method,
    encoding: OrderEncoding,
    spec_cache: Option<PathBuf>,
    mine_only: bool,
    run_infer: bool,
    run_ablate: bool,
    run_analyze: bool,
    no_prune: bool,
    no_static_triage: bool,
    infer_procs: Option<Vec<String>>,
    synth: Option<String>,
    threads: usize,
    ops_per_thread: usize,
    bounds_explicit: bool,
    jobs: usize,
    budget: Option<u64>,
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    stats: bool,
    stats_json: Option<PathBuf>,
    cx: bool,
    explain: bool,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    profile: bool,
}

impl Options {
    /// `true` when any flag needs the structured event collector.
    fn wants_tracing(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.profile
    }
}

/// What a run that reached its end observed, folded into the exit code.
#[derive(Clone, Copy, Default)]
struct RunStatus {
    /// Some check found a counterexample (or an ablation baseline
    /// failed).
    failed: bool,
    /// Some cell ran out of budget/deadline or lost its worker.
    inconclusive: bool,
}

impl RunStatus {
    fn pass() -> RunStatus {
        RunStatus::default()
    }

    /// The documented contract: 1 (failure) beats 3 (inconclusive).
    fn exit_code(self) -> ExitCode {
        if self.failed {
            ExitCode::from(1)
        } else if self.inconclusive {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Method {
    Observation,
    Commit(AbstractType),
}

fn usage() -> &'static str {
    "usage: checkfence [OPTIONS] <SOURCE.c>\n\
     \n\
     options:\n\
     \x20 --op KEY=PROC[:arg][:ret]  declare an operation (repeatable)\n\
     \x20 --test [NAME=]TEXT         symbolic test, e.g. \"( e | d )\" (repeatable)\n\
     \x20 --init PROC                initialization procedure\n\
     \x20 --model MODEL              sc | tso | pso | relaxed,\n\
     \x20                            or a .cfm spec file    [relaxed]\n\
     \x20 --method METHOD            obs | commit-queue | commit-stack  [obs]\n\
     \x20 --encoding ENC             pairwise | timestamp       [pairwise]\n\
     \x20 --spec-cache FILE          cache the mined observation set\n\
     \x20 --mine-only                print the observation set and exit\n\
     \x20 --infer                    infer a minimal fence placement\n\
     \x20 --infer-procs A,B          restrict inference candidates\n\
     \x20 --no-prune                 encode even statically-irrelevant\n\
     \x20                            inference candidates\n\
     \x20 --analyze                  print the static critical-cycle report\n\
     \x20                            for each test instead of checking\n\
     \x20 --ablate                   run a mutant matrix (Fig. 11 ablations)\n\
     \x20 --synth TYPE               synthesize + batch-check the bounded\n\
     \x20                            test corpus of a bundled data type\n\
     \x20                            (e.g. treiber, ms2, lamport-unfenced);\n\
     \x20                            replaces <SOURCE.c>\n\
     \x20 --threads T                synthesis bound: threads per test [2]\n\
     \x20 --ops K                    synthesis bound: ops per thread [2]\n\
     \x20 --no-static-triage         answer every corpus cell from the\n\
     \x20                            solver (skip static triage)\n\
     \x20 --jobs N                   run checks on N engine workers [1]\n\
     \x20                            (shards tests, and with --ablate the\n\
     \x20                            mutant x model matrix itself)\n\
     \x20 --budget TICKS             initial solver tick budget per query\n\
     \x20                            (deterministic; exhausted cells\n\
     \x20                            render as `?`)\n\
     \x20 --deadline-ms N            wall-clock deadline per query attempt\n\
     \x20 --retries N                escalating retries per query (each\n\
     \x20                            retry multiplies the budgets by 8) [2]\n\
     \x20 --stats                    print a per-query solver-stats table\n\
     \x20 --stats-json FILE          write the --stats table as versioned JSON\n\
     \x20 --cx                       print full counterexample traces\n\
     \x20 --explain                  print verdict provenance (proof cores\n\
     \x20                            and witness environments) per verdict;\n\
     \x20                            in ablate/synth modes appends the\n\
     \x20                            per-cell provenance report\n\
     \x20 --trace FILE               write a structured JSONL event trace\n\
     \x20 --metrics FILE             write a Prometheus-style metrics snapshot\n\
     \x20 --profile                  print a per-query-class cost profile\n\
     \x20 -h, --help                 this text\n\
     \n\
     exit status: 0 all tests pass, 1 some check failed, 2 usage or\n\
     infrastructure error, 3 no failure but some cells inconclusive\n\
     (1 beats 3)"
}

fn parse_op(spec: &str) -> Result<OpSig, String> {
    let (key, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("--op `{spec}`: expected KEY=PROC[:arg][:ret]"))?;
    let mut key_chars = key.chars();
    let key = match (key_chars.next(), key_chars.next()) {
        (Some(c), None) => c,
        _ => return Err(format!("--op `{spec}`: KEY must be one character")),
    };
    let mut parts = rest.split(':');
    let proc_name = parts.next().unwrap_or_default().to_string();
    if proc_name.is_empty() {
        return Err(format!("--op `{spec}`: missing procedure name"));
    }
    let mut num_args = 0;
    let mut has_ret = false;
    for flag in parts {
        match flag {
            "arg" => num_args = 1,
            "ret" => has_ret = true,
            other => return Err(format!("--op `{spec}`: unknown flag `{other}`")),
        }
    }
    Ok(OpSig {
        key,
        proc_name,
        num_args,
        has_ret,
    })
}

fn parse_model(s: &str) -> Result<ModelArg, String> {
    if let Some(mode) = Mode::all()
        .into_iter()
        .find(|m| m.name() == s)
        .filter(|m| *m != Mode::Serial)
    {
        return Ok(ModelArg::Builtin(mode));
    }
    if s.ends_with(".cfm") || Path::new(s).exists() {
        let src = std::fs::read_to_string(s).map_err(|e| format!("--model {s}: {e}"))?;
        let spec = cf_spec::compile(&src).map_err(|e| format!("--model {s}: {e}"))?;
        return Ok(ModelArg::Spec(spec));
    }
    Err(format!(
        "--model `{s}`: expected sc, tso, pso, relaxed or a .cfm spec file"
    ))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut source = None;
    let mut opts = Options {
        source: PathBuf::new(),
        ops: Vec::new(),
        tests: Vec::new(),
        init: None,
        model: ModelArg::Builtin(Mode::Relaxed),
        model_explicit: false,
        method: Method::Observation,
        encoding: OrderEncoding::Pairwise,
        spec_cache: None,
        mine_only: false,
        run_infer: false,
        run_ablate: false,
        run_analyze: false,
        no_prune: false,
        no_static_triage: false,
        infer_procs: None,
        synth: None,
        threads: 2,
        ops_per_thread: 2,
        bounds_explicit: false,
        jobs: 1,
        budget: None,
        deadline_ms: None,
        retries: None,
        stats: false,
        stats_json: None,
        cx: false,
        explain: false,
        trace_out: None,
        metrics_out: None,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--op" => opts.ops.push(parse_op(&value("--op")?)?),
            "--test" => {
                let v = value("--test")?;
                match v.split_once('=') {
                    Some((name, text)) if !name.contains('(') => {
                        opts.tests.push((Some(name.to_string()), text.to_string()));
                    }
                    _ => opts.tests.push((None, v)),
                }
            }
            "--init" => opts.init = Some(value("--init")?),
            "--model" => {
                opts.model = parse_model(&value("--model")?)?;
                opts.model_explicit = true;
            }
            "--method" => {
                opts.method = match value("--method")?.as_str() {
                    "obs" => Method::Observation,
                    "commit-queue" => Method::Commit(AbstractType::Queue),
                    "commit-stack" => Method::Commit(AbstractType::Stack),
                    other => {
                        return Err(format!(
                            "--method `{other}`: expected obs, commit-queue or commit-stack"
                        ))
                    }
                };
            }
            "--encoding" => {
                opts.encoding = match value("--encoding")?.as_str() {
                    "pairwise" => OrderEncoding::Pairwise,
                    "timestamp" => OrderEncoding::Timestamp,
                    other => {
                        return Err(format!(
                            "--encoding `{other}`: expected pairwise or timestamp"
                        ))
                    }
                };
            }
            "--spec-cache" => opts.spec_cache = Some(PathBuf::from(value("--spec-cache")?)),
            "--mine-only" => opts.mine_only = true,
            "--infer" => opts.run_infer = true,
            "--ablate" => opts.run_ablate = true,
            "--analyze" => opts.run_analyze = true,
            "--no-prune" => opts.no_prune = true,
            "--no-static-triage" => opts.no_static_triage = true,
            "--infer-procs" => {
                opts.infer_procs = Some(
                    value("--infer-procs")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--synth" => opts.synth = Some(value("--synth")?),
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads `{v}`: expected a positive integer"))?;
                opts.bounds_explicit = true;
            }
            "--ops" => {
                let v = value("--ops")?;
                opts.ops_per_thread = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--ops `{v}`: expected a positive integer"))?;
                opts.bounds_explicit = true;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs `{v}`: expected a positive integer"))?;
            }
            "--budget" => {
                let v = value("--budget")?;
                opts.budget =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--budget `{v}`: expected a positive tick count")
                    })?);
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                opts.deadline_ms =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--deadline-ms `{v}`: expected a positive millisecond count")
                    })?);
            }
            "--retries" => {
                let v = value("--retries")?;
                opts.retries =
                    Some(v.parse::<u32>().map_err(|_| {
                        format!("--retries `{v}`: expected a non-negative integer")
                    })?);
            }
            "--stats" => opts.stats = true,
            "--stats-json" => opts.stats_json = Some(PathBuf::from(value("--stats-json")?)),
            "--cx" => opts.cx = true,
            "--explain" => opts.explain = true,
            "--trace" => opts.trace_out = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => opts.metrics_out = Some(PathBuf::from(value("--metrics")?)),
            "--profile" => opts.profile = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if source.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one source file given".into());
                }
            }
        }
    }
    if opts.synth.is_some() {
        // Synthesis mode generates its own harness and tests.
        if source.is_some() {
            return Err("--synth replaces <SOURCE.c>; drop the source file".into());
        }
        if !opts.ops.is_empty() || !opts.tests.is_empty() || opts.init.is_some() {
            return Err("--synth derives --op/--test/--init from the bundled type".into());
        }
        if opts.run_infer || opts.run_ablate || opts.mine_only || opts.spec_cache.is_some() {
            return Err(
                "--synth cannot be combined with --infer, --ablate, --mine-only or --spec-cache"
                    .into(),
            );
        }
        if opts.run_analyze {
            return Err("--analyze reports on --op/--test harnesses; drop --synth".into());
        }
        if !matches!(opts.method, Method::Observation) {
            return Err("--synth uses the observation method; drop --method".into());
        }
        // Accepting these and silently ignoring them would misreport
        // what the run did. The observability sinks (--trace/--metrics/
        // --profile) stay available: they tap the engine, not the table.
        if opts.stats || opts.stats_json.is_some() || opts.cx {
            return Err("--synth prints the coverage table; drop --stats/--stats-json/--cx".into());
        }
        if opts.model_explicit && matches!(opts.model, ModelArg::Builtin(_)) {
            return Err(
                "--synth always checks the whole hardware lattice; --model only adds a \
                 .cfm spec column"
                    .into(),
            );
        }
        return Ok(opts);
    }
    if opts.bounds_explicit {
        return Err("--threads/--ops are synthesis bounds; they need --synth".into());
    }
    if opts.no_static_triage {
        return Err("--no-static-triage governs corpus triage; it needs --synth".into());
    }
    if opts.no_prune && !opts.run_infer {
        return Err("--no-prune governs inference candidates; it needs --infer".into());
    }
    // Silently ignoring --explain in modes that never produce verdicts
    // would misreport what the run did.
    if opts.explain && (opts.mine_only || opts.run_infer || opts.run_analyze) {
        return Err(
            "--explain attaches provenance to check verdicts; it cannot be combined \
             with --mine-only, --infer or --analyze"
                .into(),
        );
    }
    opts.source = source.ok_or("missing source file")?;
    if opts.ops.is_empty() {
        return Err("at least one --op is required".into());
    }
    if opts.tests.is_empty() {
        return Err("at least one --test is required".into());
    }
    if opts.spec_cache.is_some() && opts.tests.len() != 1 {
        return Err("--spec-cache requires exactly one --test".into());
    }
    Ok(opts)
}

fn build_harness(opts: &Options) -> Result<Harness, String> {
    let source = std::fs::read_to_string(&opts.source)
        .map_err(|e| format!("cannot read {}: {e}", opts.source.display()))?;
    let program = cf_minic::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    Ok(Harness {
        name: opts
            .source
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "cli".into()),
        program,
        init_proc: opts.init.clone(),
        ops: opts.ops.clone(),
    })
}

fn mined_spec(
    harness: &Harness,
    test: &TestSpec,
    cache: Option<&PathBuf>,
) -> Result<(ObsSet, &'static str), String> {
    if let Some(path) = cache {
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let spec = ObsSet::from_text(&text).map_err(|e| e.to_string())?;
            return Ok((spec, "cached"));
        }
    }
    let spec = mine_reference(harness, test)
        .map_err(|e| format!("mining failed: {e}"))?
        .spec;
    if let Some(path) = cache {
        std::fs::write(path, spec.to_text())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok((spec, "mined"))
}

/// Applies the `--budget` / `--deadline-ms` / `--retries` resource-
/// governance flags to a check configuration, and under `--explain`
/// turns on budgeted proof-core minimization (the budget is solver
/// ticks, so the cutoff — and therefore the report — is deterministic
/// and machine-independent; starving it degrades to the raw core, never
/// to a changed verdict).
fn apply_budgets(check: &mut CheckConfig, opts: &Options) {
    check.tick_budget = opts.budget;
    check.deadline = opts.deadline_ms.map(std::time::Duration::from_millis);
    if let Some(r) = opts.retries {
        check.max_retries = r;
    }
    if opts.explain {
        check.core_minimize_ticks = Some(2_000_000);
    }
}

fn run() -> Result<RunStatus, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    if opts.wants_tracing() {
        cf_trace::enable();
    }
    let result = run_with(&opts);
    if opts.wants_tracing() {
        let events = cf_trace::take();
        cf_trace::disable();
        let flushed = flush_sinks(&opts, &events);
        // A run error outranks a sink error; a sink error still fails
        // an otherwise-green run (silently dropping the artifact the
        // user asked for would misreport what happened).
        return match (result, flushed) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (ok, Ok(())) => ok,
        };
    }
    result
}

/// Writes/prints every requested observability sink from one drained
/// event list, so the JSONL trace, the metrics snapshot and the profile
/// table always describe the same run.
fn flush_sinks(opts: &Options, events: &[cf_trace::Event]) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, cf_trace::render_jsonl(events))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, cf_trace::render_prom(events))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if opts.profile {
        print!("{}", cf_trace::profile(events).render());
    }
    Ok(())
}

fn run_with(opts: &Options) -> Result<RunStatus, String> {
    if let Some(name) = &opts.synth {
        return run_synth(opts, name);
    }
    let harness = build_harness(opts)?;

    let mut tests = Vec::new();
    for (i, (name, text)) in opts.tests.iter().enumerate() {
        let name = name.clone().unwrap_or_else(|| format!("T{i}"));
        tests.push(TestSpec::parse(&name, text).map_err(|e| e.to_string())?);
    }

    if opts.run_analyze {
        if opts.run_infer || opts.run_ablate || opts.mine_only {
            return Err(
                "--analyze cannot be combined with --infer, --ablate or --mine-only".into(),
            );
        }
        return run_analyze(&harness, &tests);
    }

    if opts.run_ablate {
        if opts.run_infer || opts.mine_only {
            return Err("--ablate cannot be combined with --infer or --mine-only".into());
        }
        if !matches!(opts.method, Method::Observation) {
            return Err("--ablate uses the observation method; drop --method".into());
        }
        if opts.spec_cache.is_some() {
            return Err("--ablate does not support --spec-cache".into());
        }
        return run_ablate(opts, &harness, &tests);
    }

    if opts.run_infer {
        let ModelArg::Builtin(mode) = &opts.model else {
            return Err("--infer requires a built-in --model (sc, tso, pso, relaxed)".into());
        };
        let config = InferConfig {
            procs: opts.infer_procs.clone(),
            prune: !opts.no_prune,
            ..InferConfig::default()
        };
        let r = infer(&harness, &tests, *mode, &config)
            .map_err(|e| format!("inference failed: {e}"))?;
        println!(
            "inferred {} fence(s) from {} candidates ({} pruned statically, {} encoded; \
             {} checks, {:.2?}):",
            r.kept.len(),
            r.candidates,
            r.candidates_pruned,
            r.candidates_encoded,
            r.checks,
            r.elapsed
        );
        for site in &r.kept {
            println!("  {site}");
        }
        return Ok(RunStatus::pass());
    }

    // Check / mine mode: mine every test's specification up front
    // (reference interpreter, optionally cached) — only where the spec
    // is actually consumed, i.e. not for the commit-point method — then
    // answer the whole battery as one engine batch, sharded across
    // --jobs workers.
    if matches!(opts.method, Method::Commit(_)) && matches!(opts.model, ModelArg::Spec(_)) {
        return Err("--method commit-* requires a built-in --model".into());
    }
    if opts.explain && matches!(opts.method, Method::Commit(_)) {
        return Err(
            "--explain extracts assumption cores from inclusion checks; \
             it requires the observation method"
                .into(),
        );
    }
    let needs_spec = opts.mine_only || matches!(opts.method, Method::Observation);
    let specs: Vec<Option<(ObsSet, &'static str)>> = if needs_spec {
        // Mining fans out across --jobs workers too (reference-
        // interpreter enumeration can dominate; the cache path is safe
        // because --spec-cache implies exactly one test).
        cf_bench::parallel::run_indexed(opts.jobs, tests.len(), |i| {
            mined_spec(&harness, &tests[i], opts.spec_cache.as_ref())
        })
        .into_iter()
        .map(|r| r.map(Some))
        .collect::<Result<_, _>>()?
    } else {
        tests.iter().map(|_| None).collect()
    };

    if opts.mine_only {
        for (test, mined) in tests.iter().zip(&specs) {
            let (spec, how) = mined.as_ref().expect("mined above");
            println!("# {} — {} observations ({how})", test.name, spec.len());
            print!("{}", spec.to_text());
        }
        return Ok(RunStatus::pass());
    }

    let mut engine_config = match &opts.model {
        ModelArg::Builtin(mode) => EngineConfig::single(*mode),
        ModelArg::Spec(spec) => EngineConfig {
            modes: ModeSet::empty(),
            ..EngineConfig::default()
        }
        .with_specs(vec![spec.clone()]),
    };
    engine_config.check.order_encoding = opts.encoding;
    apply_budgets(&mut engine_config.check, opts);
    let sel = match &opts.model {
        ModelArg::Builtin(mode) => ModelSel::Builtin(*mode),
        ModelArg::Spec(_) => ModelSel::Spec(0),
    };
    let mut engine = Engine::new(
        engine_config
            .with_jobs(opts.jobs)
            .with_provenance(opts.explain),
    );
    let queries: Vec<Query> = tests
        .iter()
        .zip(&specs)
        .map(|(test, mined)| match &opts.method {
            Method::Observation => {
                let (spec, _) = mined.as_ref().expect("mined above");
                Query::check_inclusion(&harness, test, spec.clone()).on_model(sel)
            }
            Method::Commit(ty) => Query::commit_method(&harness, test, *ty).on_model(sel),
        })
        .collect();

    let mut status = RunStatus::pass();
    let mut stats_rows: Vec<(String, QueryStats)> = Vec::new();
    // The --stats-json core ledger: proofs extracted and their summed
    // core size (0/0 unless --explain).
    let mut cores_extracted = 0u64;
    let mut core_size = 0u64;
    for ((test, mined), (query, verdict)) in tests
        .iter()
        .zip(&specs)
        .zip(queries.iter().zip(engine.run_batch(&queries)))
    {
        let mut verdict = verdict.map_err(|e| format!("check failed: {e}"))?;
        let label = match mined {
            Some((spec, how)) => format!("spec {how}, {} observations", spec.len()),
            None => "commit-point method".to_string(),
        };
        stats_rows.push((query.describe(), verdict.stats));
        let provenance = verdict.provenance.take();
        if let Some(p) = &provenance {
            if p.kind == checkfence::ProvenanceKind::Proof {
                cores_extracted += 1;
                core_size += p.core_size as u64;
            }
        }
        if let Answer::Inconclusive { reason, spent } = &verdict.answer {
            status.inconclusive = true;
            println!(
                "INCONCLUSIVE {} on {} ({reason}; {spent} ticks spent, {} retries)",
                test.name,
                opts.model.name(),
                verdict.stats.retries,
            );
            continue;
        }
        match verdict.into_outcome().expect("check outcome") {
            CheckOutcome::Pass => {
                println!("PASS {} on {} ({label})", test.name, opts.model.name());
                if let Some(p) = &provenance {
                    println!("  {p}");
                }
            }
            CheckOutcome::Fail(cx) => {
                status.failed = true;
                println!("FAIL {} on {} ({label})", test.name, opts.model.name());
                if let Some(p) = &provenance {
                    println!("  {p}");
                }
                let text = format!("{cx}");
                if opts.cx {
                    for line in text.lines() {
                        println!("  {line}");
                    }
                } else {
                    if let Some(first) = text.lines().next() {
                        println!("  {first}");
                    }
                    println!("  (re-run with --cx for the full counterexample)");
                }
            }
        }
    }
    if opts.stats {
        print!("{}", stats_table(&stats_rows));
    }
    if let Some(path) = &opts.stats_json {
        std::fs::write(path, stats_json(&stats_rows, cores_extracted, core_size))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(status)
}

/// Renders the `--stats-json` export: the `--stats` table's rows as
/// versioned JSON, one object per query in batch order, plus the
/// schema-v3 core ledger (`cores_extracted`/`core_size` — zero unless
/// the run asked for `--explain`). The `schema_version` field is
/// shared with the trace/metrics sinks and the benchmark JSON
/// artifacts.
fn stats_json(rows: &[(String, QueryStats)], cores_extracted: u64, core_size: u64) -> String {
    let escape = |s: &str| {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {},", cf_trace::SCHEMA_VERSION);
    let _ = writeln!(out, "  \"cores_extracted\": {cores_extracted},");
    let _ = writeln!(out, "  \"core_size\": {core_size},");
    out.push_str("  \"queries\": [\n");
    for (i, (label, s)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"solves\": {}, \"conflicts\": {}, \"restarts\": {}, \
             \"propagations\": {}, \"assumed_literals\": {}, \"retries\": {}, \
             \"wall_us\": {}, \"statically_discharged\": {}}}{comma}",
            escape(label),
            s.solves,
            s.conflicts,
            s.restarts,
            s.propagations,
            s.assumed_literals,
            s.retries,
            s.wall.as_micros(),
            s.statically_discharged,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the `--stats` per-query attribution table.
fn stats_table(rows: &[(String, QueryStats)]) -> String {
    let mut out = String::new();
    let w = rows
        .iter()
        .map(|(label, _)| label.len())
        .chain(["query".len()])
        .max()
        .unwrap_or(8);
    let _ = writeln!(
        out,
        "per-query stats:\n  {:<w$} {:>7} {:>10} {:>9} {:>7} {:>9} {:>10} {:>10}",
        "query", "solves", "conflicts", "restarts", "retries", "assumed", "wall", "discharged"
    );
    for (label, s) in rows {
        let _ = writeln!(
            out,
            "  {label:<w$} {:>7} {:>10} {:>9} {:>7} {:>9} {:>8.1}ms {:>10}",
            s.solves,
            s.conflicts,
            s.restarts,
            s.retries,
            s.assumed_literals,
            s.wall.as_secs_f64() * 1e3,
            if s.statically_discharged {
                "static"
            } else {
                "-"
            },
        );
    }
    out
}

/// The `--analyze` mode: build the static event/conflict graph of each
/// test, enumerate its critical cycles and print, for every cycle leg,
/// the program-order axiom a fence there would defend and the models
/// that relax it. Purely static — no mining and no solver calls — so it
/// reports in milliseconds even where checking would take minutes.
fn run_analyze(harness: &Harness, tests: &[TestSpec]) -> Result<RunStatus, String> {
    // `hardware()` already spans every built-in mode, and `.cfm` specs
    // have no static relaxation table, so the report always covers the
    // full lattice regardless of --model.
    let modes = Mode::hardware();
    for test in tests {
        let analysis = checkfence::cycles::analyze(harness, test);
        println!("analyze {}/{}:", harness.name, test.name);
        for line in analysis.report(&modes).lines() {
            println!("  {line}");
        }
    }
    Ok(RunStatus::pass())
}

/// The `--ablate` mode: plan statement mutations over the whole
/// implementation, then answer the mutant × model matrix for each test
/// from the engine — one incremental encoding per test at `--jobs 1`,
/// the matrix sharded across worker sessions otherwise (identical
/// tables either way). Succeeds when the *unmutated* build passes every
/// model (mutant verdicts are the experiment's data, not a pass/fail
/// criterion).
fn run_ablate(opts: &Options, harness: &Harness, tests: &[TestSpec]) -> Result<RunStatus, String> {
    use checkfence::mutate::{
        run_mutation_matrix, MatrixConfig, MutantVerdict, MutationConfig, MutationPlan,
    };
    let mut config = MatrixConfig {
        modes: Mode::hardware().to_vec(),
        jobs: opts.jobs,
        provenance: opts.explain,
        ..MatrixConfig::default()
    };
    config.check.order_encoding = opts.encoding;
    apply_budgets(&mut config.check, opts);
    if let ModelArg::Spec(spec) = &opts.model {
        config.specs.push(spec.clone());
    }
    let plan = MutationPlan::build(&harness.program, &MutationConfig::default());
    if plan.points.is_empty() {
        return Err("--ablate: the mutation planner found nothing to mutate".into());
    }
    let mut status = RunStatus::pass();
    for test in tests {
        let report = run_mutation_matrix(harness, test, &plan, &config)
            .map_err(|e| format!("ablation failed: {e}"))?;
        print!("{}", report.table());
        if opts.explain {
            print!("{}", report.explain());
        }
        println!("  {}", report.summary());
        let undecided = |v: &MutantVerdict| matches!(v, MutantVerdict::Inconclusive(_));
        status.failed |= report.baseline.iter().any(|v| !undecided(v) && v.caught());
        status.inconclusive |= report.baseline.iter().any(undecided)
            || report.rows.iter().any(|r| r.verdicts.iter().any(undecided));
    }
    Ok(status)
}

/// Resolves a `--synth` data-type name against the bundled algorithms
/// (`-unfenced` selects the build without fences).
fn synth_harness(name: &str) -> Option<Harness> {
    use cf_algos::{lamport, treiber, Algo, Variant};
    let (base, variant) = match name.strip_suffix("-unfenced") {
        Some(base) => (base, Variant::Unfenced),
        None => (name, Variant::Fenced),
    };
    match base {
        "treiber" => Some(treiber::harness(variant)),
        "lamport" => Some(lamport::harness(variant)),
        other => Algo::all()
            .into_iter()
            .find(|a| a.name() == other)
            .map(|a| a.harness(variant)),
    }
}

/// The `--synth` mode: enumerate the whole bounded test corpus of a
/// bundled data type, batch-check it across the hardware lattice (plus
/// any `--model` spec column) as one engine batch, and print the
/// coverage table. Synthesis, checking and pruning are deterministic,
/// so the table is byte-identical at any `--jobs` count; only the
/// trailing summary line (sessions/encodes/timing) varies.
fn run_synth(opts: &Options, name: &str) -> Result<RunStatus, String> {
    use cf_synth::{run_corpus, synthesize, CorpusConfig, CorpusRow, SynthBounds};
    let harness = synth_harness(name).ok_or_else(|| {
        format!(
            "--synth `{name}`: expected one of treiber, ms2, msn, lazylist, harris, \
             snark, lamport (append -unfenced for the build without fences)"
        )
    })?;
    let bounds = SynthBounds::new(opts.threads, opts.ops_per_thread);
    let corpus = synthesize(&harness.ops, &bounds);
    println!(
        "synth corpus — {}: threads <= {}, ops/thread <= {}, init <= {}",
        harness.name, bounds.max_threads, bounds.max_ops_per_thread, bounds.max_init_ops
    );
    println!(
        "generated {} shapes, {} canonical after symmetry reduction",
        corpus.generated,
        corpus.deduped()
    );
    let mut config = CorpusConfig {
        jobs: opts.jobs,
        static_triage: !opts.no_static_triage,
        provenance: opts.explain,
        ..CorpusConfig::default()
    };
    config.check.order_encoding = opts.encoding;
    apply_budgets(&mut config.check, opts);
    if let ModelArg::Spec(spec) = &opts.model {
        config.specs.push(spec.clone());
    }
    let report = run_corpus(&harness, &corpus.tests, &config);
    print!("{}", report.table());
    if opts.explain {
        print!("{}", report.explain());
    }
    println!("  {}", report.summary());
    // FAIL verdicts are the experiment's data; cells that could not be
    // answered (mining errors, divergence, exhausted budgets, crashed
    // workers) make the run inconclusive, not failed.
    Ok(RunStatus {
        failed: false,
        inconclusive: report.rows.iter().any(CorpusRow::incomplete),
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(status) => status.exit_code(),
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("checkfence: {msg}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
