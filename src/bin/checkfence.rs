//! `checkfence` — command-line front door to the verifier.
//!
//! ```text
//! checkfence [OPTIONS] <SOURCE.c>
//!
//! ARGS:
//!   <SOURCE.c>           mini-C implementation file
//!
//! OPTIONS:
//!   --op KEY=PROC[:arg][:ret]   declare an operation (repeatable).
//!                               `arg` gives it one nondeterministic {0,1}
//!                               argument, `ret` an observed return value.
//!   --test [NAME=]TEXT          symbolic test in Fig. 8 notation, e.g.
//!                               "( e | d )" (repeatable; default name Tn)
//!   --init PROC                 initialization procedure
//!   --model MODEL               sc | tso | pso | relaxed, or a path to
//!                               a .cfm memory-model spec   [relaxed]
//!   --method METHOD             obs | commit-queue | commit-stack  [obs]
//!   --encoding ENC              pairwise | timestamp       [pairwise]
//!   --spec-cache FILE           read/write the mined observation set
//!                               (single test only)
//!   --mine-only                 print the observation set and exit
//!   --infer                     infer a minimal fence placement instead
//!                               of checking
//!   --infer-procs A,B           restrict inference candidates
//!   --ablate                    run a Fig. 11-style mutant matrix: every
//!                               statement deletion / fence weakening /
//!                               adjacent-op swap checked under all four
//!                               hardware models (plus the --model spec,
//!                               if one is given) from one incremental
//!                               encoding per test
//!   --jobs N                    check tests on N worker threads (one
//!                               incremental session per test)  [1]
//!   --trace                     print full counterexample traces
//!   -h, --help                  this text
//!
//! EXIT STATUS: 0 all tests pass, 1 some check failed, 2 usage or
//! infrastructure error.
//! ```
//!
//! Example:
//!
//! ```text
//! checkfence queue.c --init init_queue \
//!     --op e=enqueue_op:arg --op d=dequeue_op:ret \
//!     --test "T0=( e | d )" --model relaxed
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cf_memmodel::Mode;
use cf_spec::ModelSpec;
use checkfence::commit::AbstractType;
use checkfence::infer::{infer, InferConfig};
use checkfence::{CheckOutcome, Checker, Harness, ObsSet, OpSig, OrderEncoding, TestSpec};

/// The model axis of a run: a built-in mode or a user `.cfm` spec.
#[derive(Clone)]
enum ModelArg {
    Builtin(Mode),
    Spec(ModelSpec),
}

impl ModelArg {
    fn name(&self) -> &str {
        match self {
            ModelArg::Builtin(m) => m.name(),
            ModelArg::Spec(s) => &s.name,
        }
    }
}

struct Options {
    source: PathBuf,
    ops: Vec<OpSig>,
    tests: Vec<(Option<String>, String)>,
    init: Option<String>,
    model: ModelArg,
    method: Method,
    encoding: OrderEncoding,
    spec_cache: Option<PathBuf>,
    mine_only: bool,
    run_infer: bool,
    run_ablate: bool,
    infer_procs: Option<Vec<String>>,
    jobs: usize,
    trace: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Method {
    Observation,
    Commit(AbstractType),
}

fn usage() -> &'static str {
    "usage: checkfence [OPTIONS] <SOURCE.c>\n\
     \n\
     options:\n\
     \x20 --op KEY=PROC[:arg][:ret]  declare an operation (repeatable)\n\
     \x20 --test [NAME=]TEXT         symbolic test, e.g. \"( e | d )\" (repeatable)\n\
     \x20 --init PROC                initialization procedure\n\
     \x20 --model MODEL              sc | tso | pso | relaxed,\n\
     \x20                            or a .cfm spec file    [relaxed]\n\
     \x20 --method METHOD            obs | commit-queue | commit-stack  [obs]\n\
     \x20 --encoding ENC             pairwise | timestamp       [pairwise]\n\
     \x20 --spec-cache FILE          cache the mined observation set\n\
     \x20 --mine-only                print the observation set and exit\n\
     \x20 --infer                    infer a minimal fence placement\n\
     \x20 --infer-procs A,B          restrict inference candidates\n\
     \x20 --ablate                   run a mutant matrix (Fig. 11 ablations)\n\
     \x20 --jobs N                   check tests on N worker threads [1]\n\
     \x20 --trace                    print full counterexample traces\n\
     \x20 -h, --help                 this text"
}

fn parse_op(spec: &str) -> Result<OpSig, String> {
    let (key, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("--op `{spec}`: expected KEY=PROC[:arg][:ret]"))?;
    let mut key_chars = key.chars();
    let key = match (key_chars.next(), key_chars.next()) {
        (Some(c), None) => c,
        _ => return Err(format!("--op `{spec}`: KEY must be one character")),
    };
    let mut parts = rest.split(':');
    let proc_name = parts.next().unwrap_or_default().to_string();
    if proc_name.is_empty() {
        return Err(format!("--op `{spec}`: missing procedure name"));
    }
    let mut num_args = 0;
    let mut has_ret = false;
    for flag in parts {
        match flag {
            "arg" => num_args = 1,
            "ret" => has_ret = true,
            other => return Err(format!("--op `{spec}`: unknown flag `{other}`")),
        }
    }
    Ok(OpSig {
        key,
        proc_name,
        num_args,
        has_ret,
    })
}

fn parse_model(s: &str) -> Result<ModelArg, String> {
    if let Some(mode) = Mode::all()
        .into_iter()
        .find(|m| m.name() == s)
        .filter(|m| *m != Mode::Serial)
    {
        return Ok(ModelArg::Builtin(mode));
    }
    if s.ends_with(".cfm") || Path::new(s).exists() {
        let src = std::fs::read_to_string(s).map_err(|e| format!("--model {s}: {e}"))?;
        let spec = cf_spec::compile(&src).map_err(|e| format!("--model {s}: {e}"))?;
        return Ok(ModelArg::Spec(spec));
    }
    Err(format!(
        "--model `{s}`: expected sc, tso, pso, relaxed or a .cfm spec file"
    ))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut source = None;
    let mut opts = Options {
        source: PathBuf::new(),
        ops: Vec::new(),
        tests: Vec::new(),
        init: None,
        model: ModelArg::Builtin(Mode::Relaxed),
        method: Method::Observation,
        encoding: OrderEncoding::Pairwise,
        spec_cache: None,
        mine_only: false,
        run_infer: false,
        run_ablate: false,
        infer_procs: None,
        jobs: 1,
        trace: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--op" => opts.ops.push(parse_op(&value("--op")?)?),
            "--test" => {
                let v = value("--test")?;
                match v.split_once('=') {
                    Some((name, text)) if !name.contains('(') => {
                        opts.tests.push((Some(name.to_string()), text.to_string()));
                    }
                    _ => opts.tests.push((None, v)),
                }
            }
            "--init" => opts.init = Some(value("--init")?),
            "--model" => opts.model = parse_model(&value("--model")?)?,
            "--method" => {
                opts.method = match value("--method")?.as_str() {
                    "obs" => Method::Observation,
                    "commit-queue" => Method::Commit(AbstractType::Queue),
                    "commit-stack" => Method::Commit(AbstractType::Stack),
                    other => {
                        return Err(format!(
                            "--method `{other}`: expected obs, commit-queue or commit-stack"
                        ))
                    }
                };
            }
            "--encoding" => {
                opts.encoding = match value("--encoding")?.as_str() {
                    "pairwise" => OrderEncoding::Pairwise,
                    "timestamp" => OrderEncoding::Timestamp,
                    other => {
                        return Err(format!(
                            "--encoding `{other}`: expected pairwise or timestamp"
                        ))
                    }
                };
            }
            "--spec-cache" => opts.spec_cache = Some(PathBuf::from(value("--spec-cache")?)),
            "--mine-only" => opts.mine_only = true,
            "--infer" => opts.run_infer = true,
            "--ablate" => opts.run_ablate = true,
            "--infer-procs" => {
                opts.infer_procs = Some(
                    value("--infer-procs")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs `{v}`: expected a positive integer"))?;
            }
            "--trace" => opts.trace = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if source.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one source file given".into());
                }
            }
        }
    }
    opts.source = source.ok_or("missing source file")?;
    if opts.ops.is_empty() {
        return Err("at least one --op is required".into());
    }
    if opts.tests.is_empty() {
        return Err("at least one --test is required".into());
    }
    if opts.spec_cache.is_some() && opts.tests.len() != 1 {
        return Err("--spec-cache requires exactly one --test".into());
    }
    Ok(opts)
}

fn build_harness(opts: &Options) -> Result<Harness, String> {
    let source = std::fs::read_to_string(&opts.source)
        .map_err(|e| format!("cannot read {}: {e}", opts.source.display()))?;
    let program = cf_minic::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    Ok(Harness {
        name: opts
            .source
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "cli".into()),
        program,
        init_proc: opts.init.clone(),
        ops: opts.ops.clone(),
    })
}

fn mined_spec(
    checker: &Checker<'_>,
    cache: Option<&PathBuf>,
) -> Result<(ObsSet, &'static str), String> {
    if let Some(path) = cache {
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let spec = ObsSet::from_text(&text).map_err(|e| e.to_string())?;
            return Ok((spec, "cached"));
        }
    }
    let spec = checker
        .mine_spec_reference()
        .map_err(|e| format!("mining failed: {e}"))?
        .spec;
    if let Some(path) = cache {
        std::fs::write(path, spec.to_text())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok((spec, "mined"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    let harness = build_harness(&opts)?;

    let mut tests = Vec::new();
    for (i, (name, text)) in opts.tests.iter().enumerate() {
        let name = name.clone().unwrap_or_else(|| format!("T{i}"));
        tests.push(TestSpec::parse(&name, text).map_err(|e| e.to_string())?);
    }

    if opts.run_ablate {
        if opts.run_infer || opts.mine_only {
            return Err("--ablate cannot be combined with --infer or --mine-only".into());
        }
        if !matches!(opts.method, Method::Observation) {
            return Err("--ablate uses the observation method; drop --method".into());
        }
        if opts.spec_cache.is_some() || opts.jobs > 1 {
            return Err("--ablate does not support --spec-cache or --jobs".into());
        }
        return run_ablate(&opts, &harness, &tests);
    }

    if opts.run_infer {
        let ModelArg::Builtin(mode) = &opts.model else {
            return Err("--infer requires a built-in --model (sc, tso, pso, relaxed)".into());
        };
        let config = InferConfig {
            procs: opts.infer_procs.clone(),
            ..InferConfig::default()
        };
        let r = infer(&harness, &tests, *mode, &config)
            .map_err(|e| format!("inference failed: {e}"))?;
        println!(
            "inferred {} fence(s) from {} candidates ({} checks, {:.2?}):",
            r.kept.len(),
            r.candidates,
            r.checks,
            r.elapsed
        );
        for site in &r.kept {
            println!("  {site}");
        }
        return Ok(true);
    }

    let mut all_passed = true;
    // --spec-cache implies exactly one test (enforced in parse_args), but
    // gate explicitly: the cache file's exists/read/write sequence is not
    // safe across concurrent workers.
    if opts.jobs <= 1 || tests.len() <= 1 || opts.spec_cache.is_some() {
        for test in &tests {
            let (out, passed) = run_one_test(&opts, &harness, test)?;
            print!("{out}");
            all_passed &= passed;
        }
        return Ok(all_passed);
    }

    // Parallel fan-out: one worker thread per job, one checking session
    // per test, outputs reassembled in test order.
    let reports = cf_bench::parallel::run_indexed(opts.jobs, tests.len(), |i| {
        run_one_test(&opts, &harness, &tests[i])
    });
    for r in reports {
        let (out, passed) = r?;
        print!("{out}");
        all_passed &= passed;
    }
    Ok(all_passed)
}

/// The `--ablate` mode: plan statement mutations over the whole
/// implementation, then answer the mutant × model matrix for each test
/// from one incremental encoding. Succeeds when the *unmutated* build
/// passes every model (mutant verdicts are the experiment's data, not a
/// pass/fail criterion).
fn run_ablate(opts: &Options, harness: &Harness, tests: &[TestSpec]) -> Result<bool, String> {
    use checkfence::mutate::{run_mutation_matrix, MatrixConfig, MutationConfig, MutationPlan};
    let mut config = MatrixConfig {
        modes: Mode::hardware().to_vec(),
        ..MatrixConfig::default()
    };
    config.check.order_encoding = opts.encoding;
    if let ModelArg::Spec(spec) = &opts.model {
        config.specs.push(spec.clone());
    }
    let plan = MutationPlan::build(&harness.program, &MutationConfig::default());
    if plan.points.is_empty() {
        return Err("--ablate: the mutation planner found nothing to mutate".into());
    }
    let mut all_passed = true;
    for test in tests {
        let report = run_mutation_matrix(harness, test, &plan, &config)
            .map_err(|e| format!("ablation failed: {e}"))?;
        print!("{}", report.table());
        all_passed &= report.baseline.iter().all(|v| !v.caught());
    }
    Ok(all_passed)
}

/// One test's report text and verdict (or a usage/infrastructure error).
type TestReport = Result<(String, bool), String>;

/// Checks (or mines) one test, returning its report text and verdict.
fn run_one_test(opts: &Options, harness: &Harness, test: &TestSpec) -> TestReport {
    let mut out = String::new();
    let mut checker = Checker::new(harness, test);
    if let ModelArg::Builtin(mode) = &opts.model {
        checker = checker.with_memory_model(*mode);
    }
    checker.config.order_encoding = opts.encoding;

    if opts.mine_only {
        let (spec, how) = mined_spec(&checker, opts.spec_cache.as_ref())?;
        let _ = writeln!(out, "# {} — {} observations ({how})", test.name, spec.len());
        out.push_str(&spec.to_text());
        return Ok((out, true));
    }

    let (outcome, label) = match (&opts.method, &opts.model) {
        (Method::Observation, model) => {
            let (spec, how) = mined_spec(&checker, opts.spec_cache.as_ref())?;
            let r = match model {
                ModelArg::Builtin(_) => checker.check_inclusion(&spec),
                ModelArg::Spec(m) => checker.check_inclusion_spec(m, &spec),
            }
            .map_err(|e| format!("check failed: {e}"))?;
            (
                r.outcome,
                format!("spec {how}, {} observations", spec.len()),
            )
        }
        (Method::Commit(_), ModelArg::Spec(_)) => {
            return Err("--method commit-* requires a built-in --model".into());
        }
        (Method::Commit(ty), ModelArg::Builtin(_)) => {
            let r = checker
                .check_commit_method(*ty)
                .map_err(|e| format!("check failed: {e}"))?;
            (r.outcome, "commit-point method".to_string())
        }
    };
    match outcome {
        CheckOutcome::Pass => {
            let _ = writeln!(out, "PASS {} on {} ({label})", test.name, opts.model.name());
            Ok((out, true))
        }
        CheckOutcome::Fail(cx) => {
            let _ = writeln!(out, "FAIL {} on {} ({label})", test.name, opts.model.name());
            let text = format!("{cx}");
            if opts.trace {
                for line in text.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            } else {
                if let Some(first) = text.lines().next() {
                    let _ = writeln!(out, "  {first}");
                }
                let _ = writeln!(out, "  (re-run with --trace for the full counterexample)");
            }
            Ok((out, false))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("checkfence: {msg}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
