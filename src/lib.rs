//! # checkfence-repro — reproduction of CheckFence (PLDI 2007)
//!
//! This facade crate ties together the workspace reproducing
//! *CheckFence: Checking Consistency of Concurrent Data Types on Relaxed
//! Memory Models* (Burckhardt, Alur, Martin; PLDI 2007):
//!
//! * [`sat`] — an incremental CDCL SAT solver (the zChaff stand-in);
//! * [`lsl`] — the load-store intermediate language and its interpreter;
//! * [`minic`] — the mini-C front-end (the CIL stand-in);
//! * [`memmodel`] — the axiomatic memory models (SC, TSO, PSO, Relaxed,
//!   Seriality) with an explicit-state oracle and litmus catalog;
//! * [`spec`] — declarative `.cfm` memory-model specifications compiled
//!   to both the explicit oracle and the SAT session encoder (the five
//!   built-ins ship as bundled specs under `specs/`);
//! * [`core`] — the CheckFence engine: symbolic execution, range
//!   analysis, CNF encoding, specification mining, inclusion checking,
//!   counterexample traces, the commit-point baseline, and automatic
//!   fence inference;
//! * [`cycles`] — static critical-cycle analysis (the delay-set view):
//!   per-model robustness verdicts that prune inference candidates and
//!   triage corpus cells without touching the solver
//!   (see `docs/static-analysis.md`);
//! * [`algos`] — the five studied implementations (two-lock queue,
//!   nonblocking queue, lazy list set, Harris set, snark deque) plus a
//!   Treiber-stack extension, with the Fig. 8 test catalog;
//! * [`synth`] — bounded harness synthesis: enumerate every test shape
//!   within (threads, ops) bounds, canonicalize away symmetry, and
//!   batch-check whole corpora on the engine with model-lattice
//!   inference and subsumption pruning, plus the loader for the mini-C
//!   scenario corpus under `corpus/`;
//! * [`trace`] — the structured-event observability layer: a
//!   zero-cost-when-disabled collector with deterministic coordinates,
//!   JSONL and Prometheus-style sinks, and the solver-cost profile
//!   (see `docs/observability.md`).
//!
//! A command-line front end is available as the `checkfence` binary
//! (`cargo run --release --bin checkfence -- --help`).
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ## Quick start
//!
//! ```
//! use checkfence_repro::prelude::*;
//!
//! let harness = cf_algos::msn::harness(cf_algos::Variant::Fenced);
//! let test = cf_algos::tests::by_name("T0").expect("catalog test");
//! let checker = Checker::new(&harness, &test).with_memory_model(Mode::Relaxed);
//! let spec = checker.mine_spec_reference().expect("mining").spec;
//! let result = checker.check_inclusion(&spec).expect("checking");
//! assert!(result.outcome.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cf_algos as algos;
pub use cf_cycles as cycles;
pub use cf_lsl as lsl;
pub use cf_memmodel as memmodel;
pub use cf_minic as minic;
pub use cf_sat as sat;
pub use cf_spec as spec;
pub use cf_synth as synth;
pub use cf_trace as trace;
pub use checkfence as core;

// The user guide's Rust blocks run as doctests of this crate, so the
// documentation under docs/ cannot drift from the API (mini-C and .cfm
// blocks are compiled by tests/doc_examples.rs).
#[cfg(doctest)]
mod doc_examples {
    #[doc = include_str!("../docs/guide.md")]
    pub struct Guide;
    #[doc = include_str!("../docs/spec-language.md")]
    pub struct SpecLanguage;
    #[doc = include_str!("../docs/ablation.md")]
    pub struct Ablation;
    #[doc = include_str!("../docs/query-api.md")]
    pub struct QueryApi;
    #[doc = include_str!("../docs/harness-synthesis.md")]
    pub struct HarnessSynthesis;
    #[doc = include_str!("../docs/robustness.md")]
    pub struct Robustness;
    #[doc = include_str!("../docs/observability.md")]
    pub struct Observability;
    #[doc = include_str!("../docs/static-analysis.md")]
    pub struct StaticAnalysis;
    #[doc = include_str!("../docs/provenance.md")]
    pub struct Provenance;
    #[doc = include_str!("../README.md")]
    pub struct Readme;
}

/// The most common imports for using the checker.
pub mod prelude {
    pub use cf_algos;
    pub use cf_memmodel::{Mode, ModeSet};
    pub use cf_spec::ModelSpec;
    pub use cf_synth::{
        run_corpus, synthesize, CorpusConfig, CorpusReport, CorpusVerdict, SynthBounds,
    };
    pub use checkfence::commit::AbstractType;
    pub use checkfence::infer::{infer, InferConfig};
    pub use checkfence::{
        mine_reference, Answer, CheckError, CheckOutcome, CheckSession, Checker, Counterexample,
        Engine, EngineConfig, Harness, ModelSel, ObsSet, OpSig, OrderEncoding, Query, QueryKind,
        QueryStats, SessionConfig, TestSpec, Verdict,
    };
}
