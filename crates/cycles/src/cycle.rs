//! Critical-cycle enumeration over the flattened event streams.
//!
//! A *critical cycle* (Shasha–Snir; Alglave et al., "Don't sit on the
//! fence") alternates per-thread program-order chords with cross-thread
//! conflict edges: each participating thread contributes one chord
//! (entry access → exit access, possibly the same access), the exit of
//! each leg conflicts with the entry of the next (different threads,
//! may-aliasing locations, at least one store), every thread appears at
//! most once and all conflict edges are distinct as unordered pairs.
//! If every chord of every critical cycle is enforced under a model,
//! all of that model's executions are conflict-serializable — the
//! delay-set argument the triage and pruning consumers rest on.

use std::collections::BTreeSet;

use cf_memmodel::AccessKind;

use crate::graph::Graph;

/// Hard cap on materialized cycles; hitting it marks the analysis
/// truncated, which makes every consumer fall back to the solver path.
const CYCLE_CAP: usize = 4096;

/// Hard cap on search steps (paranoia guard for adversarial inputs).
const WORK_CAP: usize = 1_000_000;

/// One per-thread leg of a cycle: the chord from the entry access to
/// the exit access (indices into the analysis' access list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Leg {
    /// Access the cycle enters this thread on.
    pub entry: usize,
    /// Access the cycle leaves this thread on (== `entry` when the
    /// thread contributes a single access and no chord).
    pub exit: usize,
    /// `true` when the chord crosses a loop back-edge: entry and exit
    /// share a loop and the exit sits at an earlier stream position,
    /// i.e. the exit instance belongs to a later iteration.
    pub wrap: bool,
}

/// A critical cycle: its per-thread legs in traversal order. The
/// conflict edges are implicit — leg *i*'s exit conflicts with leg
/// *i+1*'s entry (wrapping around).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cycle {
    /// Per-thread legs; at least two, each on a distinct thread.
    pub legs: Vec<Leg>,
}

/// Enumerates all critical cycles of the graph, deduplicated and in a
/// deterministic order. Returns `(cycles, truncated)`.
pub(crate) fn enumerate(g: &Graph) -> (Vec<Cycle>, bool) {
    let n = g.accesses.len();
    let threads = g
        .accesses
        .iter()
        .map(|a| a.thread)
        .max()
        .map_or(0, |t| t + 1);
    if !(2..=64).contains(&threads) {
        return (Vec::new(), threads > 64);
    }

    // Cross-thread conflict adjacency: may-aliasing pairs with at least
    // one store.
    let mut conf: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, row) in conf.iter_mut().enumerate() {
        for j in 0..n {
            let (a, b) = (&g.accesses[i], &g.accesses[j]);
            if i != j
                && a.thread != b.thread
                && (a.kind == AccessKind::Store || b.kind == AccessKind::Store)
                && a.loc.may_alias(&b.loc)
            {
                row.push(j);
            }
        }
    }

    // Chords available from each entry access: (exit, wrap).
    let shares_loop = |i: usize, j: usize| {
        g.accesses[i]
            .loops
            .iter()
            .any(|l| g.accesses[j].loops.contains(l))
    };
    let mut legs_from: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for (i, row) in legs_from.iter_mut().enumerate() {
        row.push((i, false));
        for j in 0..n {
            if i == j || g.accesses[i].thread != g.accesses[j].thread {
                continue;
            }
            if g.accesses[i].pos < g.accesses[j].pos {
                row.push((j, false));
            } else if shares_loop(i, j) {
                row.push((j, true));
            }
        }
    }

    let mut out: BTreeSet<Cycle> = BTreeSet::new();
    let mut work = 0usize;
    let mut truncated = false;

    // DFS fixing the starting thread as the minimum thread of the
    // cycle, so every cycle is found exactly once (up to its unique
    // starting leg) and the output order is deterministic.
    struct Dfs<'a> {
        g: &'a Graph,
        conf: &'a [Vec<usize>],
        legs_from: &'a [Vec<(usize, bool)>],
        out: &'a mut BTreeSet<Cycle>,
        work: &'a mut usize,
        truncated: &'a mut bool,
        threads: usize,
    }
    impl Dfs<'_> {
        fn go(&mut self, path: &mut Vec<Leg>, used: u64, t0: usize) {
            *self.work += 1;
            if *self.work > WORK_CAP || self.out.len() >= CYCLE_CAP {
                *self.truncated = true;
                return;
            }
            let first_entry = path[0].entry;
            let last_exit = path.last().expect("non-empty path").exit;
            if path.len() >= 2 && self.conf[last_exit].contains(&first_entry) {
                // Conflict edges must be pairwise distinct as unordered
                // pairs (two accesses alone are ordered by any single
                // execution and cannot cycle).
                let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(path.len());
                for k in 0..path.len() {
                    let x = path[k].exit;
                    let y = path[(k + 1) % path.len()].entry;
                    pairs.push((x.min(y), x.max(y)));
                }
                pairs.sort_unstable();
                if pairs.windows(2).all(|w| w[0] != w[1]) {
                    self.out.insert(Cycle { legs: path.clone() });
                }
            }
            if path.len() >= self.threads {
                return;
            }
            for &next in &self.conf[last_exit] {
                let t = self.g.accesses[next].thread;
                if t <= t0 || used & (1 << t) != 0 {
                    continue;
                }
                for &(exit, wrap) in &self.legs_from[next] {
                    path.push(Leg {
                        entry: next,
                        exit,
                        wrap,
                    });
                    self.go(path, used | (1 << t), t0);
                    path.pop();
                }
            }
        }
    }

    for start in 0..n {
        let t0 = g.accesses[start].thread;
        for li in 0..legs_from[start].len() {
            let (exit, wrap) = legs_from[start][li];
            let mut path = vec![Leg {
                entry: start,
                exit,
                wrap,
            }];
            let mut dfs = Dfs {
                g,
                conf: &conf,
                legs_from: &legs_from,
                out: &mut out,
                work: &mut work,
                truncated: &mut truncated,
                threads,
            };
            dfs.go(&mut path, 1 << t0, t0);
        }
    }
    (out.into_iter().collect(), truncated)
}
