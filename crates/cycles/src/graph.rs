//! Event-graph construction: flatten each thread of a bounded test into
//! a stream of abstract shared-memory events.
//!
//! The builder is a tiny abstract interpreter over registers. It tracks
//! exactly one kind of fact — *which abstract location a register may
//! point to* — because that is all the conflict relation needs. Every
//! other value is `Unknown`. Branches are not split: both arms of every
//! conditional contribute their events in program order, so the event
//! stream *over*-approximates what any execution performs. That is the
//! right direction for both consumers: extra events can only add
//! critical cycles, which makes triage refuse (sound) and pruning keep
//! more candidates (sound).

use cf_lsl::{FenceKind, FenceSem, MemOrder, PrimOp, ProcId, Program, Stmt, Value};
use cf_memmodel::AccessKind;

/// Maximum call-inlining depth before the builder gives up (recursion
/// guard; bundled implementations inline within 3–4 levels).
const MAX_DEPTH: usize = 16;

/// Abstract memory location of a shared access.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A global base with a partially known offset path (`None` entries
    /// are dynamically computed indices).
    Global {
        /// Index into [`Program::globals`].
        base: u32,
        /// Field/array offsets below the base; `None` = unknown index.
        path: Vec<Option<u32>>,
    },
    /// Some heap allocation ([`Stmt::Alloc`]); heap bases are fresh at
    /// runtime, so a heap location never aliases a global.
    Heap,
    /// Statically unknown; may alias anything.
    Unknown,
}

impl AbsLoc {
    /// `true` when the two locations could denote the same address.
    pub fn may_alias(&self, other: &AbsLoc) -> bool {
        match (self, other) {
            (AbsLoc::Unknown, _) | (_, AbsLoc::Unknown) => true,
            (AbsLoc::Heap, AbsLoc::Heap) => true,
            (AbsLoc::Heap, AbsLoc::Global { .. }) | (AbsLoc::Global { .. }, AbsLoc::Heap) => false,
            (AbsLoc::Global { base: a, path: p }, AbsLoc::Global { base: b, path: q }) => {
                a == b
                    && p.iter().zip(q.iter()).all(|(x, y)| match (x, y) {
                        (Some(x), Some(y)) => x == y,
                        _ => true,
                    })
            }
        }
    }

    /// `true` when the two locations certainly denote the same address
    /// (needed before crediting a model's same-address ordering rule).
    pub fn must_alias(&self, other: &AbsLoc) -> bool {
        match (self, other) {
            (AbsLoc::Global { base: a, path: p }, AbsLoc::Global { base: b, path: q }) => {
                a == b
                    && p.len() == q.len()
                    && p.iter()
                        .zip(q.iter())
                        .all(|(x, y)| matches!((x, y), (Some(x), Some(y)) if x == y))
            }
            _ => false,
        }
    }
}

/// One shared-memory access in a thread's flattened event stream.
#[derive(Clone, Debug)]
pub struct AccessEvent {
    /// Thread index (position in the test's thread list).
    pub thread: usize,
    /// Position in the thread's stream (accesses, fences and candidate
    /// sites share one counter, so positions order all three).
    pub pos: usize,
    /// Load or store ([`Stmt::Cas`] contributes one of each).
    pub kind: AccessKind,
    /// Abstract target location.
    pub loc: AbsLoc,
    /// Per-access C11 ordering annotation (recorded for reporting; the
    /// built-in hardware models ignore annotations, so triage never
    /// credits them).
    pub ord: MemOrder,
    /// Originating operation, e.g. `push_op#0`.
    pub op: String,
    /// Enclosing structured-block ids, outermost first.
    pub blocks: Vec<u32>,
    /// The subset of [`AccessEvent::blocks`] that are loops.
    pub loops: Vec<u32>,
    /// Atomic-group id when inside [`Stmt::Atomic`] (or the implicit
    /// group of a CAS).
    pub atomic: Option<u32>,
}

/// One real fence (classic or C11) in a thread's stream.
#[derive(Clone, Debug)]
pub struct FenceEvent {
    /// Thread index.
    pub thread: usize,
    /// Stream position.
    pub pos: usize,
    /// What the fence orders.
    pub sem: FenceSem,
    /// Enclosing structured-block ids, outermost first.
    pub blocks: Vec<u32>,
}

/// One candidate-fence site occurrence ([`Stmt::CandidateFence`]) in a
/// thread's stream. Candidates are inert for cycle construction and
/// never credited as real fences; they exist so the pruning consumer
/// can ask which sites could repair a relaxable cycle chord.
#[derive(Clone, Debug)]
pub struct SiteEvent {
    /// Thread index.
    pub thread: usize,
    /// Stream position.
    pub pos: usize,
    /// Stable candidate-site id (assigned by the inference driver).
    pub site: u32,
    /// The fence kind the site would insert.
    pub kind: FenceKind,
    /// Enclosing structured-block ids, outermost first.
    pub blocks: Vec<u32>,
}

/// The flattened per-thread event streams of one bounded test.
#[derive(Clone, Debug, Default)]
pub(crate) struct Graph {
    pub accesses: Vec<AccessEvent>,
    pub fences: Vec<FenceEvent>,
    pub sites: Vec<SiteEvent>,
    /// Set when inlining hit the depth cap: the streams are incomplete
    /// and no conclusion may be drawn from them.
    pub gave_up: bool,
    pub global_names: Vec<String>,
}

/// Abstract register value: a location or nothing we track.
#[derive(Clone, Debug, PartialEq, Eq)]
enum AbsVal {
    Unknown,
    Ptr(AbsLoc),
}

impl AbsVal {
    fn loc(&self) -> AbsLoc {
        match self {
            AbsVal::Ptr(l) => l.clone(),
            AbsVal::Unknown => AbsLoc::Unknown,
        }
    }
}

struct Builder<'p> {
    program: &'p Program,
    out: Graph,
    thread: usize,
    pos: usize,
    op: String,
    blocks: Vec<u32>,
    loops: Vec<u32>,
    next_block: u32,
    next_atomic: u32,
    atomic: Option<u32>,
}

pub(crate) fn build(program: &Program, threads: &[Vec<ProcId>]) -> Graph {
    let mut b = Builder {
        program,
        out: Graph {
            global_names: program.globals.iter().map(|g| g.name.clone()).collect(),
            ..Graph::default()
        },
        thread: 0,
        pos: 0,
        op: String::new(),
        blocks: Vec::new(),
        loops: Vec::new(),
        next_block: 0,
        next_atomic: 0,
        atomic: None,
    };
    for (t, ops) in threads.iter().enumerate() {
        b.thread = t;
        b.pos = 0;
        for (k, &proc) in ops.iter().enumerate() {
            b.op = format!("{}#{k}", program.procedure(proc).name);
            let nargs = program.procedure(proc).params.len();
            b.exec_proc(proc, &vec![AbsVal::Unknown; nargs], 0);
        }
    }
    b.out
}

impl Builder<'_> {
    fn exec_proc(&mut self, proc: ProcId, args: &[AbsVal], depth: usize) -> AbsVal {
        if depth > MAX_DEPTH {
            self.out.gave_up = true;
            return AbsVal::Unknown;
        }
        let p = self.program.procedure(proc);
        let mut regs = vec![AbsVal::Unknown; p.num_regs as usize];
        for (param, a) in p.params.iter().zip(args) {
            if let Some(r) = regs.get_mut(param.0 as usize) {
                *r = a.clone();
            }
        }
        self.exec_body(&p.body, &mut regs, depth);
        p.ret
            .and_then(|r| regs.get(r.0 as usize).cloned())
            .unwrap_or(AbsVal::Unknown)
    }

    fn exec_body(&mut self, body: &[Stmt], regs: &mut Vec<AbsVal>, depth: usize) {
        for stmt in body {
            self.exec_stmt(stmt, regs, depth);
        }
    }

    fn access(&mut self, kind: AccessKind, loc: AbsLoc, ord: MemOrder, atomic: Option<u32>) {
        self.out.accesses.push(AccessEvent {
            thread: self.thread,
            pos: self.pos,
            kind,
            loc,
            ord,
            op: self.op.clone(),
            blocks: self.blocks.clone(),
            loops: self.loops.clone(),
            atomic,
        });
        self.pos += 1;
    }

    fn exec_stmt(&mut self, stmt: &Stmt, regs: &mut Vec<AbsVal>, depth: usize) {
        let get = |regs: &[AbsVal], r: cf_lsl::Reg| {
            regs.get(r.0 as usize).cloned().unwrap_or(AbsVal::Unknown)
        };
        let set = |regs: &mut Vec<AbsVal>, r: cf_lsl::Reg, v: AbsVal| {
            if let Some(slot) = regs.get_mut(r.0 as usize) {
                *slot = v;
            }
        };
        match stmt {
            Stmt::Const { dst, value } => {
                let v = match value {
                    Value::Ptr(path) if !path.is_empty() => AbsVal::Ptr(AbsLoc::Global {
                        base: path[0],
                        path: path[1..].iter().map(|&k| Some(k)).collect(),
                    }),
                    _ => AbsVal::Unknown,
                };
                set(regs, *dst, v);
            }
            Stmt::Prim { dst, op, args } => {
                let v = match op {
                    PrimOp::Id => get(regs, args[0]),
                    PrimOp::Field(k) => match get(regs, args[0]) {
                        AbsVal::Ptr(AbsLoc::Global { base, mut path }) => {
                            path.push(Some(*k));
                            AbsVal::Ptr(AbsLoc::Global { base, path })
                        }
                        other => other,
                    },
                    PrimOp::Index => match get(regs, args[0]) {
                        AbsVal::Ptr(AbsLoc::Global { base, mut path }) => {
                            path.push(None);
                            AbsVal::Ptr(AbsLoc::Global { base, path })
                        }
                        other => other,
                    },
                    PrimOp::Ite => {
                        let (a, b) = (get(regs, args[1]), get(regs, args[2]));
                        if a == b {
                            a
                        } else {
                            AbsVal::Unknown
                        }
                    }
                    _ => AbsVal::Unknown,
                };
                set(regs, *dst, v);
            }
            Stmt::Load { dst, addr, ord } => {
                self.access(AccessKind::Load, get(regs, *addr).loc(), *ord, self.atomic);
                set(regs, *dst, AbsVal::Unknown);
            }
            Stmt::Store { addr, ord, .. } => {
                self.access(AccessKind::Store, get(regs, *addr).loc(), *ord, self.atomic);
            }
            Stmt::Cas { dst, addr, ord, .. } => {
                // The two halves of a CAS execute indivisibly: give them
                // a shared atomic group so the chord between them is
                // always enforced.
                let group = self.atomic.unwrap_or_else(|| {
                    self.next_atomic += 1;
                    self.next_atomic - 1
                });
                let loc = get(regs, *addr).loc();
                let (load_ord, store_ord) = ord.rmw_split();
                self.access(AccessKind::Load, loc.clone(), load_ord, Some(group));
                self.access(AccessKind::Store, loc, store_ord, Some(group));
                set(regs, *dst, AbsVal::Unknown);
            }
            Stmt::Fence(kind) => {
                self.out.fences.push(FenceEvent {
                    thread: self.thread,
                    pos: self.pos,
                    sem: FenceSem::Classic(*kind),
                    blocks: self.blocks.clone(),
                });
                self.pos += 1;
            }
            Stmt::CFence(ord) => {
                self.out.fences.push(FenceEvent {
                    thread: self.thread,
                    pos: self.pos,
                    sem: FenceSem::C11(*ord),
                    blocks: self.blocks.clone(),
                });
                self.pos += 1;
            }
            Stmt::CandidateFence { kind, site } => {
                self.out.sites.push(SiteEvent {
                    thread: self.thread,
                    pos: self.pos,
                    site: *site,
                    kind: *kind,
                    blocks: self.blocks.clone(),
                });
                self.pos += 1;
            }
            // Mutation toggles run their original branch: triage never
            // answers toggled queries, so the mutant arm is out of scope.
            Stmt::Toggle { orig, .. } => self.exec_body(orig, regs, depth),
            Stmt::Atomic(body) => {
                let prev = self.atomic;
                if prev.is_none() {
                    self.atomic = Some(self.next_atomic);
                    self.next_atomic += 1;
                }
                self.exec_body(body, regs, depth);
                self.atomic = prev;
            }
            Stmt::Call { dst, proc, args } => {
                let vals: Vec<AbsVal> = args.iter().map(|&r| get(regs, r)).collect();
                let ret = self.exec_proc(*proc, &vals, depth + 1);
                if let Some(d) = dst {
                    set(regs, *d, ret);
                }
            }
            Stmt::Block {
                is_loop,
                spin,
                body,
                ..
            } => {
                let id = self.next_block;
                self.next_block += 1;
                self.blocks.push(id);
                if *is_loop || *spin {
                    self.loops.push(id);
                }
                self.exec_body(body, regs, depth);
                if *is_loop || *spin {
                    self.loops.pop();
                }
                self.blocks.pop();
            }
            Stmt::Alloc { dst, .. } => set(regs, *dst, AbsVal::Ptr(AbsLoc::Heap)),
            Stmt::Break { .. }
            | Stmt::Continue { .. }
            | Stmt::Assert { .. }
            | Stmt::Assume { .. }
            | Stmt::CommitIf { .. } => {}
        }
    }
}
