//! Static critical-cycle analysis over LSL programs.
//!
//! Implements the delay-set view of fence placement (Shasha–Snir, as
//! revived for weak memory by Alglave et al., "Don't sit on the
//! fence"): flatten each thread of a bounded test into its stream of
//! abstract shared-memory events ([`AccessEvent`]), connect
//! cross-thread *conflict* edges (may-aliasing accesses, at least one
//! store), and enumerate the *critical cycles* — cycles alternating
//! conflict edges with per-thread program-order chords, each thread
//! contributing at most one chord. A program with no critical cycle is
//! conflict-serializable on **every** execution of **any** of the
//! built-in models; a program whose every cycle chord is enforced under
//! model `M` behaves identically to sequential consistency under `M`.
//!
//! Two consumers sit on this analysis:
//!
//! * **sweep triage** ([`CycleAnalysis::robust_serializable`],
//!   [`CycleAnalysis::robust_under`]) — corpus/synth planners discharge
//!   PASS cells without touching the solver, with the same soundness
//!   discipline as the model-lattice ladder: a triaged cell is never
//!   guessed FAIL, and chord enforcement is judged *conservatively*
//!   (under-credited), so a wrong answer can only send a cell back to
//!   the solver.
//! * **candidate pruning** ([`CycleAnalysis::useful_sites`]) — fence
//!   inference drops candidate sites that could not repair any
//!   relaxable chord of any cycle. Coverage here is judged *liberally*
//!   (over-credited), so a pruned site is guaranteed irrelevant and the
//!   inferred placement is unchanged.
//!
//! The analysis is deliberately execution-free: both arms of every
//! branch contribute events, loop bodies contribute one iteration plus
//! wrap-around chords, and unknown addresses alias everything. All of
//! that over-approximates the conflict graph, which is the sound
//! direction for both consumers.
//!
//! # Example
//!
//! The classic store-buffering shape is robust under SC but not under
//! TSO (both threads may read 0 out of their store buffers):
//!
//! ```
//! use cf_memmodel::Mode;
//!
//! let program = cf_minic::compile(
//!     r#"
//!     int x;
//!     int y;
//!     int t0_op() { x = 1; return y; }
//!     int t1_op() { y = 1; return x; }
//! "#,
//! )
//! .unwrap();
//! let t0 = program.proc_id("t0_op").unwrap();
//! let t1 = program.proc_id("t1_op").unwrap();
//!
//! let analysis = cf_cycles::analyze(&program, &[vec![t0], vec![t1]]);
//! assert!(analysis.reliable());
//! assert!(!analysis.cycles().is_empty()); // the SB cycle is critical
//! assert!(analysis.robust_under(Mode::Sc));
//! assert!(!analysis.robust_under(Mode::Tso)); // store→load chords relax
//! assert!(!analysis.robust_serializable());
//! ```

#![warn(missing_docs)]

mod cycle;
mod graph;

use std::collections::BTreeSet;
use std::fmt::Write as _;

use cf_lsl::{FenceKind, ProcId, Program};
use cf_memmodel::{fence_orders, sem_orders, AccessKind, Mode};

pub use cycle::{Cycle, Leg};
pub use graph::{AbsLoc, AccessEvent, FenceEvent, SiteEvent};

use graph::Graph;

/// Maximum number of cycles spelled out by [`CycleAnalysis::report`];
/// the rest are summarized by count.
const REPORT_CYCLE_CAP: usize = 16;

/// The result of analyzing one bounded test: the flattened event
/// streams plus every critical cycle of their conflict graph.
#[derive(Clone, Debug)]
pub struct CycleAnalysis {
    graph: Graph,
    cycles: Vec<Cycle>,
    truncated: bool,
}

/// Builds the static event graph of `program` under the given thread
/// structure and enumerates its critical cycles.
///
/// `threads[t]` lists the procedures thread `t` invokes in order (the
/// operations of one test thread); initialization procedures should be
/// omitted — they happen-before everything and cannot sit on a cycle.
pub fn analyze(program: &Program, threads: &[Vec<ProcId>]) -> CycleAnalysis {
    let graph = graph::build(program, threads);
    let (cycles, truncated) = cycle::enumerate(&graph);
    CycleAnalysis {
        graph,
        cycles,
        truncated,
    }
}

impl CycleAnalysis {
    /// All shared-memory accesses, grouped by thread in stream order.
    /// [`Leg`] indices point into this slice.
    pub fn accesses(&self) -> &[AccessEvent] {
        &self.graph.accesses
    }

    /// All real fences (classic and C11).
    pub fn fences(&self) -> &[FenceEvent] {
        &self.graph.fences
    }

    /// All candidate-fence site occurrences.
    pub fn sites(&self) -> &[SiteEvent] {
        &self.graph.sites
    }

    /// Every critical cycle found (deduplicated, deterministic order).
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// `true` when cycle enumeration hit its caps; the cycle list is
    /// then incomplete.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// `true` when event-graph construction gave up (call inlining
    /// exceeded its depth cap); the event streams are then incomplete.
    pub fn gave_up(&self) -> bool {
        self.graph.gave_up
    }

    /// `true` when the analysis saw the whole program and all of its
    /// cycles. Every consumer must check this before drawing *negative*
    /// conclusions (no cycle ⇒ robust, no coverage ⇒ prunable); when
    /// `false`, triage must fall back to the solver and pruning must
    /// keep every candidate.
    pub fn reliable(&self) -> bool {
        !self.graph.gave_up && !self.truncated
    }

    /// Distinct candidate-site ids present in the event streams.
    pub fn site_ids(&self) -> BTreeSet<u32> {
        self.graph.sites.iter().map(|s| s.site).collect()
    }

    /// Is the chord of `leg` ordered under `mode` on every execution?
    ///
    /// Judged **conservatively** (for triage): a chord is credited only
    /// when (a) it is a single access, (b) both ends share an atomic
    /// group, (c) the model's program-order axiom keeps the pair in
    /// order (same-address credit requires *must*-alias), or (d) a real
    /// fence provably executes between the two ends and orders their
    /// kinds. Per-access C11 annotations are never credited — the
    /// built-in hardware models ignore them.
    pub fn chord_enforced(&self, leg: &Leg, mode: Mode) -> bool {
        if leg.entry == leg.exit {
            return true;
        }
        let a = &self.graph.accesses[leg.entry];
        let b = &self.graph.accesses[leg.exit];
        if a.atomic.is_some() && a.atomic == b.atomic {
            return true;
        }
        if !leg.wrap && mode.po_edge_required(a.kind, b.kind, a.loc.must_alias(&b.loc)) {
            return true;
        }
        // Fence credit. Any fence whose block path is a prefix of the
        // exit's path and whose position precedes the exit must execute
        // before the exit does (a break that skipped the fence would
        // skip the exit too). On a straight chord the fence must also
        // sit after the entry; on a wrap-around chord it must sit
        // inside a loop shared by both ends, so its next-iteration
        // instance falls between them. The symmetric entry-side rule
        // (fence after the entry, prefix of the *entry's* path) is not
        // sound — a break between fence and exit skips only the fence.
        self.graph.fences.iter().any(|f| {
            f.thread == a.thread
                && b.blocks.starts_with(&f.blocks)
                && f.pos < b.pos
                && (if leg.wrap {
                    f.blocks
                        .iter()
                        .any(|id| a.loops.contains(id) && b.loops.contains(id))
                } else {
                    f.pos > a.pos
                })
                && sem_orders(f.sem, a.kind, b.kind)
        })
    }

    /// May `mode` reorder some chord of `cycle`? A relaxable cycle is
    /// one the model could exhibit, i.e. a potential SC violation.
    pub fn cycle_relaxable(&self, cycle: &Cycle, mode: Mode) -> bool {
        cycle.legs.iter().any(|leg| !self.chord_enforced(leg, mode))
    }

    /// `true` when the program has **no** critical cycle at all (and
    /// the analysis is [reliable](CycleAnalysis::reliable)): every
    /// execution under every built-in model is conflict-serializable at
    /// operation granularity, so it produces the observations and error
    /// behavior of some serial execution.
    pub fn robust_serializable(&self) -> bool {
        self.reliable() && self.cycles.is_empty()
    }

    /// `true` when every chord of every critical cycle is enforced
    /// under `mode` (and the analysis is reliable): all `mode`
    /// executions are sequentially consistent, so any verdict
    /// (PASS *or* FAIL) coincides with the SC verdict.
    pub fn robust_under(&self, mode: Mode) -> bool {
        self.reliable() && self.cycles.iter().all(|c| !self.cycle_relaxable(c, mode))
    }

    /// Could candidate site `s` order the chord `(a, b)`? Judged
    /// **liberally** (for pruning): position between the ends by stream
    /// position alone — block structure ignored — and kind coverage by
    /// the plain fence table.
    fn site_covers(&self, s: &SiteEvent, leg: &Leg) -> bool {
        let a = &self.graph.accesses[leg.entry];
        let b = &self.graph.accesses[leg.exit];
        s.thread == a.thread
            && fence_orders(s.kind, a.kind, b.kind)
            && (if leg.wrap {
                s.pos > a.pos || s.pos < b.pos
            } else {
                s.pos > a.pos && s.pos < b.pos
            })
    }

    /// The candidate sites that could repair some not-conservatively-
    /// enforced chord of some critical cycle under `mode`. Any site
    /// *not* in this set lies on no critical pair, and by the delay-set
    /// argument activating it cannot prune behaviors — inference may
    /// drop it without changing the result.
    ///
    /// Only meaningful when [reliable](CycleAnalysis::reliable); the
    /// pruning consumer must keep all sites otherwise.
    pub fn useful_sites(&self, mode: Mode) -> BTreeSet<u32> {
        let mut useful = BTreeSet::new();
        for cycle in &self.cycles {
            for leg in &cycle.legs {
                if leg.entry == leg.exit || self.chord_enforced(leg, mode) {
                    continue;
                }
                for s in &self.graph.sites {
                    if self.site_covers(s, leg) {
                        useful.insert(s.site);
                    }
                }
            }
        }
        useful
    }

    /// The fence kind that would order `(a, b)` — the name of the
    /// program-order axiom the chord needs.
    fn needed_kind(a: AccessKind, b: AccessKind) -> FenceKind {
        match (a, b) {
            (AccessKind::Load, AccessKind::Load) => FenceKind::LoadLoad,
            (AccessKind::Load, AccessKind::Store) => FenceKind::LoadStore,
            (AccessKind::Store, AccessKind::Load) => FenceKind::StoreLoad,
            (AccessKind::Store, AccessKind::Store) => FenceKind::StoreStore,
        }
    }

    fn fmt_loc(&self, loc: &AbsLoc) -> String {
        match loc {
            AbsLoc::Global { base, path } => {
                let mut s = self
                    .graph
                    .global_names
                    .get(*base as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("g{base}"));
                for p in path {
                    match p {
                        Some(k) => {
                            let _ = write!(s, ".{k}");
                        }
                        None => s.push_str("[?]"),
                    }
                }
                s
            }
            AbsLoc::Heap => "<heap>".into(),
            AbsLoc::Unknown => "<?>".into(),
        }
    }

    fn fmt_access(&self, i: usize) -> String {
        let a = &self.graph.accesses[i];
        let kind = match a.kind {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        format!("t{} {} {} ({})", a.thread, kind, self.fmt_loc(&a.loc), a.op)
    }

    /// Renders a human-readable report: robustness verdict per mode,
    /// then each cycle with its chords, the fence kind (program-order
    /// axiom) each chord needs, and the models that relax it.
    pub fn report(&self, modes: &[Mode]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "accesses {}  fences {}  candidate sites {}  critical cycles {}{}",
            self.graph.accesses.len(),
            self.graph.fences.len(),
            self.graph.sites.len(),
            self.cycles.len(),
            if self.reliable() {
                ""
            } else {
                "  [UNRELIABLE: analysis gave up or was truncated]"
            }
        );
        for &mode in modes {
            let verdict = if !self.reliable() {
                "unknown (analysis unreliable)"
            } else if self.robust_under(mode) {
                "robust (all executions sequentially consistent)"
            } else {
                "not robust (some critical cycle may relax)"
            };
            let _ = writeln!(out, "  under {}: {}", mode.name(), verdict);
        }
        for (n, cycle) in self.cycles.iter().take(REPORT_CYCLE_CAP).enumerate() {
            let _ = writeln!(out, "cycle {}:", n + 1);
            for leg in &cycle.legs {
                if leg.entry == leg.exit {
                    let _ = writeln!(out, "  {}", self.fmt_access(leg.entry));
                    continue;
                }
                let a = &self.graph.accesses[leg.entry];
                let b = &self.graph.accesses[leg.exit];
                let relaxed: Vec<&str> = modes
                    .iter()
                    .filter(|&&m| !self.chord_enforced(leg, m))
                    .map(|m| m.name())
                    .collect();
                let status = if relaxed.is_empty() {
                    "enforced for all listed models".to_string()
                } else {
                    format!("relaxed under: {}", relaxed.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  {} ..{} {}  [needs {} order; {}]",
                    self.fmt_access(leg.entry),
                    if leg.wrap { " (next iteration)" } else { "" },
                    self.fmt_access(leg.exit),
                    Self::needed_kind(a.kind, b.kind),
                    status
                );
            }
        }
        if self.cycles.len() > REPORT_CYCLE_CAP {
            let _ = writeln!(
                out,
                "  ... and {} more cycles",
                self.cycles.len() - REPORT_CYCLE_CAP
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        cf_minic::compile(src).expect("test source compiles")
    }

    fn two_threads(program: &Program, p0: &str, p1: &str) -> CycleAnalysis {
        let t0 = program.proc_id(p0).expect("proc exists");
        let t1 = program.proc_id(p1).expect("proc exists");
        analyze(program, &[vec![t0], vec![t1]])
    }

    #[test]
    fn single_thread_has_no_cycles() {
        let p = compile("int x; void w_op() { x = 1; x = 2; }");
        let id = p.proc_id("w_op").unwrap();
        let a = analyze(&p, &[vec![id]]);
        assert!(a.reliable());
        assert!(a.robust_serializable());
    }

    #[test]
    fn disjoint_locations_have_no_cycles() {
        let p = compile(
            r#"
            int x;
            int y;
            void a_op() { x = 1; x = 2; }
            void b_op() { y = 1; y = 2; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        assert!(a.robust_serializable());
    }

    #[test]
    fn store_buffering_relaxes_from_tso_down() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { x = 1; return y; }
            int b_op() { y = 1; return x; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        assert!(a.reliable());
        assert!(!a.cycles().is_empty());
        assert!(a.robust_under(Mode::Sc));
        assert!(!a.robust_under(Mode::Tso));
        assert!(!a.robust_under(Mode::Pso));
        assert!(!a.robust_under(Mode::Relaxed));
    }

    #[test]
    fn message_passing_relaxes_from_pso_down_only() {
        // MP: the writer's store→store chord and the reader's load→load
        // chord are both TSO-enforced, but PSO relaxes the former and
        // Relaxed both.
        let p = compile(
            r#"
            int data;
            int flag;
            void w_op() { data = 1; flag = 1; }
            int r_op() { int f = flag; int d = data; return f + d; }
        "#,
        );
        let a = two_threads(&p, "w_op", "r_op");
        assert!(a.reliable());
        assert!(!a.cycles().is_empty());
        assert!(a.robust_under(Mode::Sc));
        assert!(a.robust_under(Mode::Tso));
        assert!(!a.robust_under(Mode::Pso));
        assert!(!a.robust_under(Mode::Relaxed));
    }

    #[test]
    fn fences_restore_robustness() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { x = 1; fence("store-load"); return y; }
            int b_op() { y = 1; fence("store-load"); return x; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        assert!(!a.cycles().is_empty());
        for m in Mode::hardware() {
            assert!(a.robust_under(m), "fenced SB must be robust under {m:?}");
        }
    }

    #[test]
    fn fence_in_skippable_branch_is_not_credited() {
        // The fence sits in a conditional block that is not an ancestor
        // of the second access, so it may be skipped and must not be
        // credited.
        let p = compile(
            r#"
            int x;
            int y;
            int a_op(int c) { x = 1; if (c) { fence("store-load"); } return y; }
            int b_op() { y = 1; fence("store-load"); return x; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        assert!(!a.robust_under(Mode::Tso));
    }

    #[test]
    fn c11_seq_cst_fence_is_credited() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { x = 1; fence(seq_cst); return y; }
            int b_op() { y = 1; fence(seq_cst); return x; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        assert!(a.robust_under(Mode::Relaxed));
    }

    #[test]
    fn per_access_annotations_are_not_credited_for_builtin_models() {
        // Release/acquire would make this robust under a C11 model, but
        // the built-in hardware lattice ignores annotations, so the
        // conservative analysis must not credit them.
        let p = compile(
            r#"
            int data;
            int flag;
            void w_op() { data = 1; store(flag, release, 1); }
            int r_op() { int f = load(flag, acquire); int d = data; return f + d; }
        "#,
        );
        let a = two_threads(&p, "w_op", "r_op");
        assert!(!a.robust_under(Mode::Pso));
    }

    #[test]
    fn spin_loop_wrap_chords_are_found() {
        // Reader spins on flag then reads data: the load→load chord
        // exists within one iteration (flag load at pos 0, data load
        // after the loop), and Relaxed relaxes it.
        let p = compile(
            r#"
            int data;
            int flag;
            void w_op() { data = 1; flag = 1; }
            int r_op() {
                int f;
                do { f = flag; } spinwhile (f == 0);
                return data;
            }
        "#,
        );
        let a = two_threads(&p, "w_op", "r_op");
        assert!(!a.cycles().is_empty());
        assert!(a.robust_under(Mode::Tso));
        assert!(!a.robust_under(Mode::Relaxed));
    }

    #[test]
    fn useful_sites_cover_exactly_the_broken_chords() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { x = 1; return y; }
            int b_op() { y = 1; return x; }
        "#,
        );
        // Wrap the ops in candidate sites by hand: build the analysis
        // over a program the inference driver would produce. Easiest
        // faithful approximation: no sites → nothing useful.
        let a = two_threads(&p, "a_op", "b_op");
        assert!(a.useful_sites(Mode::Tso).is_empty());
        assert!(a.site_ids().is_empty());
    }

    #[test]
    fn report_names_locations_and_models() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { x = 1; return y; }
            int b_op() { y = 1; return x; }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        let report = a.report(&[Mode::Sc, Mode::Tso]);
        assert!(report.contains("under sc: robust"), "{report}");
        assert!(report.contains("under tso: not robust"), "{report}");
        assert!(report.contains("store x"), "{report}");
        assert!(report.contains("needs store-load order"), "{report}");
        assert!(report.contains("relaxed under: tso"), "{report}");
    }

    #[test]
    fn atomic_blocks_enforce_their_chords() {
        let p = compile(
            r#"
            int x;
            int y;
            int a_op() { atomic { x = 1; int r = y; return r; } }
            int b_op() { atomic { y = 1; int r = x; return r; } }
        "#,
        );
        let a = two_threads(&p, "a_op", "b_op");
        for m in Mode::hardware() {
            assert!(a.robust_under(m), "atomic SB must be robust under {m:?}");
        }
    }
}
