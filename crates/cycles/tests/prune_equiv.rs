//! The two consumers of the critical-cycle analysis are *optimizations*,
//! not approximations — this harness proves it end to end:
//!
//! * **candidate pruning** (`InferConfig::prune`): inference with
//!   statically-irrelevant candidate sites dropped before encoding must
//!   keep the exact placement the unpruned search keeps, on every
//!   bundled data type;
//! * **sweep triage** (`CorpusConfig::static_triage`): corpus verdict
//!   tables with triage on must be byte-identical to the all-solver
//!   tables, cell for cell, at any job count.

use std::path::{Path, PathBuf};

use cf_algos::{lamport, tests, treiber, Algo, Variant};
use cf_lsl::FenceKind;
use cf_memmodel::Mode;
use cf_synth::corpus::load_dir;
use cf_synth::{run_corpus, CorpusConfig};
use checkfence::infer::{infer, InferConfig};
use checkfence::{Harness, TestSpec};

/// Runs inference twice — candidates pruned by the cycle analysis, and
/// the full saturated space — and asserts the kept placements agree.
fn assert_prune_equiv(
    harness: &Harness,
    test_names: &[&str],
    mode: Mode,
    kinds: Vec<FenceKind>,
    procs: Option<Vec<String>>,
) {
    let tests: Vec<TestSpec> = test_names
        .iter()
        .map(|n| tests::by_name(n).expect("catalog test"))
        .collect();
    let config = InferConfig {
        kinds,
        procs,
        prune: true,
    };
    let pruned = infer(harness, &tests, mode, &config).expect("pruned inference succeeds");
    let full = infer(
        harness,
        &tests,
        mode,
        &InferConfig {
            prune: false,
            ..config
        },
    )
    .expect("unpruned inference succeeds");

    assert_eq!(
        pruned.kept,
        full.kept,
        "{} on {}: pruning changed the inferred placement",
        harness.name,
        mode.name()
    );
    assert_eq!(pruned.candidates, full.candidates);
    assert_eq!(full.candidates_pruned, 0);
    assert_eq!(full.candidates_encoded, full.candidates);
    assert_eq!(
        pruned.candidates_pruned + pruned.candidates_encoded,
        pruned.candidates,
        "{}: pruning accounting must partition the candidate space",
        harness.name
    );
}

#[test]
fn treiber_pruned_inference_keeps_the_same_fences() {
    assert_prune_equiv(
        &treiber::harness(Variant::Unfenced),
        &["U0"],
        Mode::Pso,
        vec![FenceKind::StoreStore],
        None,
    );
}

#[test]
fn lamport_pruned_inference_keeps_the_same_fences() {
    assert_prune_equiv(
        &lamport::harness(Variant::Unfenced),
        &["L0"],
        Mode::Tso,
        vec![FenceKind::StoreLoad],
        None,
    );
}

#[test]
fn ms2_pruned_inference_keeps_the_same_fences() {
    assert_prune_equiv(
        &Algo::Ms2.harness(Variant::Unfenced),
        &["T0"],
        Mode::Pso,
        vec![FenceKind::StoreStore],
        Some(vec!["enqueue".into(), "dequeue".into()]),
    );
}

#[test]
fn msn_pruned_inference_keeps_the_same_fences() {
    assert_prune_equiv(
        &Algo::Msn.harness(Variant::Unfenced),
        &["T0"],
        Mode::Pso,
        vec![FenceKind::StoreStore],
        Some(vec!["enqueue".into(), "dequeue".into()]),
    );
}

#[test]
fn lazylist_pruned_inference_keeps_the_same_fences() {
    assert_prune_equiv(
        &Algo::Lazylist.harness(Variant::Unfenced),
        &["Sac"],
        Mode::Pso,
        vec![FenceKind::StoreStore],
        None,
    );
}

fn repo_dir(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Triage must be invisible in the verdicts: for every corpus entry the
/// coverage table with static triage (at sequential *and* sharded job
/// counts) is byte-identical to the table the solver produces alone.
/// `table()` excludes the summary line, so the comparison is exact.
fn assert_triage_equiv(dir: &str) {
    let entries = load_dir(&repo_dir(dir)).expect("corpus loads");
    assert!(!entries.is_empty(), "{dir} lost its entries?");
    for entry in &entries {
        let table_with = |static_triage: bool, jobs: usize| {
            let config = CorpusConfig {
                jobs,
                static_triage,
                ..CorpusConfig::default()
            };
            run_corpus(&entry.harness, &entry.tests, &config).table()
        };
        let solver = table_with(false, 1);
        for jobs in [1, 4] {
            assert_eq!(
                table_with(true, jobs),
                solver,
                "{dir}/{}: triage changed a verdict cell at jobs {jobs}",
                entry.name
            );
        }
    }
}

#[test]
fn triage_matches_solver_verdicts_on_the_scenario_corpus() {
    assert_triage_equiv("corpus");
}

#[test]
fn triage_matches_solver_verdicts_on_the_c11_corpus() {
    assert_triage_equiv("corpus/c11");
}
