//! # cf-minic — the mini-C front-end
//!
//! CheckFence accepts implementation code "written as C code" (paper §3.1)
//! and compiles it to the load-store language (LSL) via CIL. This crate is
//! the reproduction's stand-in for that pipeline: a self-contained compiler
//! for the C subset the five studied algorithms need —
//!
//! * `typedef`, `struct`, `enum`, globals, functions, pointers, arrays;
//! * `if`/`else`, `while`, `do`-`while`, `break`, `continue`, `return`;
//! * short-circuit `&&`/`||` (compiled to control flow), casts,
//!   pointer/field/array access;
//! * the verification special forms: `atomic { ... }` blocks,
//!   `fence("load-load" | "load-store" | "store-load" | "store-store")`,
//!   `assert(e)`, `assume(e)`, `malloc(type)` (the paper's `new_node()`),
//!   `free(p)`/`delete_node(p)` (no-ops in bounded tests),
//!   `do { ... } spinwhile (c);` (the paper's side-effect-free spin-loop
//!   reduction) and `commit(e)` (commit-point annotations for the
//!   CAV 2006 baseline method).
//!
//! ## Example
//!
//! ```
//! use cf_minic::compile;
//! use cf_lsl::{Machine, Value};
//!
//! let program = compile(r#"
//!     int x;
//!     void set(int v) { x = v; }
//!     int get() { return x; }
//! "#).expect("compiles");
//!
//! let set = program.proc_id("set").unwrap();
//! let get = program.proc_id("get").unwrap();
//! let mut m = Machine::new(&program);
//! m.call(set, &[Value::Int(5)]).unwrap();
//! assert_eq!(m.call(get, &[]).unwrap(), Some(Value::Int(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod token;

pub use error::MinicError;
pub use lower::{lower, CELL_STRUCT};
pub use parser::{parse, Ast};

use cf_lsl::Program;

/// Compiles mini-C source text into an LSL [`Program`].
///
/// # Errors
///
/// Returns [`MinicError`] with a source line for lexical, syntactic and
/// lowering problems.
pub fn compile(source: &str) -> Result<Program, MinicError> {
    let ast = parse(source)?;
    lower(&ast)
}
