//! Tokens of the mini-C language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// String literal (only used for fence kinds).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Num(n) => write!(f, "`{n}`"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Semi => write!(f, "`;`"),
            Token::Comma => write!(f, "`,`"),
            Token::Star => write!(f, "`*`"),
            Token::Amp => write!(f, "`&`"),
            Token::AmpAmp => write!(f, "`&&`"),
            Token::Pipe => write!(f, "`|`"),
            Token::PipePipe => write!(f, "`||`"),
            Token::Bang => write!(f, "`!`"),
            Token::Assign => write!(f, "`=`"),
            Token::Eq => write!(f, "`==`"),
            Token::Ne => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Arrow => write!(f, "`->`"),
            Token::Dot => write!(f, "`.`"),
            Token::Question => write!(f, "`?`"),
            Token::Colon => write!(f, "`:`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}
