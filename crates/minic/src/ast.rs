//! Abstract syntax of mini-C after parsing (types already resolved
//! through typedefs).

/// A resolved mini-C type.
///
/// Scalar C types (`int`, `unsigned`, `bool`, enums, ...) all collapse to
/// [`CType::Int`]: LSL is untyped, and the front-end only needs types for
/// struct-field resolution and layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// No value (function returns).
    Void,
    /// Any scalar integer-like value.
    Int,
    /// A struct value, by struct name.
    Struct(String),
    /// Pointer to another type.
    Ptr(Box<CType>),
}

impl CType {
    /// Wraps in a pointer.
    pub fn ptr(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// Strips one pointer level.
    pub fn deref(&self) -> Option<&CType> {
        match self {
            CType::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// `true` for types a register can hold (int or pointer).
    pub fn is_scalar(&self) -> bool {
        matches!(self, CType::Int | CType::Ptr(_))
    }
}

/// One struct field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructField {
    /// Field name.
    pub name: String,
    /// Element type.
    pub ty: CType,
    /// `Some(n)` for `ty name[n]`.
    pub array: Option<u32>,
}

/// A top-level item.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// A struct definition.
    Struct {
        /// Struct name (tag or typedef name for anonymous structs).
        name: String,
        /// Ordered fields.
        fields: Vec<StructField>,
    },
    /// A global variable.
    Global {
        /// Variable name.
        name: String,
        /// Element type.
        ty: CType,
        /// `Some(n)` for arrays.
        array: Option<u32>,
    },
    /// A function definition or extern declaration.
    Func(Func),
}

/// A function.
#[derive(Clone, PartialEq, Debug)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<(String, CType)>,
    /// `None` for extern declarations.
    pub body: Option<Vec<CStmt>>,
    /// Source line of the definition.
    pub line: usize,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum CStmt {
    /// `{ ... }`
    Block(Vec<CStmt>),
    /// `if (cond) ... else ...`
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then_branch: Vec<CStmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<CStmt>,
    },
    /// `while (cond) ...`; `spin` marks a retry loop whose failing
    /// iterations are side-effect free (the paper's spin-loop reduction
    /// applies: executions needing more than the configured number of
    /// iterations are assumed away).
    While {
        /// Loop condition.
        cond: CExpr,
        /// Body.
        body: Vec<CStmt>,
        /// `true` for `spin while`.
        spin: bool,
    },
    /// `do ... while (cond);` — `spin` marks the paper's spin-loop
    /// reduction (`spinwhile`).
    DoWhile {
        /// Body.
        body: Vec<CStmt>,
        /// Loop condition.
        cond: CExpr,
        /// `true` for `spinwhile`.
        spin: bool,
    },
    /// `return e?;`
    Return(Option<CExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Local declaration.
    Local {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Optional initializer.
        init: Option<CExpr>,
        /// Source line.
        line: usize,
    },
    /// Expression statement.
    Expr(CExpr),
    /// `atomic { ... }`
    Atomic(Vec<CStmt>),
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// `!e`
    Not,
    /// `-e`
    Neg,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
}

/// Binary operators (short-circuiting `&&`/`||` included; the lowering
/// expands them into control flow).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum CExpr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Ident(String),
    /// String literal (fence kinds only).
    Str(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<CExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: CBinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Assignment (an expression in C; mini-C restricts it to statement
    /// position and initializers).
    Assign {
        /// Target lvalue.
        lhs: Box<CExpr>,
        /// Source.
        rhs: Box<CExpr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<CExpr>,
        /// Value when true.
        then_e: Box<CExpr>,
        /// Value when false.
        else_e: Box<CExpr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// `base.field` or `base->field`.
    Field {
        /// Base expression.
        base: Box<CExpr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `base[index]`
    Index {
        /// Base expression (array lvalue or pointer).
        base: Box<CExpr>,
        /// Index expression.
        index: Box<CExpr>,
    },
    /// `(type) e` — type annotation only; no runtime effect.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<CExpr>,
    },
}
