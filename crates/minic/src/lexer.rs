//! Hand-written lexer for mini-C.

use crate::error::MinicError;
use crate::token::{Spanned, Token};

/// Tokenizes mini-C source.
///
/// # Errors
///
/// Returns [`MinicError`] on unterminated strings, malformed numbers or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, MinicError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;

    macro_rules! push {
        ($t:expr) => {
            tokens.push(Spanned { token: $t, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        // line comment
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = '\0';
                        let mut closed = false;
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c == '/' {
                                closed = true;
                                break;
                            }
                            prev = c;
                        }
                        if !closed {
                            return Err(MinicError::new(line, "unterminated block comment"));
                        }
                    }
                    _ => {
                        return Err(MinicError::new(line, "division is not supported"));
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(MinicError::new(line, "unterminated string literal"));
                }
                push!(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Accept 0x hex and plain decimal; suffixes like `u` are C
                // noise we strip.
                let trimmed = s.trim_end_matches(['u', 'U', 'l', 'L']);
                let value = if let Some(hex) = trimmed.strip_prefix("0x") {
                    i64::from_str_radix(hex, 16)
                } else {
                    trimmed.parse::<i64>()
                };
                match value {
                    Ok(n) => push!(Token::Num(n)),
                    Err(_) => {
                        return Err(MinicError::new(line, format!("bad number `{s}`")));
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Token::Ident(s));
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let t = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ';' => Token::Semi,
                    ',' => Token::Comma,
                    '*' => Token::Star,
                    '+' => Token::Plus,
                    '.' => Token::Dot,
                    '?' => Token::Question,
                    ':' => Token::Colon,
                    '&' => {
                        if two(&mut chars, '&') {
                            Token::AmpAmp
                        } else {
                            Token::Amp
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            Token::PipePipe
                        } else {
                            Token::Pipe
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            Token::Ne
                        } else {
                            Token::Bang
                        }
                    }
                    '=' => {
                        if two(&mut chars, '=') {
                            Token::Eq
                        } else {
                            Token::Assign
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            Token::Le
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            Token::Ge
                        } else {
                            Token::Gt
                        }
                    }
                    '-' => {
                        if two(&mut chars, '>') {
                            Token::Arrow
                        } else {
                            Token::Minus
                        }
                    }
                    other => {
                        return Err(MinicError::new(
                            line,
                            format!("unexpected character `{other}`"),
                        ));
                    }
                };
                push!(t);
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x->next == 0 && !y"),
            vec![
                Token::Ident("x".into()),
                Token::Arrow,
                Token::Ident("next".into()),
                Token::Eq,
                Token::Num(0),
                Token::AmpAmp,
                Token::Bang,
                Token::Ident("y".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_strings() {
        assert_eq!(
            toks("fence(\"store-store\"); // ordering\n/* block\n comment */ x"),
            vec![
                Token::Ident("fence".into()),
                Token::LParen,
                Token::Str("store-store".into()),
                Token::RParen,
                Token::Semi,
                Token::Ident("x".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0x10 42u"),
            vec![Token::Num(16), Token::Num(42), Token::Eof]
        );
    }

    #[test]
    fn line_numbers() {
        let spanned = lex("a\nb\n  c").expect("lexes");
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 3]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a / b").is_err());
        assert!(lex("#include").is_err());
    }
}
