//! Front-end error type.

use std::fmt;

/// A compilation error with a 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinicError {
    /// 1-based line of the offending construct (0 when unknown).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl MinicError {
    /// Creates an error at a source line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        MinicError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for MinicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for MinicError {}
