//! Lowering from the mini-C AST to LSL.
//!
//! The translation mirrors what the paper's CIL-based front-end does
//! (§3.1): structured control flow becomes labeled blocks with conditional
//! `break`/`continue`, short-circuit operators become control flow,
//! pointers become base-plus-offset values, and the special forms
//! `atomic { }`, `fence("...")`, `assert`, `assume`, `malloc(type)`,
//! `commit(...)` and `spinwhile` map to their LSL counterparts.
//!
//! C11-style atomics are builtins taking an optional ordering keyword
//! (`relaxed`, `acquire`, `release`, `acq_rel`, `seq_cst`; default
//! `seq_cst` when omitted): `load(x, acquire)`, `store(x, release, v)`,
//! `cas(x, expected, desired, acq_rel)` and `fence(seq_cst)`. Orderings
//! invalid for the access direction (a `release` load, an `acquire`
//! store) are rejected at lowering time.
//!
//! Locals whose address is taken (`&v`) are placed in fresh heap cells so
//! that pointers to them are ordinary LSL pointers; plain locals live in
//! registers.

use std::collections::{HashMap, HashSet};

use cf_lsl::{
    BlockTag, FenceKind, MemOrder, MemType, PrimOp, ProcBuilder, ProcId, Program, Reg, StructDef,
    StructId, Value,
};

use crate::ast::{CBinOp, CExpr, CStmt, CType, Func, Item, StructField, UnOp};
use crate::error::MinicError;
use crate::parser::Ast;

/// Compiles a parsed translation unit into an LSL [`Program`].
///
/// # Errors
///
/// Returns [`MinicError`] for unsupported constructs or type resolution
/// failures (e.g. `->` on an expression whose struct type is unknown).
pub fn lower(ast: &Ast) -> Result<Program, MinicError> {
    let mut cx = Lowerer::new();
    cx.collect_types(ast)?;
    cx.collect_globals(ast)?;
    cx.collect_signatures(ast)?;
    cx.lower_functions(ast)?;
    Ok(cx.program)
}

/// The name of the synthetic single-field struct used for addressable
/// locals.
pub const CELL_STRUCT: &str = "__cell";

#[derive(Clone, Debug)]
struct Signature {
    params: Vec<CType>,
    ret: CType,
    id: Option<ProcId>, // None for externs (must be builtins)
}

struct Lowerer {
    program: Program,
    struct_ids: HashMap<String, StructId>,
    struct_fields: HashMap<String, Vec<StructField>>,
    globals: HashMap<String, (u32, CType, Option<u32>)>,
    signatures: HashMap<String, Signature>,
    cell_id: Option<StructId>,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            program: Program::new(),
            struct_ids: HashMap::new(),
            struct_fields: HashMap::new(),
            globals: HashMap::new(),
            signatures: HashMap::new(),
            cell_id: None,
        }
    }

    fn mem_type(&self, ty: &CType, array: Option<u32>, line: usize) -> Result<MemType, MinicError> {
        let base = match ty {
            CType::Int | CType::Ptr(_) => MemType::Scalar,
            CType::Struct(name) => match self.struct_ids.get(name) {
                Some(&id) => MemType::Struct(id),
                None => {
                    return Err(MinicError::new(
                        line,
                        format!("struct `{name}` used by value before its definition"),
                    ))
                }
            },
            CType::Void => {
                return Err(MinicError::new(line, "`void` object has no layout"));
            }
        };
        Ok(match array {
            Some(n) => MemType::Array(Box::new(base), n),
            None => base,
        })
    }

    fn collect_types(&mut self, ast: &Ast) -> Result<(), MinicError> {
        for item in &ast.items {
            if let Item::Struct { name, fields } = item {
                let mut defs = Vec::new();
                for f in fields {
                    let mt = self.mem_type(&f.ty, f.array, 0)?;
                    defs.push((f.name.clone(), mt));
                }
                let id = self.program.types.define(StructDef {
                    name: name.clone(),
                    fields: defs,
                });
                self.struct_ids.insert(name.clone(), id);
                self.struct_fields.insert(name.clone(), fields.clone());
            }
        }
        // Synthetic cell struct for addressable locals.
        let id = self.program.types.define(StructDef {
            name: CELL_STRUCT.into(),
            fields: vec![("val".into(), MemType::Scalar)],
        });
        self.cell_id = Some(id);
        Ok(())
    }

    fn collect_globals(&mut self, ast: &Ast) -> Result<(), MinicError> {
        for item in &ast.items {
            if let Item::Global { name, ty, array } = item {
                let mt = self.mem_type(ty, *array, 0)?;
                let base = self.program.add_global(name.clone(), mt);
                self.globals
                    .insert(name.clone(), (base, ty.clone(), *array));
            }
        }
        Ok(())
    }

    fn collect_signatures(&mut self, ast: &Ast) -> Result<(), MinicError> {
        for item in &ast.items {
            if let Item::Func(f) = item {
                let sig = Signature {
                    params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                    ret: f.ret.clone(),
                    id: None,
                };
                self.signatures.insert(f.name.clone(), sig);
            }
        }
        Ok(())
    }

    fn lower_functions(&mut self, ast: &Ast) -> Result<(), MinicError> {
        // Assign procedure ids in definition order first so calls resolve
        // regardless of ordering.
        let mut with_bodies: Vec<&Func> = Vec::new();
        for item in &ast.items {
            if let Item::Func(f) = item {
                if f.body.is_some() {
                    with_bodies.push(f);
                }
            }
        }
        // Lower each function.
        for f in with_bodies {
            let proc = {
                let fx = FnLowerer::new(self, f)?;
                fx.run()?
            };
            let id = self.program.add_procedure(proc);
            if let Some(sig) = self.signatures.get_mut(&f.name) {
                sig.id = Some(id);
            }
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Slot {
    /// A plain local held in a register.
    Reg(Reg, CType),
    /// An addressable local: the register holds a pointer to its cell.
    Cell(Reg, CType),
}

#[derive(Clone, Copy, Debug)]
enum ContinueTarget {
    /// `continue` restarts the loop block (while loops re-evaluate the
    /// condition at the top).
    Restart(BlockTag),
    /// `continue` leaves an inner body block (do-while evaluates the
    /// condition at the bottom).
    LeaveBody(BlockTag),
}

/// A typed value held in a register during lowering.
#[derive(Clone, Debug)]
struct TypedReg {
    reg: Reg,
    ty: CType,
}

/// A typed address (lvalue): register holding the pointer plus the
/// pointee description.
#[derive(Clone, Debug)]
struct TypedAddr {
    reg: Reg,
    ty: CType,
    /// `Some(n)` when the pointee is an array of `ty`.
    array: Option<u32>,
}

struct FnLowerer<'a> {
    lx: &'a Lowerer,
    f: &'a Func,
    b: ProcBuilder,
    scopes: Vec<HashMap<String, Slot>>,
    addressable: HashSet<String>,
    ret_reg: Option<Reg>,
    exit_tag: BlockTag,
    loops: Vec<(BlockTag, ContinueTarget)>,
    line: usize,
}

impl<'a> FnLowerer<'a> {
    fn new(lx: &'a Lowerer, f: &'a Func) -> Result<Self, MinicError> {
        let mut b = ProcBuilder::new(f.name.clone());
        let addressable = collect_addressable(f.body.as_deref().unwrap_or(&[]));

        // Parameters first (callers fill them positionally).
        let mut param_regs = Vec::new();
        for _ in &f.params {
            param_regs.push(b.param());
        }
        let ret_reg = if f.ret == CType::Void {
            None
        } else {
            Some(b.fresh())
        };
        let exit_tag = b.begin_block(false, false);

        let mut me = FnLowerer {
            lx,
            f,
            b,
            scopes: vec![HashMap::new()],
            addressable,
            ret_reg,
            exit_tag,
            loops: Vec::new(),
            line: f.line,
        };

        // Bind parameters; addressable ones are copied into cells.
        for ((name, ty), reg) in f.params.iter().zip(param_regs) {
            if me.addressable.contains(name) {
                let cell = me.make_cell()?;
                me.b.store(cell, reg);
                me.bind(name.clone(), Slot::Cell(cell, ty.clone()));
            } else {
                me.bind(name.clone(), Slot::Reg(reg, ty.clone()));
            }
        }
        Ok(me)
    }

    fn run(mut self) -> Result<cf_lsl::Procedure, MinicError> {
        let body = self.f.body.as_ref().expect("only defined functions");
        self.lower_stmts(body)?;
        self.b.end_block(); // exit_tag
        if let Some(r) = self.ret_reg {
            self.b.set_ret(r);
        }
        Ok(self.b.finish())
    }

    fn err(&self, msg: impl Into<String>) -> MinicError {
        MinicError::new(self.line, format!("in `{}`: {}", self.f.name, msg.into()))
    }

    fn make_cell(&mut self) -> Result<Reg, MinicError> {
        let id = self.lx.cell_id.expect("cell struct defined");
        let ptr = self.b.alloc(id);
        Ok(self.b.prim(PrimOp::Field(0), &[ptr]))
    }

    fn bind(&mut self, name: String, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name, slot);
    }

    fn lookup(&self, name: &str) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ------------------------------------------------------------ statements

    fn lower_stmts(&mut self, stmts: &[CStmt]) -> Result<(), MinicError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &CStmt) -> Result<(), MinicError> {
        match s {
            CStmt::Block(body) => self.lower_stmts(body),
            CStmt::Local {
                name,
                ty,
                init,
                line,
            } => {
                self.line = *line;
                if !ty.is_scalar() {
                    return Err(self.err(format!(
                        "local `{name}` must be scalar (structs by value are not supported)"
                    )));
                }
                if self.addressable.contains(name) {
                    let cell = self.make_cell()?;
                    if let Some(e) = init {
                        let v = self.lower_expr(e)?;
                        self.b.store(cell, v.reg);
                    }
                    self.bind(name.clone(), Slot::Cell(cell, ty.clone()));
                } else {
                    let reg = self.b.fresh();
                    if let Some(e) = init {
                        let v = self.lower_expr(e)?;
                        self.b.copy_into(reg, v.reg);
                    }
                    self.bind(name.clone(), Slot::Reg(reg, ty.clone()));
                }
                Ok(())
            }
            CStmt::Expr(e) => {
                self.lower_expr_or_void(e)?;
                Ok(())
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond)?;
                let not_c = self.b.prim(PrimOp::Not, &[c.reg]);
                if else_branch.is_empty() {
                    let t = self.b.begin_block(false, false);
                    self.b.break_if(not_c, t);
                    self.lower_stmts(then_branch)?;
                    self.b.end_block();
                } else {
                    let outer = self.b.begin_block(false, false);
                    let inner = self.b.begin_block(false, false);
                    self.b.break_if(not_c, inner);
                    self.lower_stmts(then_branch)?;
                    self.b.break_always(outer);
                    self.b.end_block();
                    self.lower_stmts(else_branch)?;
                    self.b.end_block();
                }
                Ok(())
            }
            CStmt::While { cond, body, spin } => {
                let t = self.b.begin_block(true, *spin);
                let c = self.lower_expr(cond)?;
                let not_c = self.b.prim(PrimOp::Not, &[c.reg]);
                self.b.break_if(not_c, t);
                self.loops.push((t, ContinueTarget::Restart(t)));
                self.lower_stmts(body)?;
                self.loops.pop();
                self.b.continue_always(t);
                self.b.end_block();
                Ok(())
            }
            CStmt::DoWhile { body, cond, spin } => {
                let t = self.b.begin_block(true, *spin);
                let inner = self.b.begin_block(false, false);
                self.loops.push((t, ContinueTarget::LeaveBody(inner)));
                self.lower_stmts(body)?;
                self.loops.pop();
                self.b.end_block();
                let c = self.lower_expr(cond)?;
                self.b.continue_if(c.reg, t);
                self.b.end_block();
                Ok(())
            }
            CStmt::Break => match self.loops.last() {
                Some(&(t, _)) => {
                    self.b.break_always(t);
                    Ok(())
                }
                None => Err(self.err("`break` outside of a loop")),
            },
            CStmt::Continue => match self.loops.last() {
                Some(&(_, ContinueTarget::Restart(t))) => {
                    self.b.continue_always(t);
                    Ok(())
                }
                Some(&(_, ContinueTarget::LeaveBody(t))) => {
                    self.b.break_always(t);
                    Ok(())
                }
                None => Err(self.err("`continue` outside of a loop")),
            },
            CStmt::Return(e) => {
                match (e, self.ret_reg) {
                    (Some(e), Some(r)) => {
                        let v = self.lower_expr(e)?;
                        self.b.copy_into(r, v.reg);
                    }
                    (None, None) => {}
                    (Some(_), None) => {
                        return Err(self.err("returning a value from a void function"))
                    }
                    (None, Some(_)) => {
                        return Err(self.err("missing return value"));
                    }
                }
                self.b.break_always(self.exit_tag);
                Ok(())
            }
            CStmt::Atomic(body) => {
                self.b.begin_atomic();
                let r = self.lower_stmts(body);
                self.b.end_atomic();
                r
            }
        }
    }

    // ----------------------------------------------------------- expressions

    /// Lowers an expression in statement position (result may be void).
    fn lower_expr_or_void(&mut self, e: &CExpr) -> Result<Option<TypedReg>, MinicError> {
        match e {
            CExpr::Call { name, args } => self.lower_call(name, args),
            CExpr::Assign { lhs, rhs } => {
                let v = self.lower_assign(lhs, rhs)?;
                Ok(Some(v))
            }
            _ => self.lower_expr(e).map(Some),
        }
    }

    /// Lowers an expression that must produce a value.
    fn lower_expr(&mut self, e: &CExpr) -> Result<TypedReg, MinicError> {
        match e {
            CExpr::Num(n) => {
                let reg = self.b.constant(Value::Int(*n));
                Ok(TypedReg {
                    reg,
                    ty: CType::Int,
                })
            }
            CExpr::Str(_) => Err(self.err("string literals only appear in fence(...)")),
            CExpr::Ident(name) => {
                if let Some(slot) = self.lookup(name).cloned() {
                    return Ok(match slot {
                        Slot::Reg(reg, ty) => TypedReg { reg, ty },
                        Slot::Cell(addr, ty) => {
                            let reg = self.b.load(addr);
                            TypedReg { reg, ty }
                        }
                    });
                }
                if let Some((base, ty, array)) = self.lx.globals.get(name).cloned() {
                    if array.is_some() || !ty.is_scalar() {
                        return Err(self.err(format!(
                            "global `{name}` is an aggregate; use `&`, field or index access"
                        )));
                    }
                    let addr = self.b.constant(Value::ptr(vec![base]));
                    let reg = self.b.load(addr);
                    return Ok(TypedReg { reg, ty });
                }
                Err(self.err(format!("unknown identifier `{name}`")))
            }
            CExpr::Unary { op, expr } => match op {
                UnOp::Not => {
                    let v = self.lower_expr(expr)?;
                    let reg = self.b.prim(PrimOp::Not, &[v.reg]);
                    Ok(TypedReg {
                        reg,
                        ty: CType::Int,
                    })
                }
                UnOp::Neg => {
                    let v = self.lower_expr(expr)?;
                    let zero = self.b.constant(Value::Int(0));
                    let reg = self.b.prim(PrimOp::Sub, &[zero, v.reg]);
                    Ok(TypedReg {
                        reg,
                        ty: CType::Int,
                    })
                }
                UnOp::Deref => {
                    let v = self.lower_expr(expr)?;
                    let ty = v.ty.deref().cloned().unwrap_or(CType::Int);
                    let reg = self.b.load(v.reg);
                    Ok(TypedReg { reg, ty })
                }
                UnOp::AddrOf => {
                    let addr = self.lower_lvalue(expr)?;
                    Ok(TypedReg {
                        reg: addr.reg,
                        ty: addr.ty.clone().ptr(),
                    })
                }
            },
            CExpr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            CExpr::Assign { lhs, rhs } => self.lower_assign(lhs, rhs),
            CExpr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                // Control-flow lowering so side effects stay conditional.
                let result = self.b.fresh();
                let c = self.lower_expr(cond)?;
                let not_c = self.b.prim(PrimOp::Not, &[c.reg]);
                let outer = self.b.begin_block(false, false);
                let inner = self.b.begin_block(false, false);
                self.b.break_if(not_c, inner);
                let tv = self.lower_expr(then_e)?;
                self.b.copy_into(result, tv.reg);
                self.b.break_always(outer);
                self.b.end_block();
                let ev = self.lower_expr(else_e)?;
                self.b.copy_into(result, ev.reg);
                self.b.end_block();
                Ok(TypedReg {
                    reg: result,
                    ty: tv_type(&tv.ty, &ev.ty),
                })
            }
            CExpr::Call { name, args } => match self.lower_call(name, args)? {
                Some(v) => Ok(v),
                None => Err(self.err(format!("void call `{name}` used as a value"))),
            },
            CExpr::Field { .. } | CExpr::Index { .. } => {
                let addr = self.lower_lvalue(e)?;
                if addr.array.is_some() {
                    // Arrays decay to pointers when read.
                    return Ok(TypedReg {
                        reg: addr.reg,
                        ty: addr.ty.clone().ptr(),
                    });
                }
                let reg = self.b.load(addr.reg);
                Ok(TypedReg { reg, ty: addr.ty })
            }
            CExpr::Cast { ty, expr } => {
                let v = self.lower_expr(expr)?;
                Ok(TypedReg {
                    reg: v.reg,
                    ty: ty.clone(),
                })
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: CBinOp,
        lhs: &CExpr,
        rhs: &CExpr,
    ) -> Result<TypedReg, MinicError> {
        match op {
            CBinOp::And | CBinOp::Or => {
                // Short-circuit via control flow.
                let result = self.b.fresh();
                let a = self.lower_expr(lhs)?;
                let na = self.b.prim(PrimOp::Not, &[a.reg]);
                let norm_a = self.b.prim(PrimOp::Not, &[na]);
                self.b.copy_into(result, norm_a);
                let t = self.b.begin_block(false, false);
                if op == CBinOp::And {
                    // if (!a) break (result stays 0)
                    self.b.break_if(na, t);
                } else {
                    // if (a) break (result stays 1)
                    self.b.break_if(norm_a, t);
                }
                let bv = self.lower_expr(rhs)?;
                let nb = self.b.prim(PrimOp::Not, &[bv.reg]);
                let norm_b = self.b.prim(PrimOp::Not, &[nb]);
                self.b.copy_into(result, norm_b);
                self.b.end_block();
                Ok(TypedReg {
                    reg: result,
                    ty: CType::Int,
                })
            }
            _ => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                let prim = match op {
                    CBinOp::Add => PrimOp::Add,
                    CBinOp::Sub => PrimOp::Sub,
                    CBinOp::Mul => PrimOp::Mul,
                    CBinOp::Eq => PrimOp::Eq,
                    CBinOp::Ne => PrimOp::Ne,
                    CBinOp::Lt => PrimOp::Lt,
                    CBinOp::Le => PrimOp::Le,
                    CBinOp::Gt => PrimOp::Gt,
                    CBinOp::Ge => PrimOp::Ge,
                    CBinOp::And | CBinOp::Or => unreachable!("handled above"),
                };
                let reg = self.b.prim(prim, &[a.reg, b.reg]);
                Ok(TypedReg {
                    reg,
                    ty: CType::Int,
                })
            }
        }
    }

    fn lower_assign(&mut self, lhs: &CExpr, rhs: &CExpr) -> Result<TypedReg, MinicError> {
        // Assignment to a register-allocated local writes the register;
        // everything else goes through an lvalue store.
        if let CExpr::Ident(name) = lhs {
            if let Some(Slot::Reg(reg, ty)) = self.lookup(name).cloned() {
                let v = self.lower_expr(rhs)?;
                self.b.copy_into(reg, v.reg);
                return Ok(TypedReg { reg, ty });
            }
        }
        let addr = self.lower_lvalue(lhs)?;
        let v = self.lower_expr(rhs)?;
        self.b.store(addr.reg, v.reg);
        Ok(v)
    }

    /// Lowers an lvalue to an address register.
    fn lower_lvalue(&mut self, e: &CExpr) -> Result<TypedAddr, MinicError> {
        match e {
            CExpr::Ident(name) => {
                if let Some(slot) = self.lookup(name).cloned() {
                    return match slot {
                        Slot::Cell(addr, ty) => Ok(TypedAddr {
                            reg: addr,
                            ty,
                            array: None,
                        }),
                        Slot::Reg(..) => Err(self.err(format!(
                            "cannot take the address of register local `{name}`"
                        ))),
                    };
                }
                if let Some((base, ty, array)) = self.lx.globals.get(name).cloned() {
                    let reg = self.b.constant(Value::ptr(vec![base]));
                    return Ok(TypedAddr { reg, ty, array });
                }
                Err(self.err(format!("unknown identifier `{name}`")))
            }
            CExpr::Unary {
                op: UnOp::Deref,
                expr,
            } => {
                let v = self.lower_expr(expr)?;
                let ty = v.ty.deref().cloned().unwrap_or(CType::Int);
                Ok(TypedAddr {
                    reg: v.reg,
                    ty,
                    array: None,
                })
            }
            CExpr::Field { base, field, arrow } => {
                let (addr_reg, struct_name) = if *arrow {
                    let v = self.lower_expr(base)?;
                    match v.ty.deref() {
                        Some(CType::Struct(s)) => (v.reg, s.clone()),
                        _ => {
                            return Err(self.err(format!(
                                "`->{field}` on a value whose struct type is unknown"
                            )))
                        }
                    }
                } else {
                    let a = self.lower_lvalue(base)?;
                    match &a.ty {
                        CType::Struct(s) => (a.reg, s.clone()),
                        _ => return Err(self.err(format!("`.{field}` on a non-struct lvalue"))),
                    }
                };
                let fields = self
                    .lx
                    .struct_fields
                    .get(&struct_name)
                    .ok_or_else(|| self.err(format!("unknown struct `{struct_name}`")))?;
                let (offset, fdef) = fields
                    .iter()
                    .enumerate()
                    .find(|(_, f)| &f.name == field)
                    .map(|(i, f)| (i as u32, f.clone()))
                    .ok_or_else(|| {
                        self.err(format!("struct `{struct_name}` has no field `{field}`"))
                    })?;
                let reg = self.b.prim(PrimOp::Field(offset), &[addr_reg]);
                Ok(TypedAddr {
                    reg,
                    ty: fdef.ty,
                    array: fdef.array,
                })
            }
            CExpr::Index { base, index } => {
                let idx = self.lower_expr(index)?;
                // Array lvalue (global array / array field) or pointer value.
                if matches!(&**base, CExpr::Ident(n) if self.lookup(n).is_none()
                    && self.lx.globals.get(n).is_some_and(|g| g.2.is_some()))
                {
                    let a = self.lower_lvalue(base)?;
                    let reg = self.b.prim(PrimOp::Index, &[a.reg, idx.reg]);
                    return Ok(TypedAddr {
                        reg,
                        ty: a.ty,
                        array: None,
                    });
                }
                if let CExpr::Field { .. } = &**base {
                    let a = self.lower_lvalue(base)?;
                    if a.array.is_some() {
                        let reg = self.b.prim(PrimOp::Index, &[a.reg, idx.reg]);
                        return Ok(TypedAddr {
                            reg,
                            ty: a.ty,
                            array: None,
                        });
                    }
                }
                let v = self.lower_expr(base)?;
                let ty = v.ty.deref().cloned().unwrap_or(CType::Int);
                let reg = self.b.prim(PrimOp::Index, &[v.reg, idx.reg]);
                Ok(TypedAddr {
                    reg,
                    ty,
                    array: None,
                })
            }
            CExpr::Cast { expr, ty } => {
                // Cast of an lvalue: address unchanged, pointee retyped.
                let mut a = self.lower_lvalue(expr)?;
                a.ty = ty.clone();
                Ok(a)
            }
            other => Err(self.err(format!("not an lvalue: {other:?}"))),
        }
    }

    // --------------------------------------------------------------- calls

    /// Parses a memory-ordering keyword argument of an atomic builtin.
    /// Ordering names are reserved in these positions; they never refer
    /// to program variables.
    fn parse_ord(&self, e: &CExpr, what: &str) -> Result<MemOrder, MinicError> {
        match e {
            CExpr::Ident(s) => MemOrder::parse(s).ok_or_else(|| {
                self.err(format!(
                    "unknown memory ordering `{s}` in {what}(...) \
                     (expected relaxed, acquire, release, acq_rel or seq_cst)"
                ))
            }),
            _ => Err(self.err(format!(
                "{what}(...) ordering must be a keyword \
                 (relaxed, acquire, release, acq_rel or seq_cst)"
            ))),
        }
    }

    fn lower_call(&mut self, name: &str, args: &[CExpr]) -> Result<Option<TypedReg>, MinicError> {
        // The atomic-access builtins yield to user-defined functions of
        // the same name (e.g. a hand-written `cas` modelled with an
        // `atomic { }` block, as in the paper's Fig. 6).
        let user_defined = self.lx.signatures.contains_key(name);
        match name {
            "fence" => {
                match args {
                    [CExpr::Str(s)] => {
                        let kind = FenceKind::parse(s)
                            .ok_or_else(|| self.err(format!("unknown fence kind `{s}`")))?;
                        self.b.fence(kind);
                    }
                    [e @ CExpr::Ident(_)] => {
                        let ord = self.parse_ord(e, "fence")?;
                        if ord == MemOrder::Relaxed {
                            return Err(self.err(
                                "fence(relaxed) has no ordering effect; \
                                 use acquire, release, acq_rel or seq_cst",
                            ));
                        }
                        self.b.cfence(ord);
                    }
                    _ => {
                        return Err(self.err(
                            "fence(...) takes one string literal (classic kind) \
                             or one ordering keyword",
                        ))
                    }
                }
                Ok(None)
            }
            "load" if !user_defined => {
                let (place, ord) = match args {
                    [p] => (p, MemOrder::SeqCst),
                    [p, o] => (p, self.parse_ord(o, "load")?),
                    _ => return Err(self.err("load(place[, ordering]) takes 1 or 2 arguments")),
                };
                if matches!(ord, MemOrder::Release | MemOrder::AcqRel) {
                    return Err(self.err(format!(
                        "`{ord}` is not a valid load ordering \
                         (loads may be relaxed, acquire or seq_cst)"
                    )));
                }
                let addr = self.lower_lvalue(place)?;
                let reg = self.b.load_ord(addr.reg, ord);
                Ok(Some(TypedReg { reg, ty: addr.ty }))
            }
            "store" if !user_defined => {
                let (place, ord, value) = match args {
                    [p, v] => (p, MemOrder::SeqCst, v),
                    [p, o, v] => (p, self.parse_ord(o, "store")?, v),
                    _ => {
                        return Err(
                            self.err("store(place[, ordering], value) takes 2 or 3 arguments")
                        )
                    }
                };
                if matches!(ord, MemOrder::Acquire | MemOrder::AcqRel) {
                    return Err(self.err(format!(
                        "`{ord}` is not a valid store ordering \
                         (stores may be relaxed, release or seq_cst)"
                    )));
                }
                let addr = self.lower_lvalue(place)?;
                let v = self.lower_expr(value)?;
                self.b.store_ord(addr.reg, v.reg, ord);
                Ok(None)
            }
            "cas" if !user_defined => {
                let (place, expected, desired, ord) = match args {
                    [p, e, d] => (p, e, d, MemOrder::SeqCst),
                    [p, e, d, o] => (p, e, d, self.parse_ord(o, "cas")?),
                    _ => {
                        return Err(self.err(
                            "cas(place, expected, desired[, ordering]) takes 3 or 4 arguments",
                        ))
                    }
                };
                let addr = self.lower_lvalue(place)?;
                let exp = self.lower_expr(expected)?;
                let des = self.lower_expr(desired)?;
                let reg = self.b.cas(addr.reg, exp.reg, des.reg, ord);
                Ok(Some(TypedReg { reg, ty: addr.ty }))
            }
            "assert" => {
                let [e] = args else {
                    return Err(self.err("assert(...) takes one argument"));
                };
                let v = self.lower_expr(e)?;
                self.b.assert_true(v.reg);
                Ok(None)
            }
            "assume" => {
                let [e] = args else {
                    return Err(self.err("assume(...) takes one argument"));
                };
                let v = self.lower_expr(e)?;
                self.b.assume(v.reg);
                Ok(None)
            }
            "commit" => {
                let [e] = args else {
                    return Err(self.err("commit(...) takes one argument"));
                };
                let v = self.lower_expr(e)?;
                self.b.commit_if(v.reg);
                Ok(None)
            }
            "malloc" => {
                let [CExpr::Ident(ty_name)] = args else {
                    return Err(self.err("malloc(...) takes a type name"));
                };
                // Accept both the struct tag and a typedef alias.
                let struct_name = match self.lx.struct_ids.contains_key(ty_name) {
                    true => ty_name.clone(),
                    false => {
                        // try `<name>_t` typedef convention by stripping
                        // nothing: the parser resolved typedefs into types,
                        // so look for a struct whose typedef alias this was.
                        return match self.find_struct_by_alias(ty_name) {
                            Some(s) => self.emit_malloc(&s),
                            None => Err(self.err(format!("malloc of unknown type `{ty_name}`"))),
                        };
                    }
                };
                self.emit_malloc(&struct_name)
            }
            "free" | "delete_node" => {
                for a in args {
                    let _ = self.lower_expr(a)?;
                }
                Ok(None)
            }
            _ => {
                let sig = self
                    .lx
                    .signatures
                    .get(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("call to unknown function `{name}`")))?;
                let Some(id) = sig.id else {
                    return Err(self.err(format!(
                        "call to extern function `{name}` (not a builtin and has no body)"
                    )));
                };
                if sig.params.len() != args.len() {
                    return Err(self.err(format!(
                        "`{name}` expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    )));
                }
                let mut regs = Vec::new();
                for a in args {
                    regs.push(self.lower_expr(a)?.reg);
                }
                let has_ret = sig.ret != CType::Void;
                let dst = self.b.call(id, &regs, has_ret);
                Ok(dst.map(|reg| TypedReg { reg, ty: sig.ret }))
            }
        }
    }

    fn find_struct_by_alias(&self, alias: &str) -> Option<String> {
        // The parser resolves typedefs before lowering, so `malloc(node_t)`
        // arrives with `node_t` unresolved only if it wasn't a typedef.
        // Fall back to stripping a trailing `_t`.
        let stripped = alias.strip_suffix("_t")?;
        self.lx
            .struct_ids
            .contains_key(stripped)
            .then(|| stripped.to_string())
    }

    fn emit_malloc(&mut self, struct_name: &str) -> Result<Option<TypedReg>, MinicError> {
        let id = self.lx.struct_ids[struct_name];
        let reg = self.b.alloc(id);
        Ok(Some(TypedReg {
            reg,
            ty: CType::Struct(struct_name.into()).ptr(),
        }))
    }
}

/// Result type of a ternary: prefer the branch with the more specific type.
fn tv_type(a: &CType, b: &CType) -> CType {
    if matches!(a, CType::Int) {
        b.clone()
    } else {
        a.clone()
    }
}

/// Collects names whose address is taken anywhere in the body.
fn collect_addressable(stmts: &[CStmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk_expr(e: &CExpr, out: &mut HashSet<String>) {
        match e {
            CExpr::Unary {
                op: UnOp::AddrOf,
                expr,
            } => {
                if let CExpr::Ident(n) = &**expr {
                    out.insert(n.clone());
                }
                walk_expr(expr, out);
            }
            CExpr::Unary { expr, .. } | CExpr::Cast { expr, .. } => walk_expr(expr, out),
            CExpr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            CExpr::Assign { lhs, rhs } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            CExpr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                walk_expr(cond, out);
                walk_expr(then_e, out);
                walk_expr(else_e, out);
            }
            CExpr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, out)),
            CExpr::Field { base, .. } => walk_expr(base, out),
            CExpr::Index { base, index } => {
                walk_expr(base, out);
                walk_expr(index, out);
            }
            CExpr::Num(_) | CExpr::Ident(_) | CExpr::Str(_) => {}
        }
    }
    fn walk(stmts: &[CStmt], out: &mut HashSet<String>) {
        for s in stmts {
            match s {
                CStmt::Block(b) | CStmt::Atomic(b) => walk(b, out),
                CStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    walk_expr(cond, out);
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                CStmt::While { cond, body, .. } => {
                    walk_expr(cond, out);
                    walk(body, out);
                }
                CStmt::DoWhile { body, cond, .. } => {
                    walk(body, out);
                    walk_expr(cond, out);
                }
                CStmt::Return(Some(e)) => walk_expr(e, out),
                CStmt::Return(None) | CStmt::Break | CStmt::Continue => {}
                CStmt::Local { init, .. } => {
                    if let Some(e) = init {
                        walk_expr(e, out);
                    }
                }
                CStmt::Expr(e) => walk_expr(e, out),
            }
        }
    }
    walk(stmts, &mut out);
    out
}
