//! Recursive-descent parser for mini-C.
//!
//! The accepted language is the C subset the five studied algorithms need
//! (paper §3.1 "C features"): structs, pointers, arrays, typedefs, enums,
//! functions, loops, `atomic` blocks, `fence("...")` calls, casts, and the
//! `spinwhile` / `commit` extensions described in the crate docs.

use std::collections::{HashMap, HashSet};

use crate::ast::{CBinOp, CExpr, CStmt, CType, Func, Item, StructField, UnOp};
use crate::error::MinicError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// A parsed translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Parses mini-C source text.
///
/// # Errors
///
/// Returns [`MinicError`] with a source line on any lexical or syntactic
/// problem.
pub fn parse(source: &str) -> Result<Ast, MinicError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        typedefs: HashMap::new(),
        struct_names: HashSet::new(),
        enum_consts: HashMap::new(),
    };
    p.parse_unit()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    typedefs: HashMap<String, CType>,
    struct_names: HashSet<String>,
    enum_consts: HashMap<String, i64>,
}

const BASE_TYPES: &[&str] = &["int", "unsigned", "long", "short", "char", "bool", "void"];
const QUALIFIERS: &[&str] = &[
    "extern", "static", "inline", "volatile", "const", "register",
];

impl Parser {
    // ------------------------------------------------------------ utilities

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, off: usize) -> &Token {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), MinicError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(MinicError::new(
                self.line(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, MinicError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(MinicError::new(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_qualifiers(&mut self) {
        loop {
            match self.peek() {
                Token::Ident(s) if QUALIFIERS.contains(&s.as_str()) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn is_type_start(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => {
                s == "struct" || BASE_TYPES.contains(&s.as_str()) || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    // ---------------------------------------------------------------- types

    /// Parses a type including pointer stars.
    fn parse_type(&mut self) -> Result<CType, MinicError> {
        self.skip_qualifiers();
        let base = if self.eat_ident("struct") {
            let name = self.expect_ident()?;
            self.struct_names.insert(name.clone());
            CType::Struct(name)
        } else {
            match self.peek().clone() {
                Token::Ident(s) if BASE_TYPES.contains(&s.as_str()) => {
                    self.bump();
                    // Consume multi-word scalars: `unsigned int`, `long long`, ...
                    if s != "void" && s != "bool" {
                        while matches!(self.peek(), Token::Ident(w)
                            if ["int", "long", "short", "char"].contains(&w.as_str()))
                        {
                            self.bump();
                        }
                    }
                    if s == "void" {
                        CType::Void
                    } else {
                        CType::Int
                    }
                }
                Token::Ident(s) if self.typedefs.contains_key(&s) => {
                    self.bump();
                    self.typedefs[&s].clone()
                }
                other => {
                    return Err(MinicError::new(
                        self.line(),
                        format!("expected a type, found {other}"),
                    ))
                }
            }
        };
        Ok(self.parse_stars(base))
    }

    fn parse_stars(&mut self, mut ty: CType) -> CType {
        while self.eat(&Token::Star) {
            ty = ty.ptr();
        }
        ty
    }

    // ------------------------------------------------------------ top level

    fn parse_unit(&mut self) -> Result<Ast, MinicError> {
        let mut items = Vec::new();
        while self.peek() != &Token::Eof {
            self.skip_qualifiers();
            if self.eat_ident("typedef") {
                items.extend(self.parse_typedef()?);
            } else if matches!(self.peek(), Token::Ident(s) if s == "struct")
                && matches!(self.peek_at(1), Token::Ident(_))
                && self.peek_at(2) == &Token::LBrace
            {
                items.push(self.parse_struct_def()?);
                self.expect(&Token::Semi)?;
            } else {
                items.extend(self.parse_global_or_func()?);
            }
        }
        Ok(Ast { items })
    }

    fn parse_typedef(&mut self) -> Result<Vec<Item>, MinicError> {
        let mut items = Vec::new();
        if self.eat_ident("enum") {
            self.expect(&Token::LBrace)?;
            let mut next = 0i64;
            loop {
                let name = self.expect_ident()?;
                if self.eat(&Token::Assign) {
                    match self.bump() {
                        Token::Num(n) => next = n,
                        other => {
                            return Err(MinicError::new(
                                self.line(),
                                format!("expected enum value, found {other}"),
                            ))
                        }
                    }
                }
                self.enum_consts.insert(name, next);
                next += 1;
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RBrace)?;
            let alias = self.expect_ident()?;
            self.typedefs.insert(alias, CType::Int);
            self.expect(&Token::Semi)?;
        } else if matches!(self.peek(), Token::Ident(s) if s == "struct")
            && (self.peek_at(1) == &Token::LBrace
                || (matches!(self.peek_at(1), Token::Ident(_))
                    && self.peek_at(2) == &Token::LBrace))
        {
            // typedef struct [tag] { ... } alias;
            self.bump(); // struct
            let tag = if matches!(self.peek(), Token::Ident(_)) {
                Some(self.expect_ident()?)
            } else {
                None
            };
            let fields = self.parse_struct_body()?;
            let alias = self.expect_ident()?;
            let name = tag.unwrap_or_else(|| alias.clone());
            self.struct_names.insert(name.clone());
            self.typedefs.insert(alias, CType::Struct(name.clone()));
            items.push(Item::Struct { name, fields });
            self.expect(&Token::Semi)?;
        } else {
            // typedef <type> alias;
            let ty = self.parse_type()?;
            let alias = self.expect_ident()?;
            self.typedefs.insert(alias, ty);
            self.expect(&Token::Semi)?;
        }
        Ok(items)
    }

    fn parse_struct_def(&mut self) -> Result<Item, MinicError> {
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.struct_names.insert(name.clone());
        let fields = self.parse_struct_body()?;
        Ok(Item::Struct { name, fields })
    }

    fn parse_struct_body(&mut self) -> Result<Vec<StructField>, MinicError> {
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Token::RBrace) {
            let base = self.parse_type_no_stars()?;
            loop {
                let ty = self.parse_stars(base.clone());
                let name = self.expect_ident()?;
                let array = self.parse_array_suffix()?;
                fields.push(StructField { name, ty, array });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::Semi)?;
        }
        Ok(fields)
    }

    /// Parses a type *without* consuming trailing stars, so that
    /// `int a, *b;` can apply stars per declarator.
    fn parse_type_no_stars(&mut self) -> Result<CType, MinicError> {
        self.skip_qualifiers();
        if self.eat_ident("struct") {
            let name = self.expect_ident()?;
            self.struct_names.insert(name.clone());
            return Ok(CType::Struct(name));
        }
        match self.peek().clone() {
            Token::Ident(s) if BASE_TYPES.contains(&s.as_str()) => {
                self.bump();
                if s != "void" && s != "bool" {
                    while matches!(self.peek(), Token::Ident(w)
                        if ["int", "long", "short", "char"].contains(&w.as_str()))
                    {
                        self.bump();
                    }
                }
                Ok(if s == "void" { CType::Void } else { CType::Int })
            }
            Token::Ident(s) if self.typedefs.contains_key(&s) => {
                self.bump();
                Ok(self.typedefs[&s].clone())
            }
            other => Err(MinicError::new(
                self.line(),
                format!("expected a type, found {other}"),
            )),
        }
    }

    fn parse_array_suffix(&mut self) -> Result<Option<u32>, MinicError> {
        if self.eat(&Token::LBracket) {
            let n = match self.bump() {
                Token::Num(n) if n > 0 => n as u32,
                other => {
                    return Err(MinicError::new(
                        self.line(),
                        format!("expected positive array size, found {other}"),
                    ))
                }
            };
            self.expect(&Token::RBracket)?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    }

    fn parse_global_or_func(&mut self) -> Result<Vec<Item>, MinicError> {
        let line = self.line();
        let base = self.parse_type_no_stars()?;
        let ty = self.parse_stars(base.clone());
        let name = self.expect_ident()?;
        if self.peek() == &Token::LParen {
            // Function.
            self.bump();
            let mut params = Vec::new();
            if !self.eat(&Token::RParen) {
                if matches!(self.peek(), Token::Ident(s) if s == "void")
                    && self.peek_at(1) == &Token::RParen
                {
                    self.bump();
                    self.bump();
                } else {
                    loop {
                        let pty = self.parse_type()?;
                        let pname = self.expect_ident()?;
                        params.push((pname, pty));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
            }
            let body = if self.eat(&Token::Semi) {
                None // extern declaration
            } else {
                Some(self.parse_block()?)
            };
            return Ok(vec![Item::Func(Func {
                name,
                ret: ty,
                params,
                body,
                line,
            })]);
        }
        // Global variable(s).
        let mut items = Vec::new();
        let mut ty = ty;
        let mut name = name;
        loop {
            let array = self.parse_array_suffix()?;
            items.push(Item::Global { name, ty, array });
            if !self.eat(&Token::Comma) {
                break;
            }
            ty = self.parse_stars(base.clone());
            name = self.expect_ident()?;
        }
        self.expect(&Token::Semi)?;
        Ok(items)
    }

    // ------------------------------------------------------------ statements

    fn parse_block(&mut self) -> Result<Vec<CStmt>, MinicError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Token::RBrace) {
            stmts.extend(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<CStmt>, MinicError> {
        if self.peek() == &Token::LBrace {
            self.parse_block()
        } else {
            self.parse_stmt()
        }
    }

    fn parse_stmt(&mut self) -> Result<Vec<CStmt>, MinicError> {
        let line = self.line();
        match self.peek().clone() {
            Token::Semi => {
                self.bump();
                Ok(vec![])
            }
            Token::LBrace => Ok(vec![CStmt::Block(self.parse_block()?)]),
            Token::Ident(s) if s == "if" => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let then_branch = self.parse_stmt_as_block()?;
                let else_branch = if self.eat_ident("else") {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(vec![CStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                }])
            }
            Token::Ident(s) if s == "while" => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(vec![CStmt::While {
                    cond,
                    body,
                    spin: false,
                }])
            }
            Token::Ident(s)
                if s == "spin" && matches!(self.peek_at(1), Token::Ident(w) if w == "while") =>
            {
                self.bump();
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(vec![CStmt::While {
                    cond,
                    body,
                    spin: true,
                }])
            }
            Token::Ident(s) if s == "do" => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                let spin = if self.eat_ident("while") {
                    false
                } else if self.eat_ident("spinwhile") {
                    true
                } else {
                    return Err(MinicError::new(
                        self.line(),
                        format!("expected `while` or `spinwhile`, found {}", self.peek()),
                    ));
                };
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Semi)?;
                Ok(vec![CStmt::DoWhile { body, cond, spin }])
            }
            Token::Ident(s) if s == "return" => {
                self.bump();
                let e = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Token::Semi)?;
                Ok(vec![CStmt::Return(e)])
            }
            Token::Ident(s) if s == "break" => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(vec![CStmt::Break])
            }
            Token::Ident(s) if s == "continue" => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(vec![CStmt::Continue])
            }
            Token::Ident(s) if s == "atomic" && self.peek_at(1) == &Token::LBrace => {
                self.bump();
                Ok(vec![CStmt::Atomic(self.parse_block()?)])
            }
            _ if self.is_type_start() => {
                // Local declaration(s). Disambiguate from expressions like
                // `q->head = x;` — those never start with a type name.
                let base = self.parse_type_no_stars()?;
                let mut out = Vec::new();
                loop {
                    let ty = self.parse_stars(base.clone());
                    let name = self.expect_ident()?;
                    let init = if self.eat(&Token::Assign) {
                        Some(self.parse_assign_expr()?)
                    } else {
                        None
                    };
                    out.push(CStmt::Local {
                        name,
                        ty,
                        init,
                        line,
                    });
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::Semi)?;
                Ok(out)
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(&Token::Semi)?;
                Ok(vec![CStmt::Expr(e)])
            }
        }
    }

    // ----------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<CExpr, MinicError> {
        self.parse_assign_expr()
    }

    fn parse_assign_expr(&mut self) -> Result<CExpr, MinicError> {
        let lhs = self.parse_ternary()?;
        if self.eat(&Token::Assign) {
            let rhs = self.parse_assign_expr()?;
            Ok(CExpr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_ternary(&mut self) -> Result<CExpr, MinicError> {
        let cond = self.parse_or()?;
        if self.eat(&Token::Question) {
            let then_e = self.parse_expr()?;
            self.expect(&Token::Colon)?;
            let else_e = self.parse_ternary()?;
            Ok(CExpr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Token::PipePipe) {
            let rhs = self.parse_and()?;
            lhs = CExpr::Binary {
                op: CBinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&Token::AmpAmp) {
            let rhs = self.parse_equality()?;
            lhs = CExpr::Binary {
                op: CBinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = if self.eat(&Token::Eq) {
                CBinOp::Eq
            } else if self.eat(&Token::Ne) {
                CBinOp::Ne
            } else {
                break;
            };
            let rhs = self.parse_relational()?;
            lhs = CExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat(&Token::Lt) {
                CBinOp::Lt
            } else if self.eat(&Token::Le) {
                CBinOp::Le
            } else if self.eat(&Token::Gt) {
                CBinOp::Gt
            } else if self.eat(&Token::Ge) {
                CBinOp::Ge
            } else {
                break;
            };
            let rhs = self.parse_additive()?;
            lhs = CExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                CBinOp::Add
            } else if self.eat(&Token::Minus) {
                CBinOp::Sub
            } else {
                break;
            };
            let rhs = self.parse_term()?;
            lhs = CExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<CExpr, MinicError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == &Token::Star {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = CExpr::Binary {
                op: CBinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<CExpr, MinicError> {
        match self.peek().clone() {
            Token::Bang => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(match e {
                    CExpr::Num(n) => CExpr::Num(-n),
                    other => CExpr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(other),
                    },
                })
            }
            Token::Star => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Deref,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::Amp => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::AddrOf,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::LParen => {
                // Cast or grouping: `(type)` vs `(expr)`.
                let save = self.pos;
                self.bump();
                if self.is_type_start() {
                    let ty = self.parse_type()?;
                    if self.eat(&Token::RParen) {
                        let expr = self.parse_unary()?;
                        return Ok(CExpr::Cast {
                            ty,
                            expr: Box::new(expr),
                        });
                    }
                    // Not a cast after all (e.g. a typedef-shadowing local);
                    // rewind and parse as a grouped expression.
                    self.pos = save;
                    self.bump();
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                self.parse_postfix_ops(e)
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<CExpr, MinicError> {
        let start_line = self.line();
        let prim = match self.bump() {
            Token::Num(n) => CExpr::Num(n),
            Token::Str(s) => CExpr::Str(s),
            Token::Ident(s) => {
                if s == "true" {
                    CExpr::Num(1)
                } else if s == "false" || s == "NULL" {
                    CExpr::Num(0)
                } else if let Some(&v) = self.enum_consts.get(&s) {
                    CExpr::Num(v)
                } else if self.peek() == &Token::LParen {
                    // Call.
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    CExpr::Call { name: s, args }
                } else {
                    CExpr::Ident(s)
                }
            }
            other => {
                return Err(MinicError::new(
                    start_line,
                    format!("expected an expression, found {other}"),
                ))
            }
        };
        self.parse_postfix_ops(prim)
    }

    fn parse_postfix_ops(&mut self, mut e: CExpr) -> Result<CExpr, MinicError> {
        loop {
            if self.eat(&Token::Arrow) {
                let field = self.expect_ident()?;
                e = CExpr::Field {
                    base: Box::new(e),
                    field,
                    arrow: true,
                };
            } else if self.eat(&Token::Dot) {
                let field = self.expect_ident()?;
                e = CExpr::Field {
                    base: Box::new(e),
                    field,
                    arrow: false,
                };
            } else if self.eat(&Token::LBracket) {
                let index = self.parse_expr()?;
                self.expect(&Token::RBracket)?;
                e = CExpr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else {
                return Ok(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_typedef_and_func() {
        let src = r#"
            typedef struct node {
                struct node *next;
                int value;
            } node_t;
            node_t *head;
            int get(node_t *n) { return n->value; }
        "#;
        let ast = parse(src).expect("parses");
        assert_eq!(ast.items.len(), 3);
        match &ast.items[0] {
            Item::Struct { name, fields } => {
                assert_eq!(name, "node");
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].ty, CType::Struct("node".into()).ptr());
            }
            other => panic!("expected struct, got {other:?}"),
        }
        match &ast.items[2] {
            Item::Func(f) => {
                assert_eq!(f.name, "get");
                assert_eq!(f.params[0].1, CType::Struct("node".into()).ptr());
            }
            other => panic!("expected func, got {other:?}"),
        }
    }

    #[test]
    fn parses_enum_typedef() {
        let src = "typedef enum { free, held } lock_t; lock_t l;";
        let ast = parse(src).expect("parses");
        assert!(matches!(&ast.items[0], Item::Global { ty: CType::Int, .. }));
    }

    #[test]
    fn enum_constants_become_numbers() {
        let src = r#"
            typedef enum { free, held } lock_t;
            void f(lock_t *l) { *l = held; }
        "#;
        let ast = parse(src).expect("parses");
        let Item::Func(f) = &ast.items[0] else {
            panic!()
        };
        let body = f.body.as_ref().expect("has body");
        match &body[0] {
            CStmt::Expr(CExpr::Assign { rhs, .. }) => {
                assert_eq!(**rhs, CExpr::Num(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            void f(int x) {
                while (true) {
                    if (x == 0) break;
                    x = x - 1;
                }
                do { x = x + 1; } spinwhile (x < 3);
            }
        "#;
        let ast = parse(src).expect("parses");
        let Item::Func(f) = &ast.items[0] else {
            panic!()
        };
        let body = f.body.as_ref().expect("has body");
        assert!(matches!(&body[0], CStmt::While { spin: false, .. }));
        assert!(matches!(&body[1], CStmt::DoWhile { spin: true, .. }));
    }

    #[test]
    fn parses_casts_and_calls() {
        let src = r#"
            int cas(void *loc, unsigned old, unsigned new_);
            void f(int *t, int *n) {
                cas(t, (unsigned) n, (unsigned) 0);
            }
        "#;
        let ast = parse(src).expect("parses");
        let Item::Func(f) = &ast.items[1] else {
            panic!()
        };
        match &f.body.as_ref().expect("body")[0] {
            CStmt::Expr(CExpr::Call { name, args }) => {
                assert_eq!(name, "cas");
                assert_eq!(args.len(), 3);
                assert!(matches!(&args[1], CExpr::Cast { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_atomic_blocks() {
        let src = r#"
            void f(int *l) {
                atomic {
                    if (*l == 0) { *l = 1; }
                }
            }
        "#;
        let ast = parse(src).expect("parses");
        let Item::Func(f) = &ast.items[0] else {
            panic!()
        };
        assert!(matches!(
            &f.body.as_ref().expect("body")[0],
            CStmt::Atomic(_)
        ));
    }

    #[test]
    fn parses_multi_declarators() {
        let src = "void f() { int *a, b, *c; }";
        let ast = parse(src).expect("parses");
        let Item::Func(f) = &ast.items[0] else {
            panic!()
        };
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.len(), 3);
        assert!(
            matches!(
                &body[0],
                CStmt::Local {
                    ty: CType::Ptr(_),
                    ..
                }
            ),
            "first is pointer"
        );
        assert!(matches!(&body[1], CStmt::Local { ty: CType::Int, .. }));
    }

    #[test]
    fn reports_error_lines() {
        let err = parse("void f() {\n  int x = ;\n}").expect_err("bad init");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn precedence() {
        let src = "void f(int a, int b, int c) { a = b == 0 && c != 1 || a < b + 1; }";
        assert!(parse(src).is_ok());
    }
}
