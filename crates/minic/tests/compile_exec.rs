//! End-to-end tests: compile mini-C and execute on the LSL interpreter.

use cf_lsl::{ExecError, Machine, Value};
use cf_minic::compile;

fn run1(src: &str, func: &str, args: &[i64]) -> Result<Option<Value>, ExecError> {
    let program = compile(src).expect("compiles");
    let id = program.proc_id(func).expect("function exists");
    let args: Vec<Value> = args.iter().map(|&n| Value::Int(n)).collect();
    let mut m = Machine::new(&program);
    m.call(id, &args)
}

#[test]
fn arithmetic_and_comparison() {
    let src = r#"
        int f(int a, int b) { return a * b + (a - b); }
        int cmp(int a, int b) { return a < b; }
    "#;
    assert_eq!(run1(src, "f", &[3, 4]).unwrap(), Some(Value::Int(11)));
    assert_eq!(run1(src, "cmp", &[1, 2]).unwrap(), Some(Value::Int(1)));
    assert_eq!(run1(src, "cmp", &[2, 1]).unwrap(), Some(Value::Int(0)));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // If && evaluated its right side unconditionally, the null dereference
    // would fail.
    let src = r#"
        typedef struct node { struct node *next; int value; } node_t;
        node_t *head;
        int safe(node_t *p) { return p != 0 && p->value == 1; }
    "#;
    assert_eq!(run1(src, "safe", &[0]).unwrap(), Some(Value::Int(0)));
}

#[test]
fn short_circuit_or() {
    let src = r#"
        int count;
        int bump() { count = count + 1; return 1; }
        int f() {
            count = 0;
            int r = 1 || bump();
            return count;
        }
    "#;
    assert_eq!(run1(src, "f", &[]).unwrap(), Some(Value::Int(0)));
}

#[test]
fn while_loop_sums() {
    let src = r#"
        int sum(int n) {
            int s = 0;
            int i = 0;
            while (i < n) { s = s + i; i = i + 1; }
            return s;
        }
    "#;
    assert_eq!(run1(src, "sum", &[5]).unwrap(), Some(Value::Int(10)));
    assert_eq!(run1(src, "sum", &[0]).unwrap(), Some(Value::Int(0)));
}

#[test]
fn do_while_and_break_continue() {
    let src = r#"
        int f(int n) {
            int s = 0;
            int i = 0;
            while (true) {
                i = i + 1;
                if (i > n) break;
                if (i == 2) continue;
                s = s + i;
            }
            return s;
        }
        int g(int n) {
            int i = 0;
            do { i = i + 1; } while (i < n);
            return i;
        }
    "#;
    // skips 2: 1 + 3 + 4 = 8
    assert_eq!(run1(src, "f", &[4]).unwrap(), Some(Value::Int(8)));
    assert_eq!(run1(src, "g", &[3]).unwrap(), Some(Value::Int(3)));
    assert_eq!(
        run1(src, "g", &[0]).unwrap(),
        Some(Value::Int(1)),
        "do-while runs once"
    );
}

#[test]
fn linked_list_via_malloc() {
    let src = r#"
        typedef struct node { struct node *next; int value; } node_t;
        node_t *head;
        void init() { head = 0; }
        void push(int v) {
            node_t *n = malloc(node_t);
            n->value = v;
            n->next = head;
            head = n;
        }
        int sum() {
            int s = 0;
            node_t *p = head;
            while (p != 0) { s = s + p->value; p = p->next; }
            return s;
        }
    "#;
    let program = compile(src).expect("compiles");
    let mut m = Machine::new(&program);
    m.call(program.proc_id("init").unwrap(), &[]).unwrap();
    for v in [1, 2, 3] {
        m.call(program.proc_id("push").unwrap(), &[Value::Int(v)])
            .unwrap();
    }
    let got = m.call(program.proc_id("sum").unwrap(), &[]).unwrap();
    assert_eq!(got, Some(Value::Int(6)));
}

#[test]
fn address_of_local_out_param() {
    let src = r#"
        int source;
        void get(int *out) { *out = source; }
        int f() {
            int v;
            source = 9;
            get(&v);
            return v;
        }
    "#;
    assert_eq!(run1(src, "f", &[]).unwrap(), Some(Value::Int(9)));
}

#[test]
fn cas_in_atomic_block() {
    // The paper's Fig. 6 CAS written in mini-C.
    let src = r#"
        int cell;
        bool cas(unsigned *loc, unsigned old, unsigned new) {
            atomic {
                if (*loc == old) { *loc = new; return true; }
                return false;
            }
        }
        int f() {
            cell = 5;
            int ok1 = cas(&cell, 5, 7);
            int ok2 = cas(&cell, 5, 9);
            return ok1 * 10 + ok2;
        }
        int get() { return cell; }
    "#;
    let program = compile(src).expect("compiles");
    let mut m = Machine::new(&program);
    let got = m.call(program.proc_id("f").unwrap(), &[]).unwrap();
    assert_eq!(
        got,
        Some(Value::Int(10)),
        "first cas succeeds, second fails"
    );
    let cell = m.call(program.proc_id("get").unwrap(), &[]).unwrap();
    assert_eq!(cell, Some(Value::Int(7)));
}

#[test]
fn spinwhile_lock_runs_sequentially() {
    // Fig. 7 lock/unlock; sequentially the lock is always free.
    let src = r#"
        typedef enum { free, held } lock_t;
        lock_t lk;
        int guarded;
        void lock(lock_t *lock) {
            lock_t val;
            do {
                atomic { val = *lock; *lock = held; }
            } spinwhile (val != free);
            fence("load-load");
            fence("load-store");
        }
        void unlock(lock_t *lock) {
            fence("load-store");
            fence("store-store");
            atomic { assert(*lock == held); *lock = free; }
        }
        int f() {
            lk = free;
            lock(&lk);
            guarded = 3;
            unlock(&lk);
            return guarded;
        }
    "#;
    assert_eq!(run1(src, "f", &[]).unwrap(), Some(Value::Int(3)));
}

#[test]
fn assert_failure_reported() {
    let src = "void f(int x) { assert(x == 1); }";
    assert_eq!(run1(src, "f", &[0]), Err(ExecError::AssertFailed));
    assert!(run1(src, "f", &[1]).is_ok());
}

#[test]
fn uninitialized_field_detected() {
    // The lazy-list bug pattern: a field is never initialized; using it in
    // a condition is an undefined-value error.
    let src = r#"
        typedef struct node { int marked; } node_t;
        int f() {
            node_t *n = malloc(node_t);
            if (n->marked) { return 1; }
            return 0;
        }
    "#;
    assert!(matches!(
        run1(src, "f", &[]),
        Err(ExecError::UndefinedUse { .. })
    ));
}

#[test]
fn global_struct_and_nested_access() {
    let src = r#"
        typedef struct node { struct node *next; int value; } node_t;
        typedef struct queue { node_t *head; node_t *tail; } queue_t;
        queue_t q;
        void init_queue() {
            node_t *node = malloc(node_t);
            node->next = 0;
            q.head = node;
            q.tail = node;
        }
        int same() { return q.head == q.tail; }
    "#;
    let program = compile(src).expect("compiles");
    let mut m = Machine::new(&program);
    m.call(program.proc_id("init_queue").unwrap(), &[]).unwrap();
    assert_eq!(
        m.call(program.proc_id("same").unwrap(), &[]).unwrap(),
        Some(Value::Int(1))
    );
}

#[test]
fn assignment_chains() {
    let src = r#"
        typedef struct queue { int head; int tail; } queue_t;
        queue_t q;
        int f(int v) { q.head = q.tail = v; return q.head + q.tail; }
    "#;
    assert_eq!(run1(src, "f", &[4]).unwrap(), Some(Value::Int(8)));
}

#[test]
fn arrays_in_globals_and_fields() {
    let src = r#"
        typedef struct box { int slots[3]; } box_t;
        box_t b;
        int table[4];
        void fill() {
            int i = 0;
            while (i < 4) { table[i] = i * 2; i = i + 1; }
            b.slots[1] = 7;
        }
        int f(int i) { return table[i] + b.slots[1]; }
    "#;
    let program = compile(src).expect("compiles");
    let mut m = Machine::new(&program);
    m.call(program.proc_id("fill").unwrap(), &[]).unwrap();
    assert_eq!(
        m.call(program.proc_id("f").unwrap(), &[Value::Int(3)])
            .unwrap(),
        Some(Value::Int(13))
    );
}

#[test]
fn ternary_is_lazy() {
    let src = r#"
        typedef struct node { int value; } node_t;
        int f(node_t *p) { return p != 0 ? 5 : 6; }
    "#;
    assert_eq!(run1(src, "f", &[0]).unwrap(), Some(Value::Int(6)));
}

#[test]
fn commit_marker_is_noop_in_interp() {
    let src = r#"
        int x;
        void f() { x = 1; commit(1); }
        int get() { return x; }
    "#;
    let program = compile(src).expect("compiles");
    let mut m = Machine::new(&program);
    m.call(program.proc_id("f").unwrap(), &[]).unwrap();
    assert_eq!(
        m.call(program.proc_id("get").unwrap(), &[]).unwrap(),
        Some(Value::Int(1))
    );
}

#[test]
fn compile_errors_have_context() {
    let err = compile("void f() { g(); }").expect_err("unknown function");
    assert!(err.message.contains("unknown function"), "{err}");
    let err = compile("void f(int *p) { p->x = 1; }").expect_err("unknown struct");
    assert!(err.message.contains("struct type"), "{err}");
}
