//! Overhead benchmark for verdict provenance: the treiber/ms2 inclusion
//! sweeps answered with provenance off (the default) and on (core
//! extraction plus greedy minimization under a 2M-tick budget).
//!
//! Run with `cargo bench -p cf-bench --bench provenance`. Writes
//! `BENCH_provenance.json` at the workspace root (override with
//! `CHECKFENCE_BENCH_OUT`). Asserts the two contracts:
//!
//! * **off is free**: a plain query batched next to provenance twins
//!   reports solver counters identical to the same query run alone —
//!   the off path does zero extra solves and assumes zero extra
//!   literals (the wall-clock side of the "≤ 2% overhead" claim is
//!   implied: identical solver work, separate session pools);
//! * **on is bounded**: the instrumented sweep — per-fence activation
//!   literals plus core extraction, which is free-riding on the
//!   decisive solve's final-conflict analysis — stays within 1.5x of
//!   the plain sweep's wall clock. Greedy minimization is measured as
//!   its own series: it deliberately buys extra (tick-budgeted)
//!   re-solves, so its wall clock is reported, and its contract is
//!   that every PASS core comes back locally minimal.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::Mode;
use checkfence::{
    mine_reference, Engine, EngineConfig, Harness, ProvenanceKind, Query, TestSpec, Verdict,
};

struct Subject {
    harness: Harness,
    test: TestSpec,
    spec: checkfence::ObsSet,
}

fn subject(name: &'static str) -> Subject {
    let (harness, test) = match name {
        "treiber" => (
            treiber::harness(Variant::Fenced),
            tests::by_name("U0").expect("catalog"),
        ),
        "ms2" => (
            ms2::harness(Variant::Fenced),
            tests::by_name("T0").expect("catalog"),
        ),
        other => panic!("unknown subject {other}"),
    };
    let spec = mine_reference(&harness, &test).expect("mines").spec;
    Subject {
        harness,
        test,
        spec,
    }
}

fn queries(s: &Subject) -> Vec<Query<'_>> {
    Mode::hardware()
        .iter()
        .map(|&m| Query::check_inclusion(&s.harness, &s.test, s.spec.clone()).on(m))
        .collect()
}

/// One sweep. `Plain` is the default engine; `Extract` turns on
/// provenance (raw final-conflict cores, zero extra solves);
/// `Minimize` adds the deterministic 2M-tick deletion pass the CLI's
/// `--explain` uses.
#[derive(Clone, Copy, PartialEq)]
enum Series {
    Plain,
    Extract,
    Minimize,
}

fn sweep(s: &Subject, series: Series) -> (f64, Vec<Verdict>) {
    let mut config = EngineConfig::default().with_provenance(series != Series::Plain);
    if series == Series::Minimize {
        config.check.core_minimize_ticks = Some(2_000_000);
    }
    let t0 = Instant::now();
    let mut engine = Engine::new(config);
    let qs = queries(s);
    let verdicts: Vec<Verdict> = engine
        .run_batch(&qs)
        .into_iter()
        .map(|v| v.expect("checks"))
        .collect();
    (t0.elapsed().as_secs_f64() * 1e3, verdicts)
}

/// Best-of-`n` wall clock (minimum filters scheduler noise).
fn best_of(n: usize, mut f: impl FnMut() -> (f64, Vec<Verdict>)) -> (f64, Vec<Verdict>) {
    let mut best = f();
    for _ in 1..n {
        let run = f();
        if run.0 < best.0 {
            best.0 = run.0;
        }
    }
    best
}

fn main() {
    const REPS: usize = 3;
    let mut rows = Vec::new();
    for name in ["treiber", "ms2"] {
        let s = subject(name);

        // The off-is-free contract, on deterministic counters: plain
        // queries batched next to provenance twins match a plain-only
        // engine counter for counter (separate session pools).
        let mut plain_engine = Engine::new(EngineConfig::default());
        let plain_alone: Vec<Verdict> = plain_engine
            .run_batch(&queries(&s))
            .into_iter()
            .map(|v| v.expect("checks"))
            .collect();
        let mut mixed: Vec<Query> = queries(&s);
        mixed.extend(queries(&s).into_iter().map(Query::with_provenance));
        let mut mixed_engine = Engine::new(EngineConfig::default());
        let mixed_verdicts: Vec<Verdict> = mixed_engine
            .run_batch(&mixed)
            .into_iter()
            .map(|v| v.expect("checks"))
            .collect();
        for (alone, next_door) in plain_alone.iter().zip(&mixed_verdicts) {
            assert!(next_door.provenance.is_none(), "{name}: off stays off");
            assert_eq!(alone.passed(), next_door.passed(), "{name}");
            assert_eq!(alone.stats.solves, next_door.stats.solves, "{name}");
            assert_eq!(alone.stats.conflicts, next_door.stats.conflicts, "{name}");
            assert_eq!(
                alone.stats.propagations, next_door.stats.propagations,
                "{name}"
            );
            assert_eq!(
                alone.stats.assumed_literals, next_door.stats.assumed_literals,
                "{name}"
            );
        }

        // The on-is-bounded contract, on wall clock.
        let (off_ms, off) = best_of(REPS, || sweep(&s, Series::Plain));
        let (on_ms, on) = best_of(REPS, || sweep(&s, Series::Extract));
        let (min_ms, minimized) = best_of(REPS, || sweep(&s, Series::Minimize));
        let (mut cores, mut core_size, mut min_size) = (0usize, 0usize, 0usize);
        for ((plain, raw), min) in off.iter().zip(&on).zip(&minimized) {
            assert_eq!(plain.passed(), raw.passed(), "{name}: verdict drift");
            assert_eq!(plain.passed(), min.passed(), "{name}: verdict drift");
            let p = raw.provenance.as_ref().expect("provenance on");
            if p.kind == ProvenanceKind::Proof {
                cores += 1;
                core_size += p.core_size;
                let m = min.provenance.as_ref().expect("provenance on");
                assert!(m.minimized, "{name}: 2M ticks must finish the pass");
                assert!(m.core_size <= p.core_size, "{name}: minimization grew?");
                min_size += m.core_size;
            }
        }
        assert!(cores > 0, "{name}: the fenced sweep must extract cores");
        let ratio = on_ms / off_ms.max(0.001);
        let min_ratio = min_ms / off_ms.max(0.001);
        println!(
            "{name:<10} queries {:>2}  off {off_ms:>7.1} ms  on {on_ms:>7.1} ms \
             (ratio {ratio:.2}x)  minimized {min_ms:>7.1} ms ({min_ratio:.2}x, \
             cores {cores}, literals {core_size} -> {min_size})",
            off.len(),
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{name}\", \"queries\": {}, \
             \"off\": {{\"wall_ms\": {off_ms:.1}}}, \
             \"on\": {{\"wall_ms\": {on_ms:.1}, \"cores\": {cores}, \
             \"core_literals\": {core_size}}}, \
             \"minimized\": {{\"wall_ms\": {min_ms:.1}, \
             \"core_literals\": {min_size}, \"ratio\": {min_ratio:.3}}}, \
             \"ratio\": {ratio:.3}}}",
            off.len(),
        );
        rows.push(row);
        assert!(
            ratio <= 1.5,
            "{name}: provenance extraction must stay within 1.5x of the plain \
             sweep (got {ratio:.2}x: off {off_ms:.1} ms, on {on_ms:.1} ms)"
        );
    }

    let json = format!(
        "{{\n  \"schema_version\": {},\n  \
         \"benchmark\": \"verdict_provenance_overhead\",\n  \"max_on_ratio\": 1.5,\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        rows.join(",\n")
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_provenance.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
