//! Batch-throughput benchmark of the query engine: the ablation
//! (mutant × model) matrices of treiber/ms2 answered three ways —
//! sequential legacy one-shot calls (a fresh checker per cell, the
//! pre-session API a user would have written), `Engine::run_batch` on
//! one worker, and `Engine::run_batch` sharded across 4 workers.
//!
//! Run with `cargo bench -p cf-bench --bench query`. Writes
//! `BENCH_query.json` at the workspace root (override with
//! `CHECKFENCE_BENCH_OUT`). Asserts:
//!
//! * verdicts identical across all three paths, cell for cell;
//! * `encodes == sessions` on both engine paths (one encoding per pool
//!   key / worker shard);
//! * batched `--jobs 4` at least 3x faster than the sequential legacy
//!   calls.
#![allow(deprecated)] // the legacy series deliberately calls the one-shot grid

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::{Mode, ModeSet};
use checkfence::mutate::{MutationConfig, MutationPlan};
use checkfence::{
    mine_reference, CheckConfig, CheckError, Checker, Engine, EngineConfig, Harness, Query,
    TestSpec,
};

struct Subject {
    harness: Harness,
    test: TestSpec,
    plan: MutationPlan,
    spec: checkfence::ObsSet,
}

fn subject(name: &'static str) -> Subject {
    let (harness, test, procs): (Harness, TestSpec, Vec<String>) = match name {
        "treiber" => (
            treiber::harness(Variant::Fenced),
            tests::by_name("U0").expect("catalog"),
            vec!["push".into(), "pop".into()],
        ),
        "ms2" => (
            ms2::harness(Variant::Fenced),
            tests::by_name("T0").expect("catalog"),
            vec!["enqueue".into(), "dequeue".into()],
        ),
        other => panic!("unknown subject {other}"),
    };
    let plan = MutationPlan::build(
        &harness.program,
        &MutationConfig {
            procs: Some(procs),
            ..MutationConfig::default()
        },
    );
    let spec = mine_reference(&harness, &test).expect("mines").spec;
    Subject {
        harness,
        test,
        plan,
        spec,
    }
}

/// The matrix cells: (toggle set, mode) — baseline row first.
fn cells(s: &Subject) -> Vec<(Vec<u32>, Mode)> {
    let mut out = Vec::new();
    for &mode in &Mode::all() {
        out.push((vec![], mode));
    }
    for p in &s.plan.points {
        for &mode in &Mode::all() {
            out.push((vec![p.id], mode));
        }
    }
    out
}

/// `None` = pass, `Some(kind)` = caught, `Some("Diverged")` = bounds.
type CellVerdict = Option<String>;

fn of_result(r: Result<bool, CheckError>) -> CellVerdict {
    match r {
        Ok(true) => None,
        Ok(false) => Some("fail".into()),
        Err(CheckError::BoundsDiverged { .. }) => Some("diverged".into()),
        Err(e) => panic!("infrastructure error: {e}"),
    }
}

/// The sequential legacy series: a fresh one-shot checker per cell on
/// the concretely mutated build — the pre-engine cost model.
fn run_legacy(s: &Subject) -> (f64, Vec<CellVerdict>) {
    let t0 = Instant::now();
    let mut verdicts = Vec::new();
    for (toggles, mode) in cells(s) {
        let build = match toggles.first() {
            None => s.harness.clone(),
            Some(&id) => Harness {
                name: format!("{}+m{id}", s.harness.name),
                program: s.plan.mutant(id),
                init_proc: s.harness.init_proc.clone(),
                ops: s.harness.ops.clone(),
            },
        };
        let checker = Checker::new(&build, &s.test).with_memory_model(mode);
        verdicts.push(of_result(
            checker
                .check_inclusion_oneshot(&s.spec)
                .map(|r| r.outcome.passed()),
        ));
    }
    (t0.elapsed().as_secs_f64() * 1e3, verdicts)
}

/// The engine series: the whole matrix as one batch over `jobs` workers
/// on the toggle-instrumented build.
fn run_engine(s: &Subject, jobs: usize) -> (f64, Vec<CellVerdict>, usize, u32) {
    let instrumented = Harness {
        name: format!("{}+mutants", s.harness.name),
        program: s.plan.instrumented.clone(),
        init_proc: s.harness.init_proc.clone(),
        ops: s.harness.ops.clone(),
    };
    let t0 = Instant::now();
    let mut engine = Engine::new(
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::all()).with_jobs(jobs),
    );
    let base = Query::check_inclusion(&instrumented, &s.test, s.spec.clone());
    let queries: Vec<Query> = cells(s)
        .into_iter()
        .map(|(toggles, mode)| base.clone().on(mode).with_toggles(&toggles))
        .collect();
    let verdicts: Vec<CellVerdict> = engine
        .run_batch(&queries)
        .into_iter()
        .map(|v| of_result(v.map(|v| v.passed())))
        .collect();
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let stats = engine.stats();
    (wall, verdicts, stats.sessions, stats.encodes)
}

fn main() {
    let mut rows = Vec::new();
    for name in ["treiber", "ms2"] {
        let s = subject(name);
        let (legacy_ms, legacy) = run_legacy(&s);
        let (seq_ms, seq, seq_sessions, seq_encodes) = run_engine(&s, 1);
        let (par_ms, par, par_sessions, par_encodes) = run_engine(&s, 4);
        assert_eq!(legacy, seq, "{name}: legacy and jobs=1 verdicts differ");
        assert_eq!(seq, par, "{name}: jobs=1 and jobs=4 verdicts differ");
        // One encoding per pool key, on both engine paths.
        assert_eq!(seq_encodes as usize, seq_sessions, "{name}: jobs=1");
        assert_eq!(par_encodes as usize, par_sessions, "{name}: jobs=4");
        assert_eq!(seq_sessions, 1, "{name}: sequential batch pools once");
        let speedup = legacy_ms / par_ms.max(0.001);
        println!(
            "{name:<10} cells {:>4}  legacy {legacy_ms:>8.1} ms  engine j1 {seq_ms:>7.1} ms \
             (encodes {seq_encodes})  engine j4 {par_ms:>7.1} ms (encodes {par_encodes})  \
             speedup {speedup:.2}x",
            legacy.len(),
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{name}\", \"cells\": {}, \
             \"legacy\": {{\"wall_ms\": {legacy_ms:.1}}}, \
             \"engine_jobs1\": {{\"wall_ms\": {seq_ms:.1}, \"sessions\": {seq_sessions}, \
             \"encodes\": {seq_encodes}}}, \
             \"engine_jobs4\": {{\"wall_ms\": {par_ms:.1}, \"sessions\": {par_sessions}, \
             \"encodes\": {par_encodes}}}, \
             \"speedup\": {speedup:.3}}}",
            legacy.len(),
        );
        rows.push(row);
        assert!(
            speedup >= 3.0,
            "{name}: batched run_batch at jobs=4 must be >= 3x faster than \
             sequential legacy calls (got {speedup:.2}x)"
        );
    }

    let json = format!(
        "{{\n  \"schema_version\": {},\n  \
         \"benchmark\": \"query_batch_throughput\",\n  \"target_speedup\": 3.0,\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        rows.join(",\n")
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_query.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
