//! Criterion micro-benchmarks for the substrates: the CDCL solver, the
//! concrete interpreter (serial mining) and the CNF encoder.

use criterion::{criterion_group, criterion_main, Criterion};

use cf_algos::{msn, tests, Variant};
use checkfence::{analyze, execute, Encoding, LoopBounds, OrderEncoding};
use cf_memmodel::Mode;
use cf_sat::{Lit, SolveResult, Solver};

/// Pigeonhole PHP(n+1, n): a classic UNSAT family for CDCL stress.
fn pigeonhole(n: i64) -> Solver {
    let mut s = Solver::new();
    let v = |p: i64, h: i64| Lit::from_dimacs((p - 1) * n + h);
    for p in 1..=n + 1 {
        let clause: Vec<Lit> = (1..=n).map(|h| v(p, h)).collect();
        while s.num_vars() < (n * (n + 1)) as usize {
            s.new_var();
        }
        s.add_clause(clause);
    }
    for h in 1..=n {
        for p1 in 1..=n + 1 {
            for p2 in (p1 + 1)..=n + 1 {
                s.add_clause([!v(p1, h), !v(p2, h)]);
            }
        }
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole-7", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7);
            assert_eq!(s.solve(), SolveResult::Unsat);
        })
    });
}

fn bench_mining(c: &mut Criterion) {
    let h = msn::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    c.bench_function("mine/reference-msn-T0", |b| {
        b.iter(|| {
            let spec = checkfence::mine_reference(&h, &t).expect("mines").spec;
            assert_eq!(spec.len(), 4);
        })
    });
}

fn bench_encoding(c: &mut Criterion) {
    let h = msn::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    let sx = execute(&h, &t, &LoopBounds::new(), 2).expect("executes");
    let range = analyze(&sx, true);
    c.bench_function("encode/msn-T0-pairwise", |b| {
        b.iter(|| {
            let enc = Encoding::build(&sx, &range, Mode::Relaxed, OrderEncoding::Pairwise);
            assert!(enc.cnf.num_vars() > 0);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solver, bench_mining, bench_encoding
}
criterion_main!(benches);
