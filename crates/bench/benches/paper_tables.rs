//! Remaining paper artifacts: Table 1 (the implementations), Fig. 2 (the
//! IRIW execution impossible on Relaxed), the §4.4 memory-model runtime
//! comparison, and the order-encoding ablation (a reproduction
//! extension).

use cf_algos::{fences, tests, Algo, Variant};
use cf_bench::secs;
use checkfence::{Checker, OrderEncoding};
use cf_memmodel::{litmus, Mode};

fn main() {
    table1();
    fig2();
    model_choice();
    order_ablation();
}

/// Table 1: the five implementations, with compiled-size statistics.
fn table1() {
    println!("Table 1: studied implementations");
    println!(
        "{:<10} {:<28} {:>8} {:>8} {:>8}",
        "mnemonic", "kind", "procs", "stmts", "fences"
    );
    for algo in Algo::all() {
        let h = algo.harness(Variant::Fenced);
        let kind = match algo {
            Algo::Ms2 => "two-lock queue",
            Algo::Msn => "nonblocking queue",
            Algo::Lazylist => "lazy list-based set",
            Algo::Harris => "nonblocking set",
            Algo::Snark => "DCAS deque",
        };
        println!(
            "{:<10} {:<28} {:>8} {:>8} {:>8}",
            algo.name(),
            kind,
            h.program.procedures.len(),
            h.program.num_stmts(),
            fences::fence_sites(&h.program).len()
        );
    }
    println!();
}

/// Fig. 2: the IRIW-with-fences outcome is impossible on Relaxed
/// (Relaxed globally orders stores) though weaker architectures allow it.
fn fig2() {
    println!("Fig. 2: IRIW with load-load fences");
    let t = litmus::iriw_fenced();
    let outcome = [1, 0, 1, 0];
    for mode in [Mode::Sc, Mode::Relaxed] {
        println!(
            "  outcome (1,0,1,0) on {:8}: {}",
            mode.name(),
            if t.allows(mode, &outcome) {
                "ALLOWED (unexpected!)"
            } else {
                "forbidden (as the paper states)"
            }
        );
    }
    let unfenced = litmus::iriw_unfenced();
    println!(
        "  without the fences on relaxed: {}",
        if unfenced.allows(Mode::Relaxed, &outcome) {
            "allowed (loads reorder)"
        } else {
            "forbidden (unexpected!)"
        }
    );
    println!();
}

/// §4.4 "Choice of memory model": SC vs Relaxed runtimes are close
/// (paper: ~4% difference). Extended with the TSO/PSO columns — the
/// insensitivity holds across the whole chain.
fn model_choice() {
    println!("§4.4: memory model choice (inclusion-check runtime)");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "impl", "test", "sc[s]", "tso[s]", "pso[s]", "relaxed[s]", "rx/sc"
    );
    let cases = [
        (Algo::Msn, "T0"),
        (Algo::Msn, "Ti2"),
        (Algo::Ms2, "T0"),
    ];
    for (algo, tn) in cases {
        let h = algo.harness(Variant::Fenced);
        let t = tests::by_name(tn).expect("catalog");
        let spec = Checker::new(&h, &t)
            .mine_spec_reference()
            .expect("mines")
            .spec;
        let mut times = Vec::new();
        for mode in Mode::hardware() {
            let c = Checker::new(&h, &t).with_memory_model(mode);
            let r = c.check_inclusion(&spec).expect("checks");
            times.push(r.stats.total_time);
        }
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7.2}x",
            algo.name(),
            tn,
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            secs(times[3]),
            times[3].as_secs_f64() / times[0].as_secs_f64().max(1e-9)
        );
    }
    println!();
}

/// Extension: the paper's pairwise `Mxy` order encoding against the
/// timestamp encoding. The pairwise encoding wins decisively — explicit
/// transitivity clauses propagate well, comparator circuits do not.
fn order_ablation() {
    println!("Ablation: memory-order encoding (msn, Relaxed)");
    println!("{:<6} {:>12} {:>10} {:>10} {:>12}", "test", "encoding", "vars", "clauses", "total[s]");
    let h = Algo::Msn.harness(Variant::Fenced);
    for tn in ["T0"] {
        let t = tests::by_name(tn).expect("catalog");
        let spec = Checker::new(&h, &t)
            .mine_spec_reference()
            .expect("mines")
            .spec;
        for enc in [OrderEncoding::Pairwise, OrderEncoding::Timestamp] {
            let mut c = Checker::new(&h, &t)
                .with_memory_model(Mode::Relaxed)
                .with_order_encoding(enc);
            // The timestamp encoding can be orders of magnitude slower;
            // cap it so the ablation terminates.
            c.config.conflict_budget = Some(4_000_000);
            match c.check_inclusion(&spec) {
                Ok(r) => println!(
                    "{:<6} {:>12} {:>10} {:>10} {:>12}",
                    tn,
                    enc.name(),
                    r.stats.sat_vars,
                    r.stats.sat_clauses,
                    secs(r.stats.total_time)
                ),
                Err(e) => println!("{:<6} {:>12} {e}", tn, enc.name()),
            }
        }
    }
}
