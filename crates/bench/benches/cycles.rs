//! Static critical-cycle analysis benchmark: what the delay-set
//! analysis buys each of its two consumers.
//!
//! * **Candidate pruning** — fence inference with statically-irrelevant
//!   candidate sites dropped before encoding, against the full
//!   saturated candidate space. Placements must match exactly; the win
//!   is the smaller activation-literal space and the wall-clock delta.
//! * **Sweep triage** — synthesized corpus sweeps with static triage
//!   (engine discharge + robust-column copying) against the all-solver
//!   ladder. Tables must match byte for byte; the win is solver cells
//!   answered for free.
//!
//! Run with `cargo bench -p cf-bench --bench cycles`. Writes
//! `BENCH_cycles.json` at the workspace root (override the path with
//! `CHECKFENCE_BENCH_OUT`). Plain `main` (criterion is not vendored in
//! this offline build).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{lamport, tests, treiber, Variant};
use cf_memmodel::Mode;
use cf_synth::corpus::load_dir;
use cf_synth::{run_corpus, synthesize, CorpusConfig, CorpusReport, SynthBounds};
use checkfence::infer::{infer, InferConfig};
use checkfence::{Harness, TestSpec};

struct InferCase {
    name: String,
    harness: Harness,
    tests: Vec<TestSpec>,
    mode: Mode,
    config: InferConfig,
}

/// The candidate-pruning workload mixes both aliasing regimes: the
/// global-array scenarios (lamport, dekker, seqlock) have precise
/// abstract locations and prune hard; the heap-based treiber stack
/// aliases through one abstract heap blob and prunes little — recorded
/// anyway so the artifact shows the limit, not just the wins.
fn infer_cases() -> Vec<InferCase> {
    let scenario = |name: &str| {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
        let entries = load_dir(&dir).expect("corpus loads");
        let e = entries
            .into_iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("corpus entry {name}"));
        (e.harness, vec![e.tests[0].clone()])
    };
    let (dekker, dekker_tests) = scenario("dekker");
    let (seqlock, seqlock_tests) = scenario("seqlock");
    vec![
        InferCase {
            name: "lamport-L0-relaxed".into(),
            harness: lamport::harness(Variant::Unfenced),
            tests: vec![tests::by_name("L0").expect("catalog")],
            mode: Mode::Relaxed,
            config: InferConfig::default(),
        },
        InferCase {
            name: "treiber-U0-pso".into(),
            harness: treiber::harness(Variant::Unfenced),
            tests: vec![tests::by_name("U0").expect("catalog")],
            mode: Mode::Pso,
            config: InferConfig {
                procs: Some(vec!["push".into(), "pop".into()]),
                ..InferConfig::default()
            },
        },
        InferCase {
            name: format!("dekker-{}-relaxed", dekker_tests[0].name),
            harness: dekker,
            tests: dekker_tests,
            mode: Mode::Relaxed,
            config: InferConfig::default(),
        },
        InferCase {
            name: format!("seqlock-{}-relaxed", seqlock_tests[0].name),
            harness: seqlock,
            tests: seqlock_tests,
            mode: Mode::Relaxed,
            config: InferConfig::default(),
        },
    ]
}

struct CorpusCase {
    name: String,
    harness: Harness,
    tests: Vec<TestSpec>,
}

/// Two triage sweeps over synthesized lamport corpora. Both builds hold
/// tests that fail on *every* model while staying robust (two-producer
/// shapes break the SPSC contract even on SC), which exercises the FAIL
/// transfer — the verdict copy the model lattice can never make.
fn corpus_cases() -> Vec<CorpusCase> {
    [Variant::Fenced, Variant::Unfenced]
        .into_iter()
        .map(|variant| {
            let harness = lamport::harness(variant);
            let synthesized = synthesize(&harness.ops, &SynthBounds::new(2, 1));
            CorpusCase {
                name: format!("{}-2x1", harness.name),
                harness,
                tests: synthesized.tests,
            }
        })
        .collect()
}

fn corpus_side(report: &CorpusReport, wall_ms: f64) -> String {
    format!(
        "{{\"wall_ms\": {:.1}, \"encodes\": {}, \"solved\": {}, \"inferred\": {}, \
         \"triaged\": {}}}",
        wall_ms, report.encodes, report.queries, report.inferred, report.triaged,
    )
}

fn main() {
    let mut infer_rows = Vec::new();
    let mut big_reductions = 0usize;
    for case in infer_cases() {
        let t0 = Instant::now();
        let pruned = infer(&case.harness, &case.tests, case.mode, &case.config)
            .unwrap_or_else(|e| panic!("{} (pruned) fails: {e}", case.name));
        let pruned_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let full = infer(
            &case.harness,
            &case.tests,
            case.mode,
            &InferConfig {
                prune: false,
                ..case.config.clone()
            },
        )
        .unwrap_or_else(|e| panic!("{} (full) fails: {e}", case.name));
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        // The contract the pruning consumer rests on: identical
        // placements, strictly fewer (or equal) encoded candidates.
        assert_eq!(
            pruned.kept, full.kept,
            "{}: pruning changed the inferred placement",
            case.name
        );
        assert_eq!(pruned.candidates, full.candidates);
        if full.candidates_encoded >= 2 * pruned.candidates_encoded.max(1) {
            big_reductions += 1;
        }
        let reduction = full.candidates_encoded as f64 / pruned.candidates_encoded.max(1) as f64;
        let speedup = full_ms / pruned_ms.max(0.001);
        println!(
            "{:<16} candidates {:>3} -> encoded {:>3} ({reduction:.1}x fewer literals)  \
             kept {}  pruned {:>7.1} ms  full {:>7.1} ms  speedup {speedup:.2}x",
            case.name,
            full.candidates,
            pruned.candidates_encoded,
            pruned.kept.len(),
            pruned_ms,
            full_ms,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"candidates\": {}, \
             \"encoded\": {}, \"literal_reduction\": {:.2}, \"kept\": {}, \
             \"pruned\": {{\"wall_ms\": {:.1}, \"encodes\": {}}}, \
             \"full\": {{\"wall_ms\": {:.1}, \"encodes\": {}}}, \"speedup\": {:.3}}}",
            case.name,
            case.mode.name(),
            full.candidates,
            pruned.candidates_encoded,
            reduction,
            pruned.kept.len(),
            pruned_ms,
            pruned.encodes,
            full_ms,
            full.encodes,
            speedup,
        );
        infer_rows.push(row);
    }
    assert!(
        big_reductions >= 2,
        "expected >= 2 harnesses with a >= 2x encoded-candidate reduction, got {big_reductions}"
    );

    let mut corpus_rows = Vec::new();
    for case in corpus_cases() {
        let run_with = |static_triage: bool| {
            let config = CorpusConfig {
                static_triage,
                ..CorpusConfig::default()
            };
            let t0 = Instant::now();
            let report = run_corpus(&case.harness, &case.tests, &config);
            (report, t0.elapsed().as_secs_f64() * 1e3)
        };
        let (triage, triage_ms) = run_with(true);
        let (solver, solver_ms) = run_with(false);
        assert_eq!(
            triage.table(),
            solver.table(),
            "{}: triage changed a verdict cell",
            case.name
        );
        assert!(
            triage.triaged > 0,
            "{}: the triage sweep discharged nothing",
            case.name
        );
        let cells = triage.rows.len() * triage.model_names.len();
        let speedup = solver_ms / triage_ms.max(0.001);
        println!(
            "{:<16} cells {:>3}  triaged {:>3} (solver cells {:>3} -> {:>3})  \
             triage {:>7.1} ms  solver {:>7.1} ms  speedup {speedup:.2}x",
            case.name, cells, triage.triaged, solver.queries, triage.queries, triage_ms, solver_ms,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{}\", \"cells\": {}, \"triage\": {}, \"solver\": {}, \
             \"speedup\": {:.3}}}",
            case.name,
            cells,
            corpus_side(&triage, triage_ms),
            corpus_side(&solver, solver_ms),
            speedup,
        );
        corpus_rows.push(row);
    }

    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"benchmark\": \"critical_cycle_analysis\",\n  \
         \"infer_cases\": [\n{}\n  ],\n  \"corpus_cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        infer_rows.join(",\n"),
        corpus_rows.join(",\n")
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_cycles.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
