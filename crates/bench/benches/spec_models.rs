//! Compiled-spec benchmark: encode+solve cost of the bundled `.cfm`
//! models versus the built-in enum paths, on the Treiber stack and the
//! nonblocking queue.
//!
//! Run with `cargo bench -p cf-bench --bench spec_models`. Writes
//! `BENCH_spec.json` at the workspace root (override the path with
//! `CHECKFENCE_BENCH_OUT`): per case, wall time, CNF size and solver
//! work for both paths, plus the ratio. The acceptance target for the
//! spec subsystem is a compiled path within 2x of the enum path.
//!
//! Plain `main` (criterion is not vendored in this offline build); the
//! verdicts of both paths are asserted identical, so this doubles as an
//! equivalence check on the benchmark workloads.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::{Mode, ModeSet};
use cf_spec::bundled;
use checkfence::{CheckConfig, Engine, EngineConfig, Harness, ModelSel, Query, TestSpec};

struct Case {
    name: &'static str,
    harness: Harness,
    test: TestSpec,
    mode: Mode,
}

struct Measured {
    wall_ms: f64,
    passed: bool,
    sat_vars: usize,
    sat_clauses: u64,
    conflicts: u64,
    solves: u64,
}

fn run(case: &Case, use_spec: bool) -> Measured {
    let t0 = Instant::now();
    let config = if use_spec {
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::empty())
            .with_specs(vec![bundled::for_mode(case.mode)])
    } else {
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::single(case.mode))
    };
    let mut engine = Engine::new(config);
    let obs = checkfence::mine_reference(&case.harness, &case.test)
        .unwrap_or_else(|e| panic!("{}: mining fails: {e}", case.name))
        .spec;
    let sel = if use_spec {
        ModelSel::Spec(0)
    } else {
        ModelSel::Builtin(case.mode)
    };
    let v = engine
        .run(&Query::check_inclusion(&case.harness, &case.test, obs).on_model(sel))
        .unwrap_or_else(|e| panic!("{}: check fails: {e}", case.name));
    let sat = engine.solver_stats();
    Measured {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        passed: v.passed(),
        sat_vars: v.phase.sat_vars,
        sat_clauses: v.phase.sat_clauses,
        conflicts: sat.conflicts,
        solves: sat.solves,
    }
}

fn json_side(m: &Measured) -> String {
    format!(
        "{{\"wall_ms\": {:.1}, \"passed\": {}, \"sat_vars\": {}, \"sat_clauses\": {}, \
         \"conflicts\": {}, \"solves\": {}}}",
        m.wall_ms, m.passed, m.sat_vars, m.sat_clauses, m.conflicts, m.solves,
    )
}

fn main() {
    let cases = vec![
        Case {
            name: "treiber-U0-relaxed",
            harness: treiber::harness(Variant::Fenced),
            test: tests::by_name("U0").expect("catalog"),
            mode: Mode::Relaxed,
        },
        Case {
            name: "treiber-U0-unfenced-relaxed",
            harness: treiber::harness(Variant::Unfenced),
            test: tests::by_name("U0").expect("catalog"),
            mode: Mode::Relaxed,
        },
        Case {
            name: "ms2-T0-relaxed",
            harness: ms2::harness(Variant::Fenced),
            test: tests::by_name("T0").expect("catalog"),
            mode: Mode::Relaxed,
        },
        Case {
            name: "ms2-T0-pso",
            harness: ms2::harness(Variant::Fenced),
            test: tests::by_name("T0").expect("catalog"),
            mode: Mode::Pso,
        },
    ];

    let mut rows = Vec::new();
    println!(
        "{:<28} {:>10} {:>10} {:>7}  verdicts",
        "case", "enum ms", "spec ms", "ratio"
    );
    for case in &cases {
        let enum_path = run(case, false);
        let spec_path = run(case, true);
        assert_eq!(
            enum_path.passed, spec_path.passed,
            "{}: enum and spec verdicts diverge",
            case.name
        );
        let ratio = spec_path.wall_ms / enum_path.wall_ms.max(0.001);
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>6.2}x  {}",
            case.name,
            enum_path.wall_ms,
            spec_path.wall_ms,
            ratio,
            if enum_path.passed { "pass" } else { "fail" },
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "  {{\"case\": \"{}\", \"enum\": {}, \"spec\": {}, \"ratio\": {:.3}}}",
            case.name,
            json_side(&enum_path),
            json_side(&spec_path),
            ratio
        );
        rows.push(row);
    }

    let out_path = std::env::var("CHECKFENCE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_spec.json")
        });
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"benchmark\": \"spec_vs_builtin_models\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("benchmark record written");
    println!("\nrecorded {}", out_path.display());
}
