//! Synthesized-corpus throughput: what checking the whole bounded test
//! universe of a data type costs with and without `cf-synth`.
//!
//! * **one-shot** — the baseline a driver without the subsystem pays:
//!   every *generated* bounded shape (no symmetry reduction), each
//!   (shape, model) cell checked the way the hand-written results
//!   suites do — re-mine the reference spec, fresh single-model
//!   encoding, one solve;
//! * **engine batch** — `cf_synth::run_corpus` on the canonical corpus:
//!   thread-permutation symmetry reduction, one pooled session per
//!   harness encoding the whole hardware lattice, ladder rounds that
//!   solve weakest-first and fill stronger cells of passing tests by
//!   §2.3.3 inference, at `--jobs` 1 and 4.
//!
//! Run with `cargo bench -p cf-bench --bench synth`. Writes
//! `BENCH_synth.json` at the workspace root (override with
//! `CHECKFENCE_BENCH_OUT`). Asserts:
//!
//! * every generated shape's one-shot verdict row equals its canonical
//!   twin's engine verdict row (symmetry reduction and lattice
//!   inference change nothing but the cost);
//! * `encodes == sessions` on both engine paths;
//! * each subject's better engine series is at least 3x faster than
//!   one-shot, and the aggregate over all subjects at least 5x.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{ms2, treiber, Variant};
use cf_memmodel::Mode;
use cf_synth::{
    canonicalize, enumerate_ordered, run_corpus, synthesize, CorpusConfig, CorpusReport,
    CorpusVerdict, SynthBounds,
};
use checkfence::{mine_reference, CheckError, Harness, Query, TestSpec};

fn verdict_of(r: Result<bool, CheckError>) -> CorpusVerdict {
    match r {
        Ok(true) => CorpusVerdict::Pass,
        Ok(false) => CorpusVerdict::Fail,
        Err(CheckError::BoundsDiverged { .. }) => CorpusVerdict::Diverged,
        Err(e) => CorpusVerdict::Error(e.to_string()),
    }
}

/// The one-shot series over the full ordered (pre-reduction) universe:
/// re-mine and re-encode for every cell.
fn run_oneshot(h: &Harness, shapes: &[TestSpec]) -> (f64, Vec<Vec<CorpusVerdict>>) {
    let t0 = Instant::now();
    let mut rows = Vec::with_capacity(shapes.len());
    for test in shapes {
        let mut row = Vec::new();
        for &mode in &Mode::hardware() {
            let v = mine_reference(h, test).and_then(|m| {
                Query::check_inclusion(h, test, m.spec)
                    .on(mode)
                    .run()
                    .map(|v| v.passed())
            });
            row.push(verdict_of(v));
        }
        rows.push(row);
    }
    (t0.elapsed().as_secs_f64() * 1e3, rows)
}

/// The engine series: the corpus runner on the canonical corpus.
fn run_engine(h: &Harness, tests: &[TestSpec], jobs: usize) -> (f64, CorpusReport) {
    let config = CorpusConfig {
        jobs,
        ..CorpusConfig::default()
    };
    let t0 = Instant::now();
    let report = run_corpus(h, tests, &config);
    (t0.elapsed().as_secs_f64() * 1e3, report)
}

fn main() {
    let subjects: [(Harness, SynthBounds); 2] = [
        (
            treiber::harness(Variant::Fenced),
            SynthBounds::new(4, 1).with_init_ops(0),
        ),
        (
            ms2::harness(Variant::Fenced),
            SynthBounds::new(2, 2).with_init_ops(0),
        ),
    ];
    let mut rows = Vec::new();
    let (mut total_oneshot_ms, mut total_engine_ms) = (0.0f64, 0.0f64);
    for (h, bounds) in subjects {
        let name = h.name.clone();
        let ordered = enumerate_ordered(&h.ops, &bounds);
        let corpus = synthesize(&h.ops, &bounds);
        let cells = ordered.len() * Mode::hardware().len();

        let (oneshot_ms, oneshot) = run_oneshot(&h, &ordered);
        let (j1_ms, j1) = run_engine(&h, &corpus.tests, 1);
        let (j4_ms, j4) = run_engine(&h, &corpus.tests, 4);

        // Every ordered shape's verdicts must equal its canonical
        // twin's: symmetry reduction + lattice inference are cost
        // optimizations, not semantics changes.
        let canonical: BTreeMap<&str, &Vec<CorpusVerdict>> = j1
            .rows
            .iter()
            .map(|r| (r.test.name.as_str(), &r.verdicts))
            .collect();
        for (shape, row) in ordered.iter().zip(&oneshot) {
            let twin = canonicalize(shape);
            let engine_row = canonical[twin.name.as_str()];
            assert_eq!(
                row, engine_row,
                "{name}: verdicts of `{}` differ from its canonical twin `{}`",
                shape.name, twin.name
            );
        }
        for (a, b) in j1.rows.iter().zip(&j4.rows) {
            assert_eq!(a.verdicts, b.verdicts, "{name}: jobs=1 and jobs=4 differ");
        }
        assert_eq!(j1.encodes as usize, j1.sessions, "{name}: jobs=1 encodes");
        assert_eq!(j4.encodes as usize, j4.sessions, "{name}: jobs=4 encodes");
        assert_eq!(
            j1.sessions,
            corpus.tests.len(),
            "{name}: one session per harness"
        );

        let speedup_j1 = oneshot_ms / j1_ms.max(0.001);
        let speedup_j4 = oneshot_ms / j4_ms.max(0.001);
        let speedup = speedup_j1.max(speedup_j4);
        println!(
            "{name:<10} shapes {:>3} -> {:>3} canonical, cells {cells:>4}  oneshot \
             {oneshot_ms:>8.1} ms  engine j1 {j1_ms:>7.1} ms (encodes {}, inferred {})  \
             engine j4 {j4_ms:>7.1} ms  best speedup {speedup:.2}x",
            ordered.len(),
            corpus.tests.len(),
            j1.encodes,
            j1.inferred,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{name}\", \"generated\": {}, \"canonical\": {}, \
             \"cells\": {cells}, \
             \"oneshot\": {{\"wall_ms\": {oneshot_ms:.1}}}, \
             \"engine_jobs1\": {{\"wall_ms\": {j1_ms:.1}, \"sessions\": {}, \
             \"encodes\": {}, \"solved\": {}, \"inferred\": {}}}, \
             \"engine_jobs4\": {{\"wall_ms\": {j4_ms:.1}, \"sessions\": {}, \
             \"encodes\": {}}}, \
             \"speedup\": {speedup:.3}}}",
            ordered.len(),
            corpus.tests.len(),
            j1.sessions,
            j1.encodes,
            j1.queries,
            j1.inferred,
            j4.sessions,
            j4.encodes,
        );
        rows.push(row);
        total_oneshot_ms += oneshot_ms;
        total_engine_ms += j1_ms.min(j4_ms);
        assert!(
            speedup >= 3.0,
            "{name}: the synthesized corpus on the pooled engine must be >= 3x faster \
             than the per-harness one-shot path (got {speedup:.2}x)"
        );
    }

    let overall = total_oneshot_ms / total_engine_ms.max(0.001);
    println!("overall speedup {overall:.2}x (target 5x)");
    assert!(
        overall >= 5.0,
        "synthesized-corpus throughput on the pooled engine must be >= 5x the \
         per-harness one-shot path overall (got {overall:.2}x)"
    );

    let json = format!(
        "{{\n  \"schema_version\": {schema},\n  \
         \"benchmark\": \"synth_corpus_throughput\",\n  \"target_speedup\": 5.0,\n  \
         \"overall\": {{\"oneshot_wall_ms\": {total_oneshot_ms:.1}, \
         \"engine_wall_ms\": {total_engine_ms:.1}, \"speedup\": {overall:.3}}},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        schema = cf_trace::SCHEMA_VERSION
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_synth.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
