//! Fig. 11 — specification mining characterization.
//!
//! * (a) observation-set size against enumeration time, for SAT-based
//!   mining and for the reference-implementation fast path (the paper's
//!   `refset` series, which is roughly an order of magnitude faster);
//! * (b) the average breakdown of total runtime into specification
//!   mining, encoding, and SAT refutation (paper: 38% / 29% / 33%);
//! * (c) the impact of disabling the range analysis on total runtime
//!   (paper: ≈42% average slowdown without it).

use std::time::Duration;

use cf_algos::{refmodel, Shape};
use cf_bench::{secs, workloads};
use checkfence::Checker;
use cf_memmodel::Mode;

fn main() {
    println!("Fig. 11a: observation set size vs enumeration time");
    println!(
        "{:<10} {:>6} {:>6} | {:>10} {:>10} {:>10}",
        "impl", "test", "|S|", "sat[s]", "interp[s]", "refset[s]"
    );
    let mut mine_total = Duration::ZERO;
    let mut encode_total = Duration::ZERO;
    let mut solve_total = Duration::ZERO;
    let mut with_range = Vec::new();
    let mut without_range = Vec::new();
    for w in workloads() {
        let checker = Checker::new(&w.harness, &w.test).with_memory_model(Mode::Relaxed);
        // SAT-based mining (paper's default path).
        let sat = checker.mine_spec();
        // Interpreter enumeration of the same compiled implementation.
        let interp = checker.mine_spec_reference();
        // Rust reference model ("refset").
        let shape = w.algo.shape();
        let t0 = std::time::Instant::now();
        let refset = refmodel::mine(shape_of(shape), &w.test);
        let ref_time = t0.elapsed();
        match (&sat, &interp) {
            (Ok(s), Ok(i)) => {
                assert_eq!(s.spec, i.spec, "mining paths disagree");
                assert_eq!(s.spec, refset, "reference model disagrees");
                println!(
                    "{:<10} {:>6} {:>6} | {:>10} {:>10} {:>10}",
                    w.algo.name(),
                    w.test.name,
                    s.spec.len(),
                    secs(s.stats.total_time),
                    secs(i.stats.total_time),
                    secs(ref_time)
                );
                mine_total += s.stats.total_time;
            }
            _ => {
                println!("{:<10} {:>6}: mining failed", w.algo.name(), w.test.name);
                continue;
            }
        }
        // (b): inclusion encoding + refutation on the same workload.
        let spec = interp.expect("checked above").spec;
        if let Ok(r) = checker.check_inclusion(&spec) {
            encode_total += r.stats.encode_time;
            solve_total += r.stats.solve_time;
            with_range.push(r.stats.total_time);
        }
        // (c): range analysis disabled.
        let no_range = Checker::new(&w.harness, &w.test)
            .with_memory_model(Mode::Relaxed)
            .with_range_analysis(false);
        if let Ok(r) = no_range.check_inclusion(&spec) {
            without_range.push(r.stats.total_time);
        }
    }

    let total = mine_total + encode_total + solve_total;
    println!("\nFig. 11b: average runtime breakdown");
    if !total.is_zero() {
        let pct = |d: Duration| 100.0 * d.as_secs_f64() / total.as_secs_f64();
        println!("  specification mining : {:5.1}%  (paper: 38%)", pct(mine_total));
        println!("  CNF encoding         : {:5.1}%  (paper: 29%)", pct(encode_total));
        println!("  SAT refutation       : {:5.1}%  (paper: 33%)", pct(solve_total));
    }

    println!("\nFig. 11c: impact of range analysis on inclusion-check time");
    println!("{:>4} {:>12} {:>15} {:>8}", "#", "with[s]", "without[s]", "ratio");
    let mut ratios = Vec::new();
    for (i, (w, wo)) in with_range.iter().zip(&without_range).enumerate() {
        let ratio = wo.as_secs_f64() / w.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!("{:>4} {:>12} {:>15} {:>7.2}x", i, secs(*w), secs(*wo), ratio);
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("average slowdown without range analysis: {avg:.2}x (paper: ~1.42x)");
    }
}

fn shape_of(s: Shape) -> Shape {
    s
}
