//! Fence-inference benchmark: incremental sessions vs. the per-candidate
//! baseline, on the Treiber stack and the two-lock queue.
//!
//! Run with `cargo bench -p cf-bench --bench infer_session`. Writes
//! `BENCH_infer.json` at the workspace root (override the path with
//! `CHECKFENCE_BENCH_OUT`) recording wall time and SAT statistics for
//! both paths, so the perf trajectory is tracked across PRs.
//!
//! This is a plain `main` (criterion is not vendored in this offline
//! build); each case runs both paths once — the workloads are large
//! enough that run-to-run noise is far below the session-vs-baseline
//! gap being measured.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::{ms2, tests, treiber, Variant};
use cf_lsl::FenceKind;
use cf_memmodel::Mode;
use checkfence::infer::{infer, infer_baseline, InferConfig, InferenceResult};
use checkfence::TestSpec;

struct Case {
    name: &'static str,
    harness: checkfence::Harness,
    tests: Vec<TestSpec>,
    mode: Mode,
    config: InferConfig,
}

struct Measured {
    wall_ms: f64,
    result: InferenceResult,
}

fn run(case: &Case, baseline: bool) -> Measured {
    let t0 = Instant::now();
    let result = if baseline {
        infer_baseline(&case.harness, &case.tests, case.mode, &case.config)
    } else {
        infer(&case.harness, &case.tests, case.mode, &case.config)
    }
    .unwrap_or_else(|e| panic!("{} ({}) fails: {e}", case.name, path_name(baseline)));
    Measured {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        result,
    }
}

fn path_name(baseline: bool) -> &'static str {
    if baseline {
        "baseline"
    } else {
        "session"
    }
}

fn json_side(m: &Measured) -> String {
    format!(
        "{{\"wall_ms\": {:.1}, \"symexecs\": {}, \"encodes\": {}, \"solves\": {}, \
         \"conflicts\": {}, \"propagations\": {}}}",
        m.wall_ms,
        m.result.symexecs,
        m.result.encodes,
        m.result.sat.solves,
        m.result.sat.conflicts,
        m.result.sat.propagations,
    )
}

fn main() {
    let cases = vec![
        Case {
            name: "treiber-U0-relaxed",
            harness: treiber::harness(Variant::Unfenced),
            tests: vec![tests::by_name("U0").expect("catalog")],
            mode: Mode::Relaxed,
            config: InferConfig {
                kinds: vec![FenceKind::LoadLoad, FenceKind::StoreStore],
                procs: Some(vec!["push".into(), "pop".into()]),
                ..InferConfig::default()
            },
        },
        Case {
            name: "ms2-T0-pso",
            harness: ms2::harness(Variant::Unfenced),
            tests: vec![tests::by_name("T0").expect("catalog")],
            mode: Mode::Pso,
            config: InferConfig {
                kinds: vec![FenceKind::StoreStore],
                procs: Some(vec!["enqueue".into(), "dequeue".into()]),
                ..InferConfig::default()
            },
        },
    ];

    let mut rows = Vec::new();
    for case in &cases {
        let session = run(case, false);
        let baseline = run(case, true);
        assert_eq!(
            session.result.kept, baseline.result.kept,
            "{}: session and baseline must infer the same placement",
            case.name
        );
        let speedup = baseline.wall_ms / session.wall_ms.max(0.001);
        println!(
            "{:<20} candidates {:>3}  checks {:>3}  kept {}  session {:>8.1} ms \
             (encodes {:>2})  baseline {:>8.1} ms (encodes {:>3})  speedup {:.2}x",
            case.name,
            session.result.candidates,
            session.result.checks,
            session.result.kept.len(),
            session.wall_ms,
            session.result.encodes,
            baseline.wall_ms,
            baseline.result.encodes,
            speedup,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"candidates\": {}, \"checks\": {}, \
             \"kept\": {}, \"session\": {}, \"baseline\": {}, \"speedup\": {:.3}}}",
            case.name,
            case.mode.name(),
            session.result.candidates,
            session.result.checks,
            session.result.kept.len(),
            json_side(&session),
            json_side(&baseline),
            speedup,
        );
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"benchmark\": \"fence_inference_sessions\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        rows.join(",\n")
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_infer.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
