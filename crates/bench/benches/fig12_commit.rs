//! Fig. 12 — observation-set method vs commit-point method.
//!
//! Runs both verification methods on the queue implementations (the
//! commit-point method requires annotations and an abstract machine; the
//! queues carry `commit(...)` markers). The paper reports an average
//! speedup of 2.61x for the observation-set method; the qualitative
//! points reproduced here are that the observation-set method needs no
//! annotations and applies to all five implementations, while the
//! commit-point method does not (the lazy list's `contains` has no
//! commit point, paper §5).
//!
//! The comparison runs under sequential consistency: under Relaxed, the
//! model's relaxation (5) — speculation past data dependences — lets a
//! commit *store* perform globally before the load it depends on, so the
//! commit order no longer witnesses a linearization and the commit-point
//! method raises false alarms that the observation-set method correctly
//! avoids (see EXPERIMENTS.md). That brittleness is part of why the
//! paper's method supersedes it.

use cf_algos::{ms2, msn, tests, Variant};
use cf_bench::secs;
use checkfence::{commit::AbstractType, Checker};
use cf_memmodel::Mode;

fn main() {
    println!("Fig. 12: runtime comparison (queue tests, memory model: SC)");
    println!(
        "{:<10} {:>6} | {:>12} {:>12} {:>9} | agree",
        "impl", "test", "obs-set[s]", "commit[s]", "ratio"
    );
    let cases = [
        ("ms2", ms2::harness(Variant::Fenced)),
        ("msn", msn::harness(Variant::Fenced)),
    ];
    let test_names = if std::env::var("CHECKFENCE_FULL").is_ok_and(|v| v == "1") {
        vec!["T0", "Ti2", "Tpc2"]
    } else {
        vec!["T0", "Ti2"]
    };
    for (name, harness) in &cases {
        for tn in &test_names {
            let t = tests::by_name(tn).expect("catalog test");
            let checker = Checker::new(harness, &t).with_memory_model(Mode::Sc);
            // Observation-set method: SAT mining + inclusion.
            let t0 = std::time::Instant::now();
            let obs_result = checker
                .mine_spec()
                .and_then(|m| checker.check_inclusion(&m.spec));
            let obs_time = t0.elapsed();
            // Commit-point method: single query.
            let t1 = std::time::Instant::now();
            let commit_result = checker.check_commit_method(AbstractType::Queue);
            let commit_time = t1.elapsed();
            match (obs_result, commit_result) {
                (Ok(o), Ok(c)) => {
                    let ratio = obs_time.as_secs_f64() / commit_time.as_secs_f64().max(1e-9);
                    println!(
                        "{:<10} {:>6} | {:>12} {:>12} {:>8.2}x | {}",
                        name,
                        tn,
                        secs(obs_time),
                        secs(commit_time),
                        ratio,
                        if o.outcome.passed() == c.outcome.passed() {
                            "yes"
                        } else {
                            "NO (methods disagree!)"
                        }
                    );
                }
                (o, c) => println!(
                    "{:<10} {:>6} | error: obs={:?} commit={:?}",
                    name,
                    tn,
                    o.err().map(|e| e.to_string()),
                    c.err().map(|e| e.to_string())
                ),
            }
        }
    }
    println!(
        "\nNote: the lazy list has no commit points (paper §5) — only the\n\
         observation-set method can verify it; see fig10 for its rows."
    );
}
