//! Reproduction extensions beyond the paper's figures:
//!
//! * **solver feature ablation** — which CDCL ingredients (restarts,
//!   phase saving, VSIDS, clause-DB reduction) the inclusion checks
//!   actually rely on (the paper treats zChaff as a black box);
//! * **memory-model sweep** — inclusion-check outcome and runtime across
//!   SC / TSO / PSO / Relaxed, extending the paper's §4.4 SC-vs-Relaxed
//!   comparison and making the §4.2 architecture remark measurable;
//! * **Treiber stack extension** — Table-1-style inventory row and the
//!   model sweep for the sixth data type;
//! * **Lamport SPSC extension** — the fence-free ring buffer whose
//!   repair needs all three fence kinds (including the load-store
//!   fence none of the paper's five algorithms required).

use std::time::Instant;

use cf_algos::{fences, lamport, msn, tests, treiber, Variant};
use cf_bench::secs;
use checkfence::infer::{infer, InferConfig};
use checkfence::{Checker, Harness, TestSpec};
use cf_memmodel::Mode;
use cf_sat::SolverConfig;

fn main() {
    model_sweep();
    treiber_extension();
    lamport_extension();
    solver_ablation();
}

/// Outcome of one budgeted inclusion check.
enum Run {
    Done { passed: bool, secs: f64 },
    Budget,
}

fn check_time(h: &Harness, t: &TestSpec, mode: Mode, config: SolverConfig) -> Run {
    let spec = Checker::new(h, t)
        .mine_spec_reference()
        .expect("mines")
        .spec;
    let mut c = Checker::new(h, t).with_memory_model(mode);
    c.config.solver_config = config;
    // Weak configurations (e.g. no VSIDS) can be orders of magnitude
    // slower; cap them so the ablation terminates. No retry ladder:
    // a blown budget should report as such, not re-run 8x larger.
    c.config.conflict_budget = Some(100_000);
    c.config.max_retries = 0;
    let t0 = Instant::now();
    match c.check_inclusion(&spec) {
        Ok(r) => Run::Done {
            passed: r.outcome.passed(),
            secs: t0.elapsed().as_secs_f64(),
        },
        Err(checkfence::CheckError::Exhausted(_)) => Run::Budget,
        Err(e) => panic!("{e}"),
    }
}

/// Which solver features matter for refuting the inclusion formulas.
fn solver_ablation() {
    println!("Ablation: SAT solver features (msn/Ti2 inclusion check, Relaxed)");
    println!("{:<24} {:>12} {:>8}", "configuration", "total[s]", "pass");
    let h = msn::harness(Variant::Fenced);
    let t = tests::by_name("Ti2").expect("catalog");
    let all = SolverConfig::default();
    let configs: [(&str, SolverConfig); 6] = [
        ("all features", all),
        ("no restarts", SolverConfig { restarts: false, ..all }),
        ("no phase saving", SolverConfig { phase_saving: false, ..all }),
        ("no VSIDS", SolverConfig { vsids: false, ..all }),
        ("no DB reduction", SolverConfig { db_reduction: false, ..all }),
        (
            "none (plain DPLL+CL)",
            SolverConfig {
                restarts: false,
                phase_saving: false,
                vsids: false,
                db_reduction: false,
            },
        ),
    ];
    for (name, config) in configs {
        match check_time(&h, &t, Mode::Relaxed, config) {
            Run::Done { passed, secs } => println!(
                "{:<24} {:>12.3} {:>8}",
                name,
                secs,
                if passed { "yes" } else { "NO!" }
            ),
            Run::Budget => println!("{:<24} {:>12} {:>8}", name, "> budget", "-"),
        }
    }
    println!();
}

/// Outcome and runtime across the model chain, per fence configuration
/// of msn. TSO passes unfenced; PSO needs the store-store placements;
/// Relaxed needs all of Fig. 9.
fn model_sweep() {
    println!("Model sweep: msn builds x {{sc, tso, pso, relaxed}} (test T0)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "build", "sc", "tso", "pso", "relaxed"
    );
    let builds: [(&str, Harness); 4] = [
        ("unfenced", msn::harness(Variant::Unfenced)),
        ("ss-only", msn::harness_with_kinds(false, true)),
        ("ll-only", msn::harness_with_kinds(true, false)),
        ("full (Fig. 9)", msn::harness(Variant::Fenced)),
    ];
    let t = tests::by_name("T0").expect("catalog");
    for (name, h) in &builds {
        let mut cells = Vec::new();
        for mode in Mode::hardware() {
            match check_time(h, &t, mode, SolverConfig::default()) {
                Run::Done { passed, secs } => cells.push(format!(
                    "{} {}",
                    if passed { "pass" } else { "FAIL" },
                    format_args!("{secs:.2}s")
                )),
                Run::Budget => cells.push("budget".into()),
            }
        }
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!();
}

/// The Treiber stack: inventory row, model sweep and fence inference.
fn treiber_extension() {
    println!("Extension: Treiber stack (sixth data type)");
    let h = treiber::harness(Variant::Fenced);
    println!(
        "  inventory: {} procs, {} stmts, {} fences",
        h.program.procedures.len(),
        h.program.num_stmts(),
        fences::fence_sites(&h.program).len()
    );
    let u0 = tests::by_name("U0").expect("catalog");
    let ui2 = tests::by_name("Ui2").expect("catalog");
    for (name, build) in [
        ("unfenced", treiber::harness(Variant::Unfenced)),
        ("fenced", treiber::harness(Variant::Fenced)),
    ] {
        let mut cells = Vec::new();
        for mode in Mode::hardware() {
            match check_time(&build, &u0, mode, SolverConfig::default()) {
                Run::Done { passed, secs } => cells.push(format!(
                    "{}={} ({secs:.2}s)",
                    mode.name(),
                    if passed { "pass" } else { "FAIL" }
                )),
                Run::Budget => cells.push(format!("{}=budget", mode.name())),
            }
        }
        println!("  {name:<9} U0: {}", cells.join("  "));
    }
    // Fence inference on the unfenced build against both stack tests.
    let unfenced = treiber::harness(Variant::Unfenced);
    let config = InferConfig {
        kinds: vec![cf_lsl::FenceKind::LoadLoad, cf_lsl::FenceKind::StoreStore],
        procs: Some(vec!["push".into(), "pop".into()]),
        ..InferConfig::default()
    };
    let t0 = Instant::now();
    let r = infer(&unfenced, &[u0, ui2], Mode::Relaxed, &config).expect("inference");
    println!(
        "  inference: kept {} of {} candidates in {} checks, {}s",
        r.kept.len(),
        r.candidates,
        r.checks,
        secs(t0.elapsed())
    );
    for site in &r.kept {
        println!("    keep {site}");
    }
    println!();
}

/// Lamport's SPSC ring buffer: per-kind fence builds across the models.
fn lamport_extension() {
    println!("Extension: Lamport SPSC queue (seventh data type)");
    let fenced = lamport::harness(Variant::Fenced);
    println!(
        "  inventory: {} procs, {} stmts, {} fences (2 ll + 1 ss + 2 ls)",
        fenced.program.procedures.len(),
        fenced.program.num_stmts(),
        fences::fence_sites(&fenced.program).len()
    );
    let full = std::env::var("CHECKFENCE_FULL").is_ok_and(|v| v == "1");
    let tn = if full { "Lpc3" } else { "Lpc2" };
    let t = tests::by_name(tn).expect("catalog");
    println!(
        "  builds x models on {tn} (capacity 1; Lpc3 adds the wrap-around — \
         set CHECKFENCE_FULL=1):"
    );
    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>10}",
        "build", "sc", "tso", "pso", "relaxed"
    );
    let builds: [(&str, Harness); 4] = [
        ("unfenced", lamport::harness(Variant::Unfenced)),
        ("ss-only", lamport::harness_with_kinds(false, true, false)),
        ("ss+ll", lamport::harness_with_kinds(true, true, false)),
        ("ss+ll+ls (full)", lamport::harness(Variant::Fenced)),
    ];
    for (name, h) in &builds {
        let mut cells = Vec::new();
        for mode in Mode::hardware() {
            match check_time(h, &t, mode, SolverConfig::default()) {
                Run::Done { passed, secs } => cells.push(format!(
                    "{} {}",
                    if passed { "pass" } else { "FAIL" },
                    format_args!("{secs:.2}s")
                )),
                Run::Budget => cells.push("budget".into()),
            }
        }
        println!(
            "  {:<16} {:>10} {:>10} {:>10} {:>10}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
}
