//! Fig. 10 — inclusion check statistics.
//!
//! For each implementation × test, prints the paper's columns: unrolled
//! code size (instrs / loads / stores), encoding time, CNF size
//! (variables / clauses), solver refutation time, and total time. The
//! right-hand charts of Fig. 10 (time and memory against the number of
//! memory accesses in the unrolled code) are emitted as CSV to stdout.
//!
//! Absolute numbers differ from the paper (different solver, different
//! host); the reproduced *shape* is the sharp growth of solver time with
//! unrolled memory accesses.

use cf_bench::{secs, workloads};
use checkfence::Checker;
use cf_memmodel::Mode;

fn main() {
    println!("Fig. 10: inclusion check statistics (memory model: Relaxed)");
    println!(
        "{:<10} {:>6} | {:>6} {:>6} {:>7} | {:>8} {:>9} {:>9} | {:>8} {:>8}",
        "impl", "test", "instrs", "loads", "stores", "enc[s]", "vars", "clauses", "sat[s]", "tot[s]"
    );
    let mut csv = String::from("impl,test,accesses,solve_s,vars,clauses\n");
    for w in workloads() {
        let checker = Checker::new(&w.harness, &w.test).with_memory_model(Mode::Relaxed);
        let spec = match checker.mine_spec_reference() {
            Ok(m) => m.spec,
            Err(e) => {
                println!("{:<10} {:>6} | mining failed: {e}", w.algo.name(), w.test.name);
                continue;
            }
        };
        match checker.check_inclusion(&spec) {
            Ok(r) => {
                let s = &r.stats;
                let accesses = s.unrolled.loads + s.unrolled.stores;
                println!(
                    "{:<10} {:>6} | {:>6} {:>6} {:>7} | {:>8} {:>9} {:>9} | {:>8} {:>8}  {}",
                    w.algo.name(),
                    w.test.name,
                    s.unrolled.instrs,
                    s.unrolled.loads,
                    s.unrolled.stores,
                    secs(s.encode_time),
                    s.sat_vars,
                    s.sat_clauses,
                    secs(s.solve_time),
                    secs(s.total_time),
                    if r.outcome.passed() { "PASS" } else { "FAIL" },
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    w.algo.name(),
                    w.test.name,
                    accesses,
                    s.solve_time.as_secs_f64(),
                    s.sat_vars,
                    s.sat_clauses
                ));
            }
            Err(e) => println!(
                "{:<10} {:>6} | check failed: {e}",
                w.algo.name(),
                w.test.name
            ),
        }
    }
    println!("\nFig. 10 charts (CSV: solver effort vs unrolled memory accesses):");
    print!("{csv}");
}
