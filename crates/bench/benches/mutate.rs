//! Batched-mutation benchmark: the Fig. 11 mutant matrix answered by
//! one incremental session vs. the per-mutant one-shot oracle, on the
//! Treiber stack and the two-lock queue.
//!
//! Run with `cargo bench -p cf-bench --bench mutate`. Writes
//! `BENCH_mutate.json` at the workspace root (override the path with
//! `CHECKFENCE_BENCH_OUT`) recording wall time, amortization counters
//! and SAT statistics for both paths. The session path must answer the
//! whole (mutant × model) matrix from one symbolic execution and one
//! encoding, land on identical verdicts, and beat the oracle by ≥ 10x.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cf_algos::ablation::{run_ablation, Oracle};
use checkfence::mutate::MutationReport;

struct Measured {
    wall_ms: f64,
    reports: Vec<MutationReport>,
}

fn run(subject: &str, oracle: Oracle) -> Measured {
    let t0 = Instant::now();
    let outcome = run_ablation(subject, &[], oracle, 1)
        .unwrap_or_else(|e| panic!("{subject} ({oracle:?}) fails: {e}"));
    Measured {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        reports: outcome.reports,
    }
}

fn totals(m: &Measured) -> (u32, u32, u64, u64, usize, usize) {
    let mut symexecs = 0;
    let mut encodes = 0;
    let mut solves = 0;
    let mut conflicts = 0;
    let mut mutants = 0;
    let mut cells = 0;
    for r in &m.reports {
        symexecs += r.session.symexecs;
        encodes += r.session.encodes;
        solves += r.solver.solves;
        conflicts += r.solver.conflicts;
        mutants += r.rows.len();
        cells += (r.rows.len() + 1) * r.models.len();
    }
    (symexecs, encodes, solves, conflicts, mutants, cells)
}

fn json_side(m: &Measured) -> String {
    let (symexecs, encodes, solves, conflicts, _, _) = totals(m);
    format!(
        "{{\"wall_ms\": {:.1}, \"symexecs\": {symexecs}, \"encodes\": {encodes}, \
         \"solves\": {solves}, \"conflicts\": {conflicts}}}",
        m.wall_ms,
    )
}

fn main() {
    let mut rows = Vec::new();
    for subject in ["treiber", "ms2"] {
        let session = run(subject, Oracle::Session);
        let oneshot = run(subject, Oracle::Oneshot);
        // Cell-for-cell verdict equivalence between the two paths.
        for (s, o) in session.reports.iter().zip(&oneshot.reports) {
            assert_eq!(s.baseline, o.baseline, "{subject}: baselines disagree");
            for (a, b) in s.rows.iter().zip(&o.rows) {
                assert_eq!(
                    a.verdicts, b.verdicts,
                    "{subject}: verdicts disagree on mutant {} ({})",
                    a.point, a.description
                );
            }
        }
        // The headline claim: one symbolic execution + one encoding per
        // (test, model-universe) answers the entire matrix.
        for r in &session.reports {
            assert_eq!(r.session.symexecs, 1, "{subject}/{}", r.test);
            assert_eq!(r.session.encodes, 1, "{subject}/{}", r.test);
        }
        let speedup = oneshot.wall_ms / session.wall_ms.max(0.001);
        let (_, s_enc, _, _, mutants, cells) = totals(&session);
        let (_, o_enc, _, _, _, _) = totals(&oneshot);
        println!(
            "{subject:<10} mutants {mutants:>3}  cells {cells:>4}  session {:>8.1} ms \
             (encodes {s_enc:>2})  oneshot {:>8.1} ms (encodes {o_enc:>3})  speedup {speedup:.2}x",
            session.wall_ms, oneshot.wall_ms,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\"name\": \"{subject}\", \"mutants\": {mutants}, \"cells\": {cells}, \
             \"session\": {}, \"oneshot\": {}, \"speedup\": {speedup:.3}}}",
            json_side(&session),
            json_side(&oneshot),
        );
        rows.push(row);
        assert!(
            speedup >= 10.0,
            "{subject}: the batched matrix must be >= 10x faster than the \
             one-shot oracle (got {speedup:.2}x)"
        );
    }

    let json = format!(
        "{{\n  \"schema_version\": {},\n  \
         \"benchmark\": \"batched_mutation_matrix\",\n  \"target_speedup\": 10.0,\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cf_trace::SCHEMA_VERSION,
        rows.join(",\n")
    );
    let out = std::env::var("CHECKFENCE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_mutate.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
