//! Shared plumbing for the paper-reproduction benchmarks.
//!
//! Each bench target regenerates one table or figure of the CheckFence
//! paper (see DESIGN.md §5 for the index). The helpers here select the
//! implementation/test matrix and format rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cf_algos::{tests, Algo, Variant};
use checkfence::{Harness, TestSpec};

/// One (implementation, test) cell of the evaluation matrix.
pub struct Workload {
    /// Implementation mnemonic (paper Table 1).
    pub algo: Algo,
    /// The harness (fenced build).
    pub harness: Harness,
    /// The symbolic test.
    pub test: TestSpec,
}

/// The default evaluation matrix: small and medium catalog tests per
/// implementation. Set `CHECKFENCE_FULL=1` to include the larger tests
/// (several minutes of solving).
pub fn workloads() -> Vec<Workload> {
    let full = std::env::var("CHECKFENCE_FULL").is_ok_and(|v| v == "1");
    let mut out = Vec::new();
    let pick = |names: &[&str]| -> Vec<TestSpec> {
        names
            .iter()
            .map(|n| tests::by_name(n).expect("catalog test"))
            .collect()
    };
    let matrix: Vec<(Algo, Vec<TestSpec>)> = vec![
        (
            Algo::Ms2,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3", "T1"])
            } else {
                pick(&["T0", "Ti2", "Tpc2"])
            },
        ),
        (
            Algo::Msn,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3"])
            } else {
                pick(&["T0", "Ti2"])
            },
        ),
        (
            Algo::Lazylist,
            if full {
                pick(&["Sac", "Sar", "Saa"])
            } else {
                pick(&["Sac"])
            },
        ),
        (
            Algo::Harris,
            if full {
                pick(&["Sac", "Sar"])
            } else {
                pick(&["Sac"])
            },
        ),
        (
            Algo::Snark,
            if full {
                pick(&["D0", "Da", "Db"])
            } else {
                pick(&["D0"])
            },
        ),
    ];
    for (algo, tests) in matrix {
        for test in tests {
            out.push(Workload {
                algo,
                harness: algo.harness(Variant::Fenced),
                test,
            });
        }
    }
    out
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

pub mod parallel {
    //! Parallel evaluation driver: fans the (implementation, test) × mode
    //! matrix out across the query engine's worker threads, pooled
    //! sessions per (implementation, test) cell.
    //!
    //! Each cell mines its specification once (reference interpreter) and
    //! then answers every requested memory model as one
    //! [`checkfence::Query`] on the shared [`checkfence::Engine`] — the
    //! batch is sharded across `jobs` workers by the engine itself.
    //! [`run_indexed`] remains as
    //! the generic fan-out helper for work the engine does not cover
    //! (the toolchain is offline, so no rayon; the pattern is identical).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    use cf_memmodel::{Mode, ModeSet};
    use checkfence::{CheckConfig, Engine, EngineConfig, ModelSel, ObsSet, Query};

    use crate::Workload;

    /// One verdict of the evaluation matrix.
    #[derive(Clone, Debug)]
    pub struct CellResult {
        /// Implementation mnemonic.
        pub algo: &'static str,
        /// Test name.
        pub test: String,
        /// Memory model checked.
        pub mode: Mode,
        /// Whether the inclusion check passed.
        pub passed: bool,
        /// Infrastructure error, if the check could not run.
        pub error: Option<String>,
        /// Wall-clock time of this cell's query.
        pub elapsed: Duration,
    }

    /// Outcome of a matrix run.
    #[derive(Debug)]
    pub struct MatrixReport {
        /// Per-(cell, mode) verdicts, in deterministic matrix order.
        pub cells: Vec<CellResult>,
        /// Sessions created (= workloads; each answers all modes).
        pub sessions: usize,
        /// End-to-end wall-clock time.
        pub elapsed: Duration,
    }

    /// Runs `n` independent jobs on up to `jobs` worker threads (an
    /// atomic work queue over scoped threads) and returns the results in
    /// index order. Shared by [`run_matrix`] and the `checkfence --jobs`
    /// CLI fan-out.
    pub fn run_indexed<R: Send>(jobs: usize, n: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..jobs.clamp(1, n.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = work(i);
                    results.lock().expect("no poisoned worker").push((i, r));
                });
            }
        });
        let mut indexed = results.into_inner().expect("workers joined");
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// One cell of the shared grid runner: (passed, query wall time) or
    /// the error string that stopped the cell.
    type GridCell = Result<(bool, Duration), String>;

    /// The shared grid body behind [`run_matrix`] and
    /// [`run_matrix_with_specs`]: mines every workload's specification
    /// on `jobs` worker threads ([`run_indexed`] — reference-interpreter
    /// mining never touches the engine), then answers the workload ×
    /// model grid as one engine batch. Cells come back row-major by
    /// workload; the second value is the engine's pooled session count.
    fn run_grid(
        workloads: &[Workload],
        models: &[ModelSel],
        universe: ModeSet,
        specs: &[cf_spec::ModelSpec],
        jobs: usize,
    ) -> (Vec<GridCell>, usize) {
        let mined: Vec<Result<ObsSet, String>> = run_indexed(jobs, workloads.len(), |i| {
            checkfence::mine_reference(&workloads[i].harness, &workloads[i].test)
                .map(|m| m.spec)
                .map_err(|e| e.to_string())
        });
        let config = EngineConfig::from_check_config(&CheckConfig::default(), universe)
            .with_specs(specs.to_vec())
            .with_jobs(jobs);
        let mut engine = Engine::new(config);
        let mut queries = Vec::new();
        let mut slots: Vec<usize> = Vec::new(); // grid index per query
        let mut grid: Vec<GridCell> = Vec::with_capacity(workloads.len() * models.len());
        for (w, spec) in workloads.iter().zip(&mined) {
            // One base query per workload; cells clone it (Arc-shared
            // spec) and retarget the model axis.
            let base = spec
                .as_ref()
                .map(|s| Query::check_inclusion(&w.harness, &w.test, s.clone()));
            for &sel in models {
                match &base {
                    Ok(b) => {
                        slots.push(grid.len());
                        queries.push(b.clone().on_model(sel));
                        grid.push(Err("unanswered".into()));
                    }
                    Err(e) => grid.push(Err((*e).clone())),
                }
            }
        }
        for (slot, verdict) in slots.into_iter().zip(engine.run_batch(&queries)) {
            grid[slot] = verdict
                .map(|v| (v.passed(), v.stats.wall))
                .map_err(|e| e.to_string());
        }
        (grid, engine.stats().sessions)
    }

    /// Runs every workload × mode through one engine batch on `jobs`
    /// worker threads and returns the verdicts in deterministic
    /// (workload, mode) order.
    pub fn run_matrix(workloads: &[Workload], modes: &[Mode], jobs: usize) -> MatrixReport {
        let t0 = Instant::now();
        let mode_set: ModeSet = modes.iter().copied().collect();
        let models: Vec<ModelSel> = modes.iter().map(|&m| ModelSel::Builtin(m)).collect();
        let (grid, sessions) = run_grid(workloads, &models, mode_set, &[], jobs);
        let cells = workloads
            .iter()
            .flat_map(|w| modes.iter().map(move |&mode| (w, mode)))
            .zip(grid)
            .map(|((w, mode), cell)| {
                let mut out = CellResult {
                    algo: w.algo.name(),
                    test: w.test.name.clone(),
                    mode,
                    passed: false,
                    error: None,
                    elapsed: Duration::ZERO,
                };
                match cell {
                    Ok((passed, wall)) => {
                        out.passed = passed;
                        out.elapsed = wall;
                    }
                    Err(e) => out.error = Some(e),
                }
                out
            })
            .collect();
        MatrixReport {
            cells,
            sessions,
            elapsed: t0.elapsed(),
        }
    }

    /// One verdict of a mixed (built-in + declarative) model matrix.
    #[derive(Clone, Debug)]
    pub struct ModelCell {
        /// Implementation mnemonic.
        pub algo: &'static str,
        /// Test name.
        pub test: String,
        /// Display name of the model checked (mode name or spec name).
        pub model: String,
        /// Whether the inclusion check passed.
        pub passed: bool,
        /// Infrastructure error, if the check could not run.
        pub error: Option<String>,
        /// Wall-clock time of this cell's query.
        pub elapsed: Duration,
    }

    /// Runs every workload against built-in modes *and* declarative
    /// models through one engine batch on `jobs` worker threads: pooled
    /// sessions per workload, every encoding covering the whole model
    /// universe, each model answered by an assumption vector. Verdicts
    /// come back in deterministic (workload, modes.., specs..) order.
    pub fn run_matrix_with_specs(
        workloads: &[Workload],
        modes: &[Mode],
        specs: &[cf_spec::ModelSpec],
        jobs: usize,
    ) -> Vec<ModelCell> {
        let mode_set: ModeSet = modes.iter().copied().collect();
        let models: Vec<(String, ModelSel)> = modes
            .iter()
            .map(|&m| (m.name().to_string(), ModelSel::Builtin(m)))
            .chain(
                specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.name.clone(), ModelSel::Spec(i))),
            )
            .collect();
        let sels: Vec<ModelSel> = models.iter().map(|(_, sel)| *sel).collect();
        let (grid, _) = run_grid(workloads, &sels, mode_set, specs, jobs);
        workloads
            .iter()
            .flat_map(|w| models.iter().map(move |(model, _)| (w, model)))
            .zip(grid)
            .map(|((w, model), cell)| {
                let mut out = ModelCell {
                    algo: w.algo.name(),
                    test: w.test.name.clone(),
                    model: model.clone(),
                    passed: false,
                    error: None,
                    elapsed: Duration::ZERO,
                };
                match cell {
                    Ok((passed, wall)) => {
                        out.passed = passed;
                        out.elapsed = wall;
                    }
                    Err(e) => out.error = Some(e),
                }
                out
            })
            .collect()
    }
}
