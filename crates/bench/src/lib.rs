//! Shared plumbing for the paper-reproduction benchmarks.
//!
//! Each bench target regenerates one table or figure of the CheckFence
//! paper (see DESIGN.md §5 for the index). The helpers here select the
//! implementation/test matrix and format rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cf_algos::{tests, Algo, Variant};
use checkfence::{Harness, TestSpec};

/// One (implementation, test) cell of the evaluation matrix.
pub struct Workload {
    /// Implementation mnemonic (paper Table 1).
    pub algo: Algo,
    /// The harness (fenced build).
    pub harness: Harness,
    /// The symbolic test.
    pub test: TestSpec,
}

/// The default evaluation matrix: small and medium catalog tests per
/// implementation. Set `CHECKFENCE_FULL=1` to include the larger tests
/// (several minutes of solving).
pub fn workloads() -> Vec<Workload> {
    let full = std::env::var("CHECKFENCE_FULL").is_ok_and(|v| v == "1");
    let mut out = Vec::new();
    let pick = |names: &[&str]| -> Vec<TestSpec> {
        names
            .iter()
            .map(|n| tests::by_name(n).expect("catalog test"))
            .collect()
    };
    let matrix: Vec<(Algo, Vec<TestSpec>)> = vec![
        (
            Algo::Ms2,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3", "T1"])
            } else {
                pick(&["T0", "Ti2", "Tpc2"])
            },
        ),
        (
            Algo::Msn,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3"])
            } else {
                pick(&["T0", "Ti2"])
            },
        ),
        (
            Algo::Lazylist,
            if full {
                pick(&["Sac", "Sar", "Saa"])
            } else {
                pick(&["Sac"])
            },
        ),
        (
            Algo::Harris,
            if full {
                pick(&["Sac", "Sar"])
            } else {
                pick(&["Sac"])
            },
        ),
        (
            Algo::Snark,
            if full {
                pick(&["D0", "Da", "Db"])
            } else {
                pick(&["D0"])
            },
        ),
    ];
    for (algo, tests) in matrix {
        for test in tests {
            out.push(Workload {
                algo,
                harness: algo.harness(Variant::Fenced),
                test,
            });
        }
    }
    out
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

pub mod parallel {
    //! Parallel evaluation driver: fans the (implementation, test) × mode
    //! matrix out across worker threads, one persistent [`CheckSession`]
    //! per (implementation, test) cell.
    //!
    //! Each cell mines its specification once (reference interpreter) and
    //! then answers every requested memory model from a single multi-mode
    //! encoding on one incremental solver — the session architecture's
    //! sweet spot. Workers are plain `std::thread::scope` threads pulling
    //! cells from an atomic queue (the toolchain is offline, so no rayon;
    //! the fan-out pattern is identical).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    use cf_memmodel::{Mode, ModeSet};
    use checkfence::{CheckConfig, CheckSession, SessionConfig};

    use crate::Workload;

    /// One verdict of the evaluation matrix.
    #[derive(Clone, Debug)]
    pub struct CellResult {
        /// Implementation mnemonic.
        pub algo: &'static str,
        /// Test name.
        pub test: String,
        /// Memory model checked.
        pub mode: Mode,
        /// Whether the inclusion check passed.
        pub passed: bool,
        /// Infrastructure error, if the check could not run.
        pub error: Option<String>,
        /// Wall-clock time of this cell's query.
        pub elapsed: Duration,
    }

    /// Outcome of a matrix run.
    #[derive(Debug)]
    pub struct MatrixReport {
        /// Per-(cell, mode) verdicts, in deterministic matrix order.
        pub cells: Vec<CellResult>,
        /// Sessions created (= workloads; each answers all modes).
        pub sessions: usize,
        /// End-to-end wall-clock time.
        pub elapsed: Duration,
    }

    /// Runs `n` independent jobs on up to `jobs` worker threads (an
    /// atomic work queue over scoped threads) and returns the results in
    /// index order. Shared by [`run_matrix`] and the `checkfence --jobs`
    /// CLI fan-out.
    pub fn run_indexed<R: Send>(jobs: usize, n: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..jobs.clamp(1, n.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = work(i);
                    results.lock().expect("no poisoned worker").push((i, r));
                });
            }
        });
        let mut indexed = results.into_inner().expect("workers joined");
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs every workload × mode on `jobs` worker threads and returns
    /// the verdicts in deterministic (workload, mode) order.
    pub fn run_matrix(workloads: &[Workload], modes: &[Mode], jobs: usize) -> MatrixReport {
        let t0 = Instant::now();
        let mode_set: ModeSet = modes.iter().copied().collect();
        let rows = run_indexed(jobs, workloads.len(), |i| {
            run_cell(&workloads[i], modes, mode_set)
        });
        MatrixReport {
            cells: rows.into_iter().flatten().collect(),
            sessions: workloads.len(),
            elapsed: t0.elapsed(),
        }
    }

    /// One verdict of a mixed (built-in + declarative) model matrix.
    #[derive(Clone, Debug)]
    pub struct ModelCell {
        /// Implementation mnemonic.
        pub algo: &'static str,
        /// Test name.
        pub test: String,
        /// Display name of the model checked (mode name or spec name).
        pub model: String,
        /// Whether the inclusion check passed.
        pub passed: bool,
        /// Infrastructure error, if the check could not run.
        pub error: Option<String>,
        /// Wall-clock time of this cell's query.
        pub elapsed: Duration,
    }

    /// Runs every workload against built-in modes *and* declarative
    /// models on `jobs` worker threads: one session per workload, its
    /// encoding covering the whole model universe, each model answered
    /// by an assumption vector. Verdicts come back in deterministic
    /// (workload, modes.., specs..) order.
    pub fn run_matrix_with_specs(
        workloads: &[Workload],
        modes: &[Mode],
        specs: &[cf_spec::ModelSpec],
        jobs: usize,
    ) -> Vec<ModelCell> {
        let mode_set: ModeSet = modes.iter().copied().collect();
        let rows = run_indexed(jobs, workloads.len(), |i| {
            run_model_cell(&workloads[i], modes, mode_set, specs)
        });
        rows.into_iter().flatten().collect()
    }

    fn run_model_cell(
        w: &Workload,
        modes: &[Mode],
        mode_set: ModeSet,
        specs: &[cf_spec::ModelSpec],
    ) -> Vec<ModelCell> {
        use checkfence::ModelSel;
        let config = SessionConfig::from_check_config(&CheckConfig::default(), mode_set)
            .with_specs(specs.to_vec());
        let mut session = CheckSession::with_config(&w.harness, &w.test, config);
        let models: Vec<(String, ModelSel)> = modes
            .iter()
            .map(|&m| (m.name().to_string(), ModelSel::Builtin(m)))
            .chain(
                specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.name.clone(), ModelSel::Spec(i))),
            )
            .collect();
        let spec = match session.mine_spec_reference() {
            Ok(m) => m.spec,
            Err(e) => {
                return models
                    .into_iter()
                    .map(|(model, _)| ModelCell {
                        algo: w.algo.name(),
                        test: w.test.name.clone(),
                        model,
                        passed: false,
                        error: Some(e.to_string()),
                        elapsed: Duration::ZERO,
                    })
                    .collect();
            }
        };
        models
            .into_iter()
            .map(|(model, sel)| {
                let t = Instant::now();
                let (passed, error) = match session.check_inclusion_model(sel, &spec) {
                    Ok(r) => (r.outcome.passed(), None),
                    Err(e) => (false, Some(e.to_string())),
                };
                ModelCell {
                    algo: w.algo.name(),
                    test: w.test.name.clone(),
                    model,
                    passed,
                    error,
                    elapsed: t.elapsed(),
                }
            })
            .collect()
    }

    fn run_cell(w: &Workload, modes: &[Mode], mode_set: ModeSet) -> Vec<CellResult> {
        let config = SessionConfig::from_check_config(&CheckConfig::default(), mode_set);
        let mut session = CheckSession::with_config(&w.harness, &w.test, config);
        let spec = match session.mine_spec_reference() {
            Ok(m) => m.spec,
            Err(e) => {
                return modes
                    .iter()
                    .map(|&mode| CellResult {
                        algo: w.algo.name(),
                        test: w.test.name.clone(),
                        mode,
                        passed: false,
                        error: Some(e.to_string()),
                        elapsed: Duration::ZERO,
                    })
                    .collect();
            }
        };
        modes
            .iter()
            .map(|&mode| {
                let t = Instant::now();
                let (passed, error) = match session.check_inclusion(mode, &spec) {
                    Ok(r) => (r.outcome.passed(), None),
                    Err(e) => (false, Some(e.to_string())),
                };
                CellResult {
                    algo: w.algo.name(),
                    test: w.test.name.clone(),
                    mode,
                    passed,
                    error,
                    elapsed: t.elapsed(),
                }
            })
            .collect()
    }
}
