//! Shared plumbing for the paper-reproduction benchmarks.
//!
//! Each bench target regenerates one table or figure of the CheckFence
//! paper (see DESIGN.md §5 for the index). The helpers here select the
//! implementation/test matrix and format rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cf_algos::{tests, Algo, Variant};
use checkfence::{Harness, TestSpec};

/// One (implementation, test) cell of the evaluation matrix.
pub struct Workload {
    /// Implementation mnemonic (paper Table 1).
    pub algo: Algo,
    /// The harness (fenced build).
    pub harness: Harness,
    /// The symbolic test.
    pub test: TestSpec,
}

/// The default evaluation matrix: small and medium catalog tests per
/// implementation. Set `CHECKFENCE_FULL=1` to include the larger tests
/// (several minutes of solving).
pub fn workloads() -> Vec<Workload> {
    let full = std::env::var("CHECKFENCE_FULL").is_ok_and(|v| v == "1");
    let mut out = Vec::new();
    let pick = |names: &[&str]| -> Vec<TestSpec> {
        names
            .iter()
            .map(|n| tests::by_name(n).expect("catalog test"))
            .collect()
    };
    let matrix: Vec<(Algo, Vec<TestSpec>)> = vec![
        (
            Algo::Ms2,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3", "T1"])
            } else {
                pick(&["T0", "Ti2", "Tpc2"])
            },
        ),
        (
            Algo::Msn,
            if full {
                pick(&["T0", "Ti2", "Tpc2", "Tpc3"])
            } else {
                pick(&["T0", "Ti2"])
            },
        ),
        (
            Algo::Lazylist,
            if full {
                pick(&["Sac", "Sar", "Saa"])
            } else {
                pick(&["Sac"])
            },
        ),
        (
            Algo::Harris,
            if full { pick(&["Sac", "Sar"]) } else { pick(&["Sac"]) },
        ),
        (
            Algo::Snark,
            if full { pick(&["D0", "Da", "Db"]) } else { pick(&["D0"]) },
        ),
    ];
    for (algo, tests) in matrix {
        for test in tests {
            out.push(Workload {
                algo,
                harness: algo.harness(Variant::Fenced),
                test,
            });
        }
    }
    out
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
