//! Runtime coverage for the parallel evaluation driver: verdicts must be
//! deterministic, ordered, and identical to a sequential run.

use cf_algos::{tests, Algo, Variant};
use cf_bench::{parallel, Workload};
use cf_memmodel::Mode;

fn small_matrix() -> Vec<Workload> {
    ["T0", "Ti2"]
        .iter()
        .map(|name| Workload {
            algo: Algo::Ms2,
            harness: Algo::Ms2.harness(Variant::Fenced),
            test: tests::by_name(name).expect("catalog test"),
        })
        .collect()
}

#[test]
fn parallel_matrix_matches_sequential_and_preserves_order() {
    let modes = [Mode::Sc, Mode::Relaxed];
    let sequential = parallel::run_matrix(&small_matrix(), &modes, 1);
    let fanned = parallel::run_matrix(&small_matrix(), &modes, 4);

    assert_eq!(sequential.cells.len(), 4, "2 workloads x 2 modes");
    assert_eq!(sequential.cells.len(), fanned.cells.len());
    assert_eq!(
        sequential.sessions, 2,
        "sequential: one session per (algo, test) cell"
    );
    assert!(
        fanned.sessions >= 2,
        "fan-out keeps at least one session per (algo, test) cell"
    );
    for (s, f) in sequential.cells.iter().zip(&fanned.cells) {
        assert_eq!(s.test, f.test, "deterministic cell order");
        assert_eq!(s.mode, f.mode);
        assert_eq!(s.passed, f.passed, "{} {} on {:?}", s.algo, s.test, s.mode);
        assert!(f.error.is_none(), "{:?}", f.error);
        // The fenced two-lock queue passes everywhere (paper §4).
        assert!(f.passed, "{} {} on {:?}", f.algo, f.test, f.mode);
    }
}

#[test]
fn mixed_model_matrix_agrees_with_enum_columns() {
    // Built-ins and their compiled spec twins checked from one session
    // per workload: twin columns must agree cell by cell, and the
    // fan-out must preserve order.
    let modes = [Mode::Sc, Mode::Relaxed];
    let specs: Vec<_> = modes
        .iter()
        .map(|&m| cf_spec::bundled::for_mode(m))
        .collect();
    let cells = parallel::run_matrix_with_specs(&small_matrix(), &modes, &specs, 3);
    assert_eq!(cells.len(), 8, "2 workloads x (2 modes + 2 specs)");
    for chunk in cells.chunks(4) {
        for (enum_cell, spec_cell) in chunk[..2].iter().zip(&chunk[2..]) {
            assert_eq!(enum_cell.model, spec_cell.model, "twin columns align");
            assert!(enum_cell.error.is_none() && spec_cell.error.is_none());
            assert_eq!(
                enum_cell.passed, spec_cell.passed,
                "{} {} on {}: enum and spec verdicts diverge",
                enum_cell.algo, enum_cell.test, enum_cell.model
            );
        }
    }
}
