//! Runtime coverage for the parallel evaluation driver: verdicts must be
//! deterministic, ordered, and identical to a sequential run.

use cf_algos::{tests, Algo, Variant};
use cf_bench::{parallel, Workload};
use cf_memmodel::Mode;

fn small_matrix() -> Vec<Workload> {
    ["T0", "Ti2"]
        .iter()
        .map(|name| Workload {
            algo: Algo::Ms2,
            harness: Algo::Ms2.harness(Variant::Fenced),
            test: tests::by_name(name).expect("catalog test"),
        })
        .collect()
}

#[test]
fn parallel_matrix_matches_sequential_and_preserves_order() {
    let modes = [Mode::Sc, Mode::Relaxed];
    let sequential = parallel::run_matrix(&small_matrix(), &modes, 1);
    let fanned = parallel::run_matrix(&small_matrix(), &modes, 4);

    assert_eq!(sequential.cells.len(), 4, "2 workloads x 2 modes");
    assert_eq!(sequential.cells.len(), fanned.cells.len());
    assert_eq!(fanned.sessions, 2, "one session per (algo, test) cell");
    for (s, f) in sequential.cells.iter().zip(&fanned.cells) {
        assert_eq!(s.test, f.test, "deterministic cell order");
        assert_eq!(s.mode, f.mode);
        assert_eq!(s.passed, f.passed, "{} {} on {:?}", s.algo, s.test, s.mode);
        assert!(f.error.is_none(), "{:?}", f.error);
        // The fenced two-lock queue passes everywhere (paper §4).
        assert!(f.passed, "{} {} on {:?}", f.algo, f.test, f.mode);
    }
}
