//! Equivalence of the two `specs/c11.cfm` / `specs/rc11.cfm` backends
//! on the per-ordering litmus grid.
//!
//! Same discipline as `bundled_equiv.rs`, but the grid axis is the
//! *access annotation* instead of the model: for MP, SB and LB every
//! combination of per-op orderings (stores over relaxed/release/
//! seq_cst, loads over relaxed/acquire/seq_cst) is run through both
//! the explicit oracle (`interp::litmus_outcomes`) and the SAT
//! pipeline (mini-C builtins → symexec → CNF → enumeration), and the
//! two outcome sets must match exactly. IRIW's 729-variant grid is
//! covered by the uniform diagonal plus a deterministic sample.
//!
//! A hand-declared verdict block pins the classic results (MP-rel/acq
//! forbids the stale read, LB-rlx separates c11 from rc11, ...) so the
//! equivalence cannot be trivially satisfied by two backends that are
//! wrong in the same way.

use std::collections::BTreeSet;

use cf_lsl::{MemOrder, Value};
use cf_memmodel::{Litmus, LitmusOp, Mode, ModeSet};
use cf_spec::{bundled, compile, interp, ModelSpec};
use checkfence::{
    CheckConfig, Engine, EngineConfig, Harness, ModelSel, OpSig, OrderEncoding, Query, TestSpec,
};

/// One litmus slot: a store of a constant or a load into the next
/// register, with a variable ordering annotation.
#[derive(Clone, Copy, Debug)]
enum Op {
    St { addr: u8, val: i64 },
    Ld { addr: u8 },
}

type Thread = Vec<(Op, MemOrder)>;

const STORE_ORDS: [MemOrder; 3] = [MemOrder::Relaxed, MemOrder::Release, MemOrder::SeqCst];
const LOAD_ORDS: [MemOrder; 3] = [MemOrder::Relaxed, MemOrder::Acquire, MemOrder::SeqCst];

// ------------------------------------------------------------- shapes

/// Message passing: T0 publishes data then flag, T1 reads flag then
/// data. Registers: r0 = flag, r1 = data.
fn mp(ords: &[MemOrder; 4]) -> Vec<Thread> {
    vec![
        vec![
            (Op::St { addr: 0, val: 1 }, ords[0]), // data
            (Op::St { addr: 1, val: 1 }, ords[1]), // flag
        ],
        vec![
            (Op::Ld { addr: 1 }, ords[2]), // r0 = flag
            (Op::Ld { addr: 0 }, ords[3]), // r1 = data
        ],
    ]
}

/// Store buffering: each thread writes its own flag then reads the
/// other. Registers: r0 = T0's read, r1 = T1's read.
fn sb(ords: &[MemOrder; 4]) -> Vec<Thread> {
    vec![
        vec![
            (Op::St { addr: 0, val: 1 }, ords[0]),
            (Op::Ld { addr: 1 }, ords[1]),
        ],
        vec![
            (Op::St { addr: 1, val: 1 }, ords[2]),
            (Op::Ld { addr: 0 }, ords[3]),
        ],
    ]
}

/// Load buffering: each thread reads one location then writes the
/// other. Registers: r0 = T0's read, r1 = T1's read.
fn lb(ords: &[MemOrder; 4]) -> Vec<Thread> {
    vec![
        vec![
            (Op::Ld { addr: 0 }, ords[0]),
            (Op::St { addr: 1, val: 1 }, ords[1]),
        ],
        vec![
            (Op::Ld { addr: 1 }, ords[2]),
            (Op::St { addr: 0, val: 1 }, ords[3]),
        ],
    ]
}

/// Independent reads of independent writes. Registers r0..r3 in thread
/// order.
fn iriw(ords: &[MemOrder; 6]) -> Vec<Thread> {
    vec![
        vec![(Op::St { addr: 0, val: 1 }, ords[0])],
        vec![(Op::St { addr: 1, val: 1 }, ords[1])],
        vec![(Op::Ld { addr: 0 }, ords[2]), (Op::Ld { addr: 1 }, ords[3])],
        vec![(Op::Ld { addr: 1 }, ords[4]), (Op::Ld { addr: 0 }, ords[5])],
    ]
}

// ---------------------------------------------------- the two backends

/// Renders the shape as a mini-C harness using the ordering builtins.
fn minic_source(threads: &[Thread]) -> String {
    let mut src = String::from("int g0;\nint g1;\n");
    for (tid, ops) in threads.iter().enumerate() {
        let mut body = String::new();
        let mut ret = String::from("0");
        let mut mult = 1i64;
        for (i, (op, ord)) in ops.iter().enumerate() {
            match op {
                Op::St { addr, val } => {
                    body.push_str(&format!("    store(g{addr}, {}, {val});\n", ord.as_str()));
                }
                Op::Ld { addr } => {
                    body.push_str(&format!(
                        "    int r{i} = load(g{addr}, {});\n",
                        ord.as_str()
                    ));
                    ret = format!("{ret} + r{i} * {mult}");
                    mult *= 4;
                }
            }
        }
        src.push_str(&format!("int op{tid}() {{\n{body}    return {ret};\n}}\n"));
    }
    src
}

/// The matching oracle litmus program.
fn to_litmus(threads: &[Thread]) -> Litmus {
    let mut reg = 0usize;
    let mut lt = Vec::new();
    for ops in threads {
        let mut out = Vec::new();
        for (op, ord) in ops {
            match op {
                Op::St { addr, val } => out.push(LitmusOp::Store {
                    addr: u32::from(*addr),
                    value: *val,
                    ord: *ord,
                }),
                Op::Ld { addr } => {
                    out.push(LitmusOp::Load {
                        addr: u32::from(*addr),
                        reg,
                        ord: *ord,
                    });
                    reg += 1;
                }
            }
        }
        lt.push(out);
    }
    Litmus {
        name: "c11-grid",
        threads: lt,
        num_regs: reg,
    }
}

/// Packs one oracle outcome into the per-thread base-4 observation the
/// mini-C wrappers return.
fn pack(threads: &[Thread], regs: &[i64]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut next = 0usize;
    for ops in threads {
        let mut packed = 0i64;
        let mut mult = 1i64;
        for (op, _) in ops {
            if matches!(op, Op::Ld { .. }) {
                packed += regs[next] * mult;
                mult *= 4;
                next += 1;
            }
        }
        out.push(Value::Int(packed));
    }
    out
}

fn oracle_outcomes(threads: &[Thread], spec: &ModelSpec) -> BTreeSet<Vec<Value>> {
    interp::litmus_outcomes(&to_litmus(threads), spec)
        .into_iter()
        .map(|regs| pack(threads, &regs))
        .collect()
}

fn sat_outcomes(threads: &[Thread], spec: &ModelSpec) -> BTreeSet<Vec<Value>> {
    let src = minic_source(threads);
    let program = cf_minic::compile(&src).expect("grid source compiles");
    let ops = (0..threads.len())
        .map(|tid| OpSig {
            key: char::from(b'a' + tid as u8),
            proc_name: format!("op{tid}"),
            num_args: 0,
            has_ret: true,
        })
        .collect();
    let harness = Harness {
        name: "c11-grid".into(),
        program,
        init_proc: None,
        ops,
    };
    let text = format!(
        "( {} )",
        (0..threads.len())
            .map(|t| char::from(b'a' + t as u8).to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let test = TestSpec::parse("grid", &text).expect("test parses");
    let mut config =
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::single(Mode::Relaxed))
            .with_specs(vec![spec.clone()]);
    config.check.order_encoding = OrderEncoding::Pairwise;
    Engine::new(config)
        .run(&Query::enumerate(&harness, &test).on_model(ModelSel::Spec(0)))
        .expect("enumerates")
        .into_observations()
        .expect("observations")
        .vectors
}

fn assert_equiv(threads: &[Thread], spec: &ModelSpec, label: &str) {
    let oracle = oracle_outcomes(threads, spec);
    let sat = sat_outcomes(threads, spec);
    assert_eq!(
        sat,
        oracle,
        "{label} under {}: SAT pipeline and explicit oracle disagree\nsource:\n{}",
        spec.name,
        minic_source(threads)
    );
}

fn c11_and_rc11() -> (ModelSpec, ModelSpec) {
    (
        compile(bundled::C11).expect("c11 compiles"),
        compile(bundled::RC11).expect("rc11 compiles"),
    )
}

// ---------------------------------------------------------- grid tests

fn grid4(shape: fn(&[MemOrder; 4]) -> Vec<Thread>, slots: [&[MemOrder; 3]; 4], label: &str) {
    let (c11, rc11) = c11_and_rc11();
    for a in slots[0] {
        for b in slots[1] {
            for c in slots[2] {
                for d in slots[3] {
                    let threads = shape(&[*a, *b, *c, *d]);
                    let tag = format!("{label}[{a} {b} {c} {d}]");
                    assert_equiv(&threads, &c11, &tag);
                    assert_equiv(&threads, &rc11, &tag);
                }
            }
        }
    }
}

#[test]
fn mp_full_ordering_grid() {
    grid4(mp, [&STORE_ORDS, &STORE_ORDS, &LOAD_ORDS, &LOAD_ORDS], "MP");
}

#[test]
fn sb_full_ordering_grid() {
    grid4(sb, [&STORE_ORDS, &LOAD_ORDS, &STORE_ORDS, &LOAD_ORDS], "SB");
}

#[test]
fn lb_full_ordering_grid() {
    grid4(lb, [&LOAD_ORDS, &STORE_ORDS, &LOAD_ORDS, &STORE_ORDS], "LB");
}

#[test]
fn iriw_diagonal_and_sampled_grid() {
    let (c11, rc11) = c11_and_rc11();
    // Uniform diagonal: everything at the same strength.
    for (so, lo) in STORE_ORDS.iter().zip(LOAD_ORDS) {
        let threads = iriw(&[*so, *so, lo, lo, lo, lo]);
        let tag = format!("IRIW[{so}/{lo}]");
        assert_equiv(&threads, &c11, &tag);
        assert_equiv(&threads, &rc11, &tag);
    }
    // Deterministic xorshift sample of the mixed grid.
    let mut state = 0x00c1_1c11_u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    for _ in 0..21 {
        let ords = [
            STORE_ORDS[next() % 3],
            STORE_ORDS[next() % 3],
            LOAD_ORDS[next() % 3],
            LOAD_ORDS[next() % 3],
            LOAD_ORDS[next() % 3],
            LOAD_ORDS[next() % 3],
        ];
        let threads = iriw(&ords);
        let tag = format!("IRIW{ords:?}");
        assert_equiv(&threads, &c11, &tag);
        assert_equiv(&threads, &rc11, &tag);
    }
}

// ------------------------------------------------- pinned hand verdicts

/// The classic results, declared by hand so backend agreement cannot
/// hide a shared bug.
#[test]
fn pinned_verdicts() {
    let (c11, rc11) = c11_and_rc11();
    let rlx = MemOrder::Relaxed;

    // MP with release/acquire on the flag forbids the stale read
    // (r0 = flag = 1, r1 = data = 0); all-relaxed allows it.
    let mp_ra = to_litmus(&mp(&[rlx, MemOrder::Release, MemOrder::Acquire, rlx]));
    assert!(!interp::litmus_allows(&mp_ra, &c11, &[1, 0]));
    let mp_rlx = to_litmus(&mp(&[rlx; 4]));
    assert!(interp::litmus_allows(&mp_rlx, &c11, &[1, 0]));

    // SB: both loads reading 0 needs seq_cst everywhere; even
    // release/acquire pairs leave it allowed.
    let sc = MemOrder::SeqCst;
    let sb_sc = to_litmus(&sb(&[sc; 4]));
    assert!(!interp::litmus_allows(&sb_sc, &c11, &[0, 0]));
    let sb_ra = to_litmus(&sb(&[
        MemOrder::Release,
        MemOrder::Acquire,
        MemOrder::Release,
        MemOrder::Acquire,
    ]));
    assert!(interp::litmus_allows(&sb_ra, &c11, &[0, 0]));

    // LB all-relaxed separates the two models: c11 admits the cycle,
    // rc11's no-thin-air axiom does not.
    let lb_rlx = to_litmus(&lb(&[rlx; 4]));
    assert!(interp::litmus_allows(&lb_rlx, &c11, &[1, 1]));
    assert!(!interp::litmus_allows(&lb_rlx, &rc11, &[1, 1]));
    // Acquire loads restore the order in both.
    let lb_acq = to_litmus(&lb(&[MemOrder::Acquire, rlx, MemOrder::Acquire, rlx]));
    assert!(!interp::litmus_allows(&lb_acq, &c11, &[1, 1]));

    // IRIW: relaxed readers may disagree on the store order; acquire
    // readers may not (the engine's single total memory order makes
    // the model multi-copy-atomic — stronger than the C11 standard,
    // which allows IRIW even with acquire loads).
    let split = [1, 0, 1, 0];
    let iriw_rlx = to_litmus(&iriw(&[rlx; 6]));
    assert!(interp::litmus_allows(&iriw_rlx, &c11, &split));
    let acq = MemOrder::Acquire;
    let iriw_acq = to_litmus(&iriw(&[rlx, rlx, acq, acq, acq, acq]));
    assert!(!interp::litmus_allows(&iriw_acq, &c11, &split));
}
