//! Randomized ordering-annotation properties, `query_equiv.rs` style
//! (deterministic xorshift so failures replay bit for bit).
//!
//! For random fence-free straight-line programs over two locations:
//!
//! 1. annotating *every* access `seq_cst` yields exactly the outcome
//!    set of the unannotated twin under `specs/sc.cfm` — blanket
//!    seq_cst is sequential consistency;
//! 2. annotating every access `relaxed` yields an outcome set no
//!    larger than the unannotated twin under `specs/relaxed.cfm` —
//!    all-relaxed c11 still enforces per-location coherence (it
//!    forbids CoRR, which the paper's Relaxed model allows), so it may
//!    be strictly stronger but never weaker.

use std::collections::BTreeSet;

use cf_lsl::{MemOrder, Value};
use cf_memmodel::{Mode, ModeSet};
use cf_sat::xorshift::Rng;
use cf_spec::{bundled, compile, ModelSpec};
use checkfence::{
    CheckConfig, Engine, EngineConfig, Harness, ModelSel, OpSig, OrderEncoding, Query, TestSpec,
};

/// One straight-line access; `None` ordering renders the unannotated
/// plain form.
#[derive(Clone, Copy, Debug)]
enum Instr {
    Store { addr: u8, value: i64 },
    Load { addr: u8 },
}

fn random_program(rng: &mut Rng) -> Vec<Vec<Instr>> {
    let num_threads = 2 + rng.below(2) as usize;
    (0..num_threads)
        .map(|_| {
            let len = 1 + rng.below(3) as usize;
            (0..len)
                .map(|_| {
                    if rng.below(2) == 0 {
                        Instr::Store {
                            addr: rng.below(2) as u8,
                            value: 1 + rng.below(2) as i64,
                        }
                    } else {
                        Instr::Load {
                            addr: rng.below(2) as u8,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Renders the program as mini-C, annotated with `ord` or plain.
fn source(threads: &[Vec<Instr>], ord: Option<MemOrder>) -> String {
    let mut src = String::from("int g0;\nint g1;\n");
    for (tid, instrs) in threads.iter().enumerate() {
        let mut body = String::new();
        let mut ret = String::from("0");
        let mut mult = 1i64;
        for (i, ins) in instrs.iter().enumerate() {
            match (ins, ord) {
                (Instr::Store { addr, value }, Some(o)) => {
                    body.push_str(&format!("    store(g{addr}, {}, {value});\n", o.as_str()));
                }
                (Instr::Store { addr, value }, None) => {
                    body.push_str(&format!("    g{addr} = {value};\n"));
                }
                (Instr::Load { addr }, Some(o)) => {
                    body.push_str(&format!("    int r{i} = load(g{addr}, {});\n", o.as_str()));
                }
                (Instr::Load { addr }, None) => {
                    body.push_str(&format!("    int r{i} = g{addr};\n"));
                }
            }
            if matches!(ins, Instr::Load { .. }) {
                ret = format!("{ret} + r{i} * {mult}");
                mult *= 4;
            }
        }
        src.push_str(&format!("int op{tid}() {{\n{body}    return {ret};\n}}\n"));
    }
    src
}

/// Enumerates the observation set of a rendered program under a spec.
fn outcomes(
    threads: &[Vec<Instr>],
    ord: Option<MemOrder>,
    spec: &ModelSpec,
) -> BTreeSet<Vec<Value>> {
    let src = source(threads, ord);
    let program = cf_minic::compile(&src).expect("generated source compiles");
    let ops = (0..threads.len())
        .map(|tid| OpSig {
            key: char::from(b'a' + tid as u8),
            proc_name: format!("op{tid}"),
            num_args: 0,
            has_ret: true,
        })
        .collect();
    let harness = Harness {
        name: "c11-prop".into(),
        program,
        init_proc: None,
        ops,
    };
    let text = format!(
        "( {} )",
        (0..threads.len())
            .map(|t| char::from(b'a' + t as u8).to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let test = TestSpec::parse("prop", &text).expect("test parses");
    let mut config =
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::single(Mode::Relaxed))
            .with_specs(vec![spec.clone()]);
    config.check.order_encoding = OrderEncoding::Pairwise;
    Engine::new(config)
        .run(&Query::enumerate(&harness, &test).on_model(ModelSel::Spec(0)))
        .expect("enumerates")
        .into_observations()
        .expect("observations")
        .vectors
}

#[test]
fn all_seq_cst_is_sequential_consistency() {
    let c11 = compile(bundled::C11).expect("c11 compiles");
    let sc = compile(bundled::SC).expect("sc compiles");
    let mut rng = Rng::new(0x5e9_c57);
    for _ in 0..32 {
        let threads = random_program(&mut rng);
        let annotated = outcomes(&threads, Some(MemOrder::SeqCst), &c11);
        let plain = outcomes(&threads, None, &sc);
        assert_eq!(
            annotated,
            plain,
            "all-seq_cst c11 must equal sc on {threads:?}\nsource:\n{}",
            source(&threads, Some(MemOrder::SeqCst))
        );
    }
}

#[test]
fn all_relaxed_is_no_weaker_than_relaxed_model() {
    let c11 = compile(bundled::C11).expect("c11 compiles");
    let relaxed = compile(bundled::RELAXED).expect("relaxed compiles");
    let mut rng = Rng::new(0x0c11_bead);
    let mut strictly_stronger = 0usize;
    for _ in 0..32 {
        let threads = random_program(&mut rng);
        let annotated = outcomes(&threads, Some(MemOrder::Relaxed), &c11);
        let plain = outcomes(&threads, None, &relaxed);
        assert!(
            annotated.is_subset(&plain),
            "all-relaxed c11 produced outcomes relaxed.cfm forbids on {threads:?}\nsource:\n{}",
            source(&threads, Some(MemOrder::Relaxed))
        );
        if annotated != plain {
            strictly_stronger += 1;
        }
    }
    // The inclusion must not be vacuous equality everywhere: c11's
    // coherence axiom really prunes some outcome (e.g. CoRR) on at
    // least one sampled program.
    assert!(
        strictly_stronger > 0,
        "sample never exercised the coherence difference; grow the sample"
    );
}
