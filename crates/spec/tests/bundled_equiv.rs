//! Loader and equivalence tests for the bundled `.cfm` specifications.
//!
//! Every file under `specs/` must parse, check, and agree with its
//! built-in `Mode` twin on the *full* litmus catalog: identical allowed
//! outcome sets per test (a much stronger property than matching the
//! distinguishing outcome alone), plus the cross-mode expected-outcome
//! matrix row by row.

use std::collections::BTreeSet;
use std::path::Path;

use cf_memmodel::{litmus, Mode};
use cf_spec::{bundled, compile, interp};

#[test]
fn every_file_in_specs_dir_is_bundled_and_compiles() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut on_disk = BTreeSet::new();
    for entry in std::fs::read_dir(&dir).expect("specs/ directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "cfm") {
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let src = std::fs::read_to_string(&path).expect("readable spec");
            let spec = compile(&src).unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
            assert!(!spec.name.is_empty());
            on_disk.insert(name);
        }
    }
    let registered: BTreeSet<String> = bundled::sources()
        .iter()
        .map(|(n, _)| (*n).to_string())
        .collect();
    assert_eq!(
        on_disk, registered,
        "specs/ and cf_spec::bundled::sources() must list the same files"
    );
}

#[test]
fn bundled_specs_match_their_enum_twins_on_the_full_catalog() {
    let mut twinned = 0;
    for spec in bundled::all() {
        let Some(mode) = bundled::mode_twin(&spec.name) else {
            continue; // c11/rc11 have no enum twin; covered by c11_equiv.
        };
        twinned += 1;
        for test in litmus::all() {
            assert_eq!(
                interp::litmus_outcomes(&test, &spec),
                test.allowed_outcomes(mode),
                "{} disagrees with Mode::{mode:?} on {}",
                spec.name,
                test.name
            );
        }
    }
    assert_eq!(twinned, Mode::all().len(), "every mode twin was exercised");
}

#[test]
fn bundled_specs_reproduce_the_expected_outcome_matrix() {
    for spec in bundled::all() {
        let Some(mode) = bundled::mode_twin(&spec.name) else {
            continue; // c11/rc11 have no enum twin.
        };
        let Some(col) = Mode::hardware().iter().position(|m| *m == mode) else {
            continue; // serial has no matrix column; covered above.
        };
        for row in litmus::matrix() {
            assert_eq!(
                interp::litmus_allows(&row.test, &spec, &row.outcome),
                row.allowed[col],
                "{} on {} {:?}",
                spec.name,
                row.test.name,
                row.outcome
            );
        }
    }
}

#[test]
fn user_specs_are_differentiated_by_the_matrix() {
    // A custom model between TSO and PSO: relaxes store→load *and*
    // store→store (like PSO) but keeps same-address load-load order —
    // the matrix tells it apart from every bundled model.
    let custom = compile(
        r"
        model pso_like
        option forwarding
        let ppo = ([R] ; po) | (po & loc & ([W] ; po ; [W]))
        order ppo | fence
        ",
    )
    .expect("checks");
    let verdicts: Vec<bool> = litmus::matrix()
        .iter()
        .map(|r| interp::litmus_allows(&r.test, &custom, &r.outcome))
        .collect();
    let pso_col: Vec<bool> = litmus::matrix().iter().map(|r| r.allowed[2]).collect();
    assert_eq!(verdicts, pso_col, "this spec is PSO in disguise");

    // A model strictly between PSO and Relaxed: load→store order is
    // kept (LB stays forbidden) but load→load order is dropped (CoRR
    // becomes allowed) — the matrix separates it from both neighbours.
    let between = compile(
        r"
        model pso_minus_ll
        option forwarding
        let ppo = ([R] ; po ; [W]) | (po & loc & ([W] ; po ; [W]))
        order ppo | fence
        ",
    )
    .expect("checks");
    let between_verdicts: Vec<bool> = litmus::matrix()
        .iter()
        .map(|r| interp::litmus_allows(&r.test, &between, &r.outcome))
        .collect();
    let relaxed_col: Vec<bool> = litmus::matrix().iter().map(|r| r.allowed[3]).collect();
    assert_ne!(between_verdicts, pso_col, "matrix separates it from PSO");
    assert_ne!(
        between_verdicts, relaxed_col,
        "matrix separates it from Relaxed"
    );
    let corr = litmus::coherence_read_read();
    assert!(interp::litmus_allows(&corr, &between, &[1, 0]));
    let lb = litmus::load_buffering();
    assert!(!interp::litmus_allows(&lb, &between, &[1, 1]));
}
