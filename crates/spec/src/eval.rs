//! A generic evaluator for relation expressions.
//!
//! The same compiled [`RelExpr`] is consumed by two
//! backends: the explicit oracle (conditions are `bool`) and the CNF
//! compiler in the `checkfence` core (conditions are SAT literals).
//! Both implement [`RelBackend`], a tiny condition algebra plus the
//! base-relation membership test, and share this evaluator — so a spec
//! provably means the same thing on both paths.
//!
//! Evaluation produces an `n × n` matrix of conditions over the events
//! of one execution. Operators are pointwise except composition
//! (`∃z. a(x,z) ∧ b(z,y)`, with identity filters special-cased to plain
//! row/column restriction) and transitive closure (Floyd–Warshall over
//! the condition algebra).

use crate::ast::{RelExpr, SetFilter};

/// The condition algebra + base relations of one backend.
pub trait RelBackend {
    /// A membership condition (e.g. `bool` or a SAT literal).
    type C: Clone;

    /// Number of events.
    fn n(&self) -> usize;
    /// The always-true condition.
    fn tt(&self) -> Self::C;
    /// The always-false condition.
    fn ff(&self) -> Self::C;
    /// Is this condition the constant false? (Used for pruning only;
    /// sound to always answer `false`.)
    fn is_ff(&self, c: &Self::C) -> bool;
    /// Conjunction.
    fn and(&mut self, a: Self::C, b: Self::C) -> Self::C;
    /// Disjunction.
    fn or(&mut self, a: Self::C, b: Self::C) -> Self::C;
    /// Negation.
    fn not(&mut self, a: Self::C) -> Self::C;
    /// Membership of the pair `(x, y)` in a built-in relation.
    fn base(&mut self, rel: crate::ast::BaseRel, x: usize, y: usize) -> Self::C;
    /// Membership of event `e` in a set filter (statically decidable in
    /// both backends: event kinds are fixed by the program text).
    fn in_set(&self, set: SetFilter, e: usize) -> bool;
}

/// An `n × n` condition matrix (`m[x][y]` ⇔ `(x, y)` in the relation).
pub type RelMatrix<C> = Vec<Vec<C>>;

/// Evaluates a resolved relation expression to a condition matrix.
///
/// # Panics
///
/// Panics on an unresolved [`RelExpr::Name`] — run the expression
/// through [`crate::check`] first.
pub fn eval<B: RelBackend>(b: &mut B, expr: &RelExpr) -> RelMatrix<B::C> {
    let n = b.n();
    match expr {
        RelExpr::Name(name) => panic!("unresolved relation name `{name}` (spec not checked)"),
        RelExpr::Base(rel) => {
            let mut m = vec![Vec::with_capacity(n); n];
            for (x, row) in m.iter_mut().enumerate() {
                for y in 0..n {
                    let c = b.base(*rel, x, y);
                    row.push(c);
                }
            }
            m
        }
        RelExpr::Filter(set) => {
            let mut m = vec![vec![b.ff(); n]; n];
            for (x, row) in m.iter_mut().enumerate() {
                if b.in_set(*set, x) {
                    row[x] = b.base(crate::ast::BaseRel::Id, x, x);
                }
            }
            m
        }
        RelExpr::Union(p, q) => {
            let mp = eval(b, p);
            let mq = eval(b, q);
            zip(b, mp, mq, |b, x, y| b.or(x, y))
        }
        RelExpr::Inter(p, q) => {
            let mp = eval(b, p);
            let mq = eval(b, q);
            zip(b, mp, mq, |b, x, y| b.and(x, y))
        }
        RelExpr::Diff(p, q) => {
            let mp = eval(b, p);
            let mq = eval(b, q);
            zip(b, mp, mq, |b, x, y| {
                let ny = b.not(y);
                b.and(x, ny)
            })
        }
        RelExpr::Seq(p, q) => {
            // Identity filters compose as row/column restrictions — the
            // cat `[W] ; po ; [R]` idiom stays O(n²).
            if let RelExpr::Filter(s) = &**p {
                let mut m = eval(b, q);
                for (x, row) in m.iter_mut().enumerate() {
                    if !b.in_set(*s, x) {
                        for c in row.iter_mut() {
                            *c = b.ff();
                        }
                    }
                }
                return m;
            }
            if let RelExpr::Filter(s) = &**q {
                let mut m = eval(b, p);
                for row in m.iter_mut() {
                    for (y, c) in row.iter_mut().enumerate() {
                        if !b.in_set(*s, y) {
                            *c = b.ff();
                        }
                    }
                }
                return m;
            }
            let mp = eval(b, p);
            let mq = eval(b, q);
            let mut m = vec![vec![b.ff(); n]; n];
            for x in 0..n {
                for z in 0..n {
                    if b.is_ff(&mp[x][z]) {
                        continue;
                    }
                    for y in 0..n {
                        if b.is_ff(&mq[z][y]) {
                            continue;
                        }
                        let step = b.and(mp[x][z].clone(), mq[z][y].clone());
                        let acc = std::mem::replace(&mut m[x][y], b.ff());
                        m[x][y] = b.or(acc, step);
                    }
                }
            }
            m
        }
        RelExpr::Closure(p) => {
            let mut m = eval(b, p);
            // Floyd–Warshall over the condition algebra: monotone, so
            // in-place accumulation is sound.
            for k in 0..n {
                for x in 0..n {
                    if b.is_ff(&m[x][k]) {
                        continue;
                    }
                    for y in 0..n {
                        if b.is_ff(&m[k][y]) {
                            continue;
                        }
                        let step = b.and(m[x][k].clone(), m[k][y].clone());
                        let acc = std::mem::replace(&mut m[x][y], b.ff());
                        m[x][y] = b.or(acc, step);
                    }
                }
            }
            m
        }
        RelExpr::Inverse(p) => {
            let m = eval(b, p);
            let mut out = vec![vec![b.ff(); n]; n];
            for (x, row) in m.iter().enumerate() {
                for (y, c) in row.iter().enumerate() {
                    out[y][x] = c.clone();
                }
            }
            out
        }
    }
}

fn zip<B: RelBackend>(
    b: &mut B,
    mp: RelMatrix<B::C>,
    mq: RelMatrix<B::C>,
    mut f: impl FnMut(&mut B, B::C, B::C) -> B::C,
) -> RelMatrix<B::C> {
    mp.into_iter()
        .zip(mq)
        .map(|(rp, rq)| rp.into_iter().zip(rq).map(|(x, y)| f(b, x, y)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BaseRel;

    /// A toy backend over explicit edge sets with `bool` conditions.
    struct Toy {
        n: usize,
        po: Vec<(usize, usize)>,
    }

    impl RelBackend for Toy {
        type C = bool;
        fn n(&self) -> usize {
            self.n
        }
        fn tt(&self) -> bool {
            true
        }
        fn ff(&self) -> bool {
            false
        }
        fn is_ff(&self, c: &bool) -> bool {
            !*c
        }
        fn and(&mut self, a: bool, b: bool) -> bool {
            a && b
        }
        fn or(&mut self, a: bool, b: bool) -> bool {
            a || b
        }
        fn not(&mut self, a: bool) -> bool {
            !a
        }
        fn base(&mut self, rel: BaseRel, x: usize, y: usize) -> bool {
            match rel {
                BaseRel::Po => self.po.contains(&(x, y)),
                BaseRel::Id => x == y,
                _ => false,
            }
        }
        fn in_set(&self, set: SetFilter, e: usize) -> bool {
            // Even events are loads, odd are stores; all plain.
            match set {
                SetFilter::Loads => e.is_multiple_of(2),
                SetFilter::Stores => !e.is_multiple_of(2),
                SetFilter::All => true,
                SetFilter::NonAtomic => true,
                SetFilter::Relaxed
                | SetFilter::Acquire
                | SetFilter::Release
                | SetFilter::SeqCst => false,
            }
        }
    }

    #[test]
    fn closure_is_transitive() {
        let mut t = Toy {
            n: 4,
            po: vec![(0, 1), (1, 2), (2, 3)],
        };
        let m = eval(
            &mut t,
            &RelExpr::Closure(Box::new(RelExpr::Base(BaseRel::Po))),
        );
        assert!(m[0][3] && m[0][2] && m[1][3]);
        assert!(!m[3][0] && !m[0][0]);
    }

    #[test]
    fn filters_restrict_endpoints() {
        let mut t = Toy {
            n: 4,
            po: vec![(0, 1), (1, 2), (0, 3)],
        };
        // [R] ; po ; [W]: load-to-store po edges.
        let e = RelExpr::Seq(
            Box::new(RelExpr::Filter(SetFilter::Loads)),
            Box::new(RelExpr::Seq(
                Box::new(RelExpr::Base(BaseRel::Po)),
                Box::new(RelExpr::Filter(SetFilter::Stores)),
            )),
        );
        let m = eval(&mut t, &e);
        assert!(m[0][1] && m[0][3], "load→store kept");
        assert!(!m[1][2], "store-sourced edge dropped");
    }

    #[test]
    fn inverse_transposes() {
        let mut t = Toy {
            n: 3,
            po: vec![(0, 2)],
        };
        let m = eval(
            &mut t,
            &RelExpr::Inverse(Box::new(RelExpr::Base(BaseRel::Po))),
        );
        assert!(m[2][0] && !m[0][2]);
    }

    #[test]
    fn general_composition() {
        let mut t = Toy {
            n: 3,
            po: vec![(0, 1), (1, 2)],
        };
        let e = RelExpr::Seq(
            Box::new(RelExpr::Base(BaseRel::Po)),
            Box::new(RelExpr::Base(BaseRel::Po)),
        );
        let m = eval(&mut t, &e);
        assert!(m[0][2] && !m[0][1] && !m[1][2]);
    }
}
