//! A programmatic builder for [`ModelSpec`]s — the API twin of the
//! `.cfm` text format, for tests and embedded models.
//!
//! # Examples
//!
//! TSO, written with combinators instead of text:
//!
//! ```
//! use cf_spec::builder::{po, stores, loads, SpecBuilder};
//!
//! let tso = SpecBuilder::new("tso")
//!     .forwarding(true)
//!     .order(po().minus(stores().seq(po()).seq(loads())).union(cf_spec::builder::fence()))
//!     .build();
//! assert!(tso.forwarding);
//! assert_eq!(tso.axioms.len(), 1);
//! ```

use crate::ast::{Axiom, AxiomKind, BaseRel, ModelSpec, RelExpr, SetFilter};

/// Program order.
pub fn po() -> RelExpr {
    RelExpr::Base(BaseRel::Po)
}

/// Same-address restriction.
pub fn loc() -> RelExpr {
    RelExpr::Base(BaseRel::Loc)
}

/// Same-thread pairs (excluding identity).
pub fn int() -> RelExpr {
    RelExpr::Base(BaseRel::Int)
}

/// Cross-thread pairs.
pub fn ext() -> RelExpr {
    RelExpr::Base(BaseRel::Ext)
}

/// Identity.
pub fn id() -> RelExpr {
    RelExpr::Base(BaseRel::Id)
}

/// The postulated memory order.
pub fn mo() -> RelExpr {
    RelExpr::Base(BaseRel::Mo)
}

/// Reads-from.
pub fn rf() -> RelExpr {
    RelExpr::Base(BaseRel::Rf)
}

/// Coherence.
pub fn co() -> RelExpr {
    RelExpr::Base(BaseRel::Co)
}

/// From-read.
pub fn fr() -> RelExpr {
    RelExpr::Base(BaseRel::Fr)
}

/// Generic fence-separated pairs (any fence kind matching the pair).
pub fn fence() -> RelExpr {
    RelExpr::Base(BaseRel::Fence(None))
}

/// Fence-separated pairs for a specific fence kind.
pub fn fence_kind(kind: cf_lsl::FenceKind) -> RelExpr {
    RelExpr::Base(BaseRel::Fence(Some(kind)))
}

/// The `[R]` identity filter.
pub fn loads() -> RelExpr {
    RelExpr::Filter(SetFilter::Loads)
}

/// The `[W]` identity filter.
pub fn stores() -> RelExpr {
    RelExpr::Filter(SetFilter::Stores)
}

/// The `[M]` identity filter.
pub fn all_events() -> RelExpr {
    RelExpr::Filter(SetFilter::All)
}

impl RelExpr {
    /// Union `self | other`.
    pub fn union(self, other: RelExpr) -> RelExpr {
        RelExpr::Union(Box::new(self), Box::new(other))
    }

    /// Intersection `self & other`.
    pub fn inter(self, other: RelExpr) -> RelExpr {
        RelExpr::Inter(Box::new(self), Box::new(other))
    }

    /// Difference `self \ other`.
    pub fn minus(self, other: RelExpr) -> RelExpr {
        RelExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Composition `self ; other`.
    pub fn seq(self, other: RelExpr) -> RelExpr {
        RelExpr::Seq(Box::new(self), Box::new(other))
    }

    /// Transitive closure `self+`.
    pub fn plus(self) -> RelExpr {
        RelExpr::Closure(Box::new(self))
    }

    /// Inverse `self^-1`.
    pub fn inv(self) -> RelExpr {
        RelExpr::Inverse(Box::new(self))
    }
}

/// Builds a [`ModelSpec`] incrementally.
pub struct SpecBuilder {
    spec: ModelSpec,
}

impl SpecBuilder {
    /// Starts a spec with the given model name.
    pub fn new(name: impl Into<String>) -> SpecBuilder {
        SpecBuilder {
            spec: ModelSpec {
                name: name.into(),
                forwarding: false,
                atomic_ops: false,
                axioms: Vec::new(),
            },
        }
    }

    /// Sets the store-to-load forwarding option.
    pub fn forwarding(mut self, on: bool) -> SpecBuilder {
        self.spec.forwarding = on;
        self
    }

    /// Sets the atomic-operations (Seriality) option.
    pub fn atomic_ops(mut self, on: bool) -> SpecBuilder {
        self.spec.atomic_ops = on;
        self
    }

    fn axiom(mut self, kind: AxiomKind, rel: RelExpr) -> SpecBuilder {
        assert!(!rel.has_names(), "builder expressions must be name-free");
        self.spec.axioms.push(Axiom {
            kind,
            label: None,
            rel,
        });
        self
    }

    /// Adds an `order` axiom (`rel ⊆ mo`).
    pub fn order(self, rel: RelExpr) -> SpecBuilder {
        self.axiom(AxiomKind::Order, rel)
    }

    /// Adds an `acyclic` axiom.
    pub fn acyclic(self, rel: RelExpr) -> SpecBuilder {
        self.axiom(AxiomKind::Acyclic, rel)
    }

    /// Adds an `irreflexive` axiom.
    pub fn irreflexive(self, rel: RelExpr) -> SpecBuilder {
        self.axiom(AxiomKind::Irreflexive, rel)
    }

    /// Adds an `empty` axiom.
    pub fn empty(self, rel: RelExpr) -> SpecBuilder {
        self.axiom(AxiomKind::Empty, rel)
    }

    /// Finishes the spec.
    pub fn build(self) -> ModelSpec {
        self.spec
    }
}
