//! Well-formedness checking and name resolution.
//!
//! Turns a [`RawSpec`] into a [`ModelSpec`]: every identifier is
//! resolved against the built-in relations and earlier `let`
//! definitions (inlined), options are validated, and shadowing /
//! redefinition are rejected with spanned errors.

use cf_lsl::FenceKind;

use crate::ast::{Axiom, BaseRel, ModelSpec, RawSpec, RelExpr};
use crate::error::SpecError;

/// The built-in relation for a surface name, if any.
pub fn builtin(name: &str) -> Option<BaseRel> {
    Some(match name {
        "po" => BaseRel::Po,
        "loc" => BaseRel::Loc,
        "int" => BaseRel::Int,
        "ext" => BaseRel::Ext,
        "id" => BaseRel::Id,
        "mo" => BaseRel::Mo,
        "rf" => BaseRel::Rf,
        "co" => BaseRel::Co,
        "fr" => BaseRel::Fr,
        "fence" => BaseRel::Fence(None),
        "fence_ll" => BaseRel::Fence(Some(FenceKind::LoadLoad)),
        "fence_ls" => BaseRel::Fence(Some(FenceKind::LoadStore)),
        "fence_sl" => BaseRel::Fence(Some(FenceKind::StoreLoad)),
        "fence_ss" => BaseRel::Fence(Some(FenceKind::StoreStore)),
        "rmw" => BaseRel::Rmw,
        "fence_acq" => BaseRel::FenceAcq,
        "fence_rel" => BaseRel::FenceRel,
        "fence_sc" => BaseRel::FenceSc,
        _ => return None,
    })
}

fn resolve(expr: &RelExpr, lets: &[(String, RelExpr)], line: usize) -> Result<RelExpr, SpecError> {
    Ok(match expr {
        RelExpr::Name(n) => {
            if let Some((_, def)) = lets.iter().rev().find(|(name, _)| name == n) {
                def.clone()
            } else if let Some(b) = builtin(n) {
                RelExpr::Base(b)
            } else {
                return Err(SpecError::new(
                    line,
                    format!("unknown relation `{n}` (not a builtin or earlier `let`)"),
                ));
            }
        }
        RelExpr::Base(b) => RelExpr::Base(*b),
        RelExpr::Filter(s) => RelExpr::Filter(*s),
        RelExpr::Union(a, b) => RelExpr::Union(
            Box::new(resolve(a, lets, line)?),
            Box::new(resolve(b, lets, line)?),
        ),
        RelExpr::Inter(a, b) => RelExpr::Inter(
            Box::new(resolve(a, lets, line)?),
            Box::new(resolve(b, lets, line)?),
        ),
        RelExpr::Diff(a, b) => RelExpr::Diff(
            Box::new(resolve(a, lets, line)?),
            Box::new(resolve(b, lets, line)?),
        ),
        RelExpr::Seq(a, b) => RelExpr::Seq(
            Box::new(resolve(a, lets, line)?),
            Box::new(resolve(b, lets, line)?),
        ),
        RelExpr::Closure(a) => RelExpr::Closure(Box::new(resolve(a, lets, line)?)),
        RelExpr::Inverse(a) => RelExpr::Inverse(Box::new(resolve(a, lets, line)?)),
    })
}

/// Checks a raw specification and resolves every name.
///
/// # Errors
///
/// Returns a spanned [`SpecError`] on unknown options or relations,
/// duplicate options, and `let` names that redefine a builtin or an
/// earlier definition.
pub fn check(raw: &RawSpec) -> Result<ModelSpec, SpecError> {
    let mut forwarding = false;
    let mut atomic_ops = false;
    let mut seen_opts: Vec<&str> = Vec::new();
    for (opt, line) in &raw.options {
        if seen_opts.contains(&opt.as_str()) {
            return Err(SpecError::new(*line, format!("duplicate option `{opt}`")));
        }
        seen_opts.push(opt);
        match opt.as_str() {
            "forwarding" => forwarding = true,
            "atomic_ops" => atomic_ops = true,
            other => {
                return Err(SpecError::new(
                    *line,
                    format!("unknown option `{other}` (expected `forwarding` or `atomic_ops`)"),
                ))
            }
        }
    }

    let mut lets: Vec<(String, RelExpr)> = Vec::new();
    for (name, expr, line) in &raw.lets {
        if builtin(name).is_some() {
            return Err(SpecError::new(
                *line,
                format!("`{name}` redefines a built-in relation"),
            ));
        }
        if lets.iter().any(|(n, _)| n == name) {
            return Err(SpecError::new(
                *line,
                format!("`{name}` is already defined"),
            ));
        }
        let resolved = resolve(expr, &lets, *line)?;
        lets.push((name.clone(), resolved));
    }

    let mut axioms = Vec::new();
    for (ax, line) in &raw.axioms {
        let rel = resolve(&ax.rel, &lets, *line)?;
        debug_assert!(!rel.has_names());
        axioms.push(Axiom {
            kind: ax.kind,
            label: ax.label.clone(),
            rel,
        });
    }

    Ok(ModelSpec {
        name: raw.name.clone(),
        forwarding,
        atomic_ops,
        axioms,
    })
}

/// Parses and checks `.cfm` source in one step — the main entry point.
///
/// # Errors
///
/// Returns a spanned [`SpecError`] for lexical, syntactic or
/// well-formedness problems.
pub fn compile(source: &str) -> Result<ModelSpec, SpecError> {
    check(&crate::parse::parse(source)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_lets_in_order() {
        let m = compile("model m\nlet a = po\nlet b = a & loc\norder b").expect("checks");
        assert_eq!(
            m.axioms[0].rel,
            RelExpr::Inter(
                Box::new(RelExpr::Base(BaseRel::Po)),
                Box::new(RelExpr::Base(BaseRel::Loc))
            )
        );
    }

    #[test]
    fn rejects_unknown_names_and_redefinitions() {
        assert!(compile("model m\norder nonsense").is_err());
        assert!(compile("model m\nlet po = loc").is_err());
        assert!(compile("model m\nlet a = po\nlet a = loc").is_err());
        assert!(
            compile("model m\nlet b = c\nlet c = po").is_err(),
            "forward ref"
        );
    }

    #[test]
    fn validates_options() {
        let m = compile("model m\noption forwarding").expect("checks");
        assert!(m.forwarding && !m.atomic_ops);
        assert!(compile("model m\noption bogus").is_err());
        assert!(compile("model m\noption forwarding\noption forwarding").is_err());
    }

    #[test]
    fn static_classification() {
        let m = compile("model m\norder po | fence\nempty rf & loc").expect("checks");
        assert!(m.axioms[0].rel.is_static());
        assert!(!m.axioms[1].rel.is_static());
        assert!(m.has_static_order_axioms());
    }
}
