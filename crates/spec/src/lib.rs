//! # cf-spec — declarative axiomatic memory-model specifications
//!
//! CheckFence defines memory models axiomatically (§2.3.2); this crate
//! turns those axioms into *data*. A small cat-style language (the
//! `.cfm` text format, plus a [`builder`] API) describes a model as
//! named relations over the events of an execution — program order
//! `po`, same-address `loc`, the postulated total memory order `mo`,
//! the communication relations `rf`/`co`/`fr`, fence edges — combined
//! with union/intersection/difference/composition/closure, and
//! constrained by `order`/`acyclic`/`irreflexive`/`empty` axioms.
//!
//! A compiled [`ModelSpec`] has **two backends sharing one evaluator**
//! ([`eval()`]):
//!
//! * the explicit-state oracle ([`interp`]) decides litmus tests and
//!   annotated traces by brute force, replacing the hand-written
//!   per-`Mode` rule checks as the reference semantics for spec-defined
//!   models;
//! * the `checkfence` core compiles the same spec into the CNF relation
//!   encoding, gated behind a per-spec *selector literal*, so user
//!   models slot into incremental `CheckSession`s next to the
//!   built-ins (encode once, toggle models as assumptions).
//!
//! The five built-in modes ship as bundled `.cfm` files ([`bundled`]),
//! each verified equivalent to its enum twin.
//!
//! ## Semantics
//!
//! A spec constrains one postulated total memory order `mo` (this is
//! the paper's framework: "the execution is allowed iff there exists a
//! total order such that ..."). `order r` asserts `r ⊆ mo`; `acyclic r`
//! asserts `r ∪ mo` is acyclic, which for a total `mo` is `order`
//! plus irreflexivity; `empty`/`irreflexive` are emptiness checks.
//! Value axioms (a load returns the most recent visible store, §2.3.2
//! axioms 2–3), atomic-block contiguity and init-before-everything are
//! framework-level and apply to every model; the `forwarding` option
//! controls whether a thread's own buffered stores are visible early,
//! and `atomic_ops` requests Seriality's whole-operation atomicity.
//!
//! ## Example
//!
//! ```
//! use cf_spec::{compile, interp};
//! use cf_memmodel::{litmus, Mode};
//!
//! // TSO as a user-written spec:
//! let tso = compile(r"
//!     model my_tso
//!     option forwarding
//!     let ppo = po \ ([W] ; po ; [R])
//!     order ppo | fence
//! ").expect("well-formed");
//!
//! let sb = litmus::store_buffering();
//! assert!(interp::litmus_allows(&sb, &tso, &[0, 0]));       // store buffering
//! assert!(!litmus_allows_mp(&tso));                          // loads stay ordered
//! # fn litmus_allows_mp(tso: &cf_spec::ModelSpec) -> bool {
//! #     cf_spec::interp::litmus_allows(&litmus::message_passing(), tso, &[1, 0])
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ast;
mod error;
mod parse;

pub mod builder;
pub mod bundled;
pub mod check;
pub mod eval;
pub mod interp;

pub use ast::{Axiom, AxiomKind, BaseRel, ModelSpec, RawSpec, RelExpr, SetFilter};
pub use check::{builtin, compile};
pub use error::SpecError;
pub use eval::{eval, RelBackend, RelMatrix};
pub use parse::parse;
