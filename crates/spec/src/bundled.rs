//! The bundled `.cfm` specifications shipped under `specs/` at the
//! workspace root: the five built-in [`Mode`]s re-expressed as
//! declarative specs, each verified equivalent to its enum twin by the
//! litmus-matrix and checker-equivalence test suites.

use cf_memmodel::Mode;

use crate::ast::ModelSpec;
use crate::check::compile;

/// `specs/serial.cfm`.
pub const SERIAL: &str = include_str!("../../../specs/serial.cfm");
/// `specs/sc.cfm`.
pub const SC: &str = include_str!("../../../specs/sc.cfm");
/// `specs/tso.cfm`.
pub const TSO: &str = include_str!("../../../specs/tso.cfm");
/// `specs/pso.cfm`.
pub const PSO: &str = include_str!("../../../specs/pso.cfm");
/// `specs/relaxed.cfm`.
pub const RELAXED: &str = include_str!("../../../specs/relaxed.cfm");

/// Every bundled spec as `(file name, source)`, strongest model first.
pub fn sources() -> [(&'static str, &'static str); 5] {
    [
        ("serial.cfm", SERIAL),
        ("sc.cfm", SC),
        ("tso.cfm", TSO),
        ("pso.cfm", PSO),
        ("relaxed.cfm", RELAXED),
    ]
}

/// Compiles every bundled spec, strongest model first (the same order
/// as [`Mode::all`]).
///
/// # Panics
///
/// Panics if a bundled file fails to compile — a build-breaking bug
/// caught by the loader test.
pub fn all() -> Vec<ModelSpec> {
    sources()
        .iter()
        .map(|(name, src)| {
            compile(src).unwrap_or_else(|e| panic!("bundled spec {name} is broken: {e}"))
        })
        .collect()
}

/// The bundled spec equivalent to a built-in mode.
///
/// # Panics
///
/// Panics if the bundled file fails to compile.
pub fn for_mode(mode: Mode) -> ModelSpec {
    let src = match mode {
        Mode::Serial => SERIAL,
        Mode::Sc => SC,
        Mode::Tso => TSO,
        Mode::Pso => PSO,
        Mode::Relaxed => RELAXED,
    };
    compile(src).unwrap_or_else(|e| panic!("bundled spec for {} is broken: {e}", mode.name()))
}

/// The built-in mode a bundled spec name corresponds to, if any.
pub fn mode_twin(spec_name: &str) -> Option<Mode> {
    Mode::all().into_iter().find(|m| m.name() == spec_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_specs_compile_and_name_their_modes() {
        let specs = all();
        assert_eq!(specs.len(), 5);
        for (spec, mode) in specs.iter().zip(Mode::all()) {
            assert_eq!(spec.name, mode.name());
            assert_eq!(mode_twin(&spec.name), Some(mode));
            assert_eq!(
                spec.forwarding,
                mode.allows_forwarding(),
                "{}: forwarding option must match the enum",
                spec.name
            );
            assert_eq!(
                spec.atomic_ops,
                mode.operations_atomic(),
                "{}: atomicity option must match the enum",
                spec.name
            );
            assert!(spec.has_static_order_axioms());
        }
    }
}
