//! The bundled `.cfm` specifications shipped under `specs/` at the
//! workspace root: the five built-in [`Mode`]s re-expressed as
//! declarative specs, each verified equivalent to its enum twin by the
//! litmus-matrix and checker-equivalence test suites.

use cf_memmodel::Mode;

use crate::ast::ModelSpec;
use crate::check::compile;

/// `specs/serial.cfm`.
pub const SERIAL: &str = include_str!("../../../specs/serial.cfm");
/// `specs/sc.cfm`.
pub const SC: &str = include_str!("../../../specs/sc.cfm");
/// `specs/tso.cfm`.
pub const TSO: &str = include_str!("../../../specs/tso.cfm");
/// `specs/pso.cfm`.
pub const PSO: &str = include_str!("../../../specs/pso.cfm");
/// `specs/relaxed.cfm`.
pub const RELAXED: &str = include_str!("../../../specs/relaxed.cfm");
/// `specs/c11.cfm` — per-access C11-style orderings (no enum twin).
pub const C11: &str = include_str!("../../../specs/c11.cfm");
/// `specs/rc11.cfm` — `c11` plus the no-thin-air axiom (no enum twin).
pub const RC11: &str = include_str!("../../../specs/rc11.cfm");

/// Every bundled spec as `(file name, source)`: the five mode twins
/// strongest first, then the ordering-annotated models (which have no
/// built-in twin).
pub fn sources() -> [(&'static str, &'static str); 7] {
    [
        ("serial.cfm", SERIAL),
        ("sc.cfm", SC),
        ("tso.cfm", TSO),
        ("pso.cfm", PSO),
        ("relaxed.cfm", RELAXED),
        ("c11.cfm", C11),
        ("rc11.cfm", RC11),
    ]
}

/// Compiles every bundled spec, in [`sources`] order (the five mode
/// twins follow [`Mode::all`]; `c11`/`rc11` trail them).
///
/// # Panics
///
/// Panics if a bundled file fails to compile — a build-breaking bug
/// caught by the loader test.
pub fn all() -> Vec<ModelSpec> {
    sources()
        .iter()
        .map(|(name, src)| {
            compile(src).unwrap_or_else(|e| panic!("bundled spec {name} is broken: {e}"))
        })
        .collect()
}

/// The bundled spec equivalent to a built-in mode.
///
/// # Panics
///
/// Panics if the bundled file fails to compile.
pub fn for_mode(mode: Mode) -> ModelSpec {
    let src = match mode {
        Mode::Serial => SERIAL,
        Mode::Sc => SC,
        Mode::Tso => TSO,
        Mode::Pso => PSO,
        Mode::Relaxed => RELAXED,
    };
    compile(src).unwrap_or_else(|e| panic!("bundled spec for {} is broken: {e}", mode.name()))
}

/// The built-in mode a bundled spec name corresponds to, if any.
pub fn mode_twin(spec_name: &str) -> Option<Mode> {
    Mode::all().into_iter().find(|m| m.name() == spec_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_specs_compile_and_name_their_modes() {
        let specs = all();
        assert_eq!(specs.len(), 7);
        let mut twinned = 0;
        for spec in &specs {
            let Some(mode) = mode_twin(&spec.name) else {
                continue;
            };
            twinned += 1;
            assert_eq!(
                spec.forwarding,
                mode.allows_forwarding(),
                "{}: forwarding option must match the enum",
                spec.name
            );
            assert_eq!(
                spec.atomic_ops,
                mode.operations_atomic(),
                "{}: atomicity option must match the enum",
                spec.name
            );
        }
        assert_eq!(twinned, 5, "every built-in mode has a bundled twin");
        // The mode twins come first, in `Mode::all` order.
        for (spec, mode) in specs.iter().zip(Mode::all()) {
            assert_eq!(spec.name, mode.name());
        }
        // The mode twins stay on the oracle's static fast path; the
        // ordering models derive `sw` from `rf` and take the dynamic
        // per-candidate-order path.
        for spec in &specs {
            assert_eq!(
                spec.has_static_order_axioms(),
                mode_twin(&spec.name).is_some(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn ordering_models_have_no_mode_twin() {
        assert_eq!(mode_twin("c11"), None);
        assert_eq!(mode_twin("rc11"), None);
    }
}
