//! The explicit-state oracle: evaluating a compiled specification
//! against concrete traces and litmus tests by brute force.
//!
//! This replaces the hand-written per-[`Mode`](cf_memmodel::Mode) rule
//! checks of `cf-memmodel` as the reference semantics for spec-defined
//! models: it enumerates linearizations of the events (the existential
//! quantifier over the total memory order `mo`) and accepts a trace iff
//! some order satisfies every axiom plus the value axioms 2–3 of
//! §2.3.2.
//!
//! Axioms whose relations are *static* (no `mo`/`rf`/`co`/`fr`) are
//! evaluated once up front: `order`/`acyclic` axioms become required
//! edges that prune the search, `empty`/`irreflexive` axioms are
//! decided immediately. Dynamic axioms are re-evaluated per candidate
//! order with the derived reads-from relation.
//!
//! Model-independent execution structure is enforced exactly as in the
//! legacy oracle: atomic blocks execute in program order and
//! contiguously, and initial values are read when no store is visible.

use std::collections::{BTreeSet, HashMap};

use cf_lsl::{FenceSem, MemOrder, Value};
use cf_memmodel::{sem_orders, AccessKind, ConcreteTrace, Litmus, LitmusOp, TraceItem};

use crate::ast::{Axiom, AxiomKind, BaseRel, ModelSpec, SetFilter};
use crate::eval::{eval, RelBackend};

/// One event of the normalized program shared by both entry points.
struct PEvent {
    thread: usize,
    pos: usize,
    kind: AccessKind,
    addr: Vec<u32>,
    group: Option<u32>,
    ord: MemOrder,
}

struct PFence {
    thread: usize,
    pos: usize,
    sem: FenceSem,
}

struct Prog {
    events: Vec<PEvent>,
    fences: Vec<PFence>,
}

impl Prog {
    /// Some fence between `x` and `y` (same thread) satisfying `pred`.
    fn fence_between(&self, x: &PEvent, y: &PEvent, pred: impl Fn(FenceSem) -> bool) -> bool {
        self.fences
            .iter()
            .any(|f| f.thread == x.thread && f.pos > x.pos && f.pos < y.pos && pred(f.sem))
    }
}

// ----------------------------------------------------------- backends

/// Static relations only (`mo`-free fragments).
struct StaticCtx<'a> {
    prog: &'a Prog,
}

fn static_base(prog: &Prog, rel: BaseRel, x: usize, y: usize) -> bool {
    let (ex, ey) = (&prog.events[x], &prog.events[y]);
    match rel {
        BaseRel::Po => ex.thread == ey.thread && ex.pos < ey.pos,
        BaseRel::Loc => ex.addr == ey.addr,
        BaseRel::Int => ex.thread == ey.thread && x != y,
        BaseRel::Ext => ex.thread != ey.thread,
        BaseRel::Id => x == y,
        BaseRel::Fence(k) => {
            ex.thread == ey.thread
                && ex.pos < ey.pos
                && prog.fence_between(ex, ey, |sem| match (k, sem) {
                    // Generic `fence`: any fence whose semantics order
                    // this pair of access kinds.
                    (None, sem) => sem_orders(sem, ex.kind, ey.kind),
                    // `fence_xy`: classic fences of that kind only (the
                    // pair's kinds must still match the X-Y signature).
                    (Some(want), FenceSem::Classic(have)) => {
                        want == have && sem_orders(sem, ex.kind, ey.kind)
                    }
                    (Some(_), FenceSem::C11(_)) => false,
                })
        }
        BaseRel::FenceAcq => {
            ex.thread == ey.thread
                && ex.pos < ey.pos
                && prog.fence_between(
                    ex,
                    ey,
                    |sem| matches!(sem, FenceSem::C11(o) if o.is_acquire()),
                )
        }
        BaseRel::FenceRel => {
            ex.thread == ey.thread
                && ex.pos < ey.pos
                && prog.fence_between(
                    ex,
                    ey,
                    |sem| matches!(sem, FenceSem::C11(o) if o.is_release()),
                )
        }
        BaseRel::FenceSc => {
            ex.thread == ey.thread
                && ex.pos < ey.pos
                && prog.fence_between(ex, ey, |sem| sem == FenceSem::C11(MemOrder::SeqCst))
        }
        // Read-modify-write: the load and store halves of one atomic
        // group targeting the same location. This is a *derived* notion
        // — an atomic load/store pair to one address is exactly an RMW
        // in this framework — which keeps it aligned with the CNF
        // backend without a dedicated event field.
        BaseRel::Rmw => {
            ex.kind == AccessKind::Load
                && ey.kind == AccessKind::Store
                && ex.thread == ey.thread
                && ex.pos < ey.pos
                && ex.group.is_some()
                && ex.group == ey.group
                && ex.addr == ey.addr
        }
        BaseRel::Mo | BaseRel::Rf | BaseRel::Co | BaseRel::Fr => {
            panic!("dynamic relation {} in a static context", rel.name())
        }
    }
}

fn in_set(prog: &Prog, set: SetFilter, e: usize) -> bool {
    let ev = &prog.events[e];
    match set {
        SetFilter::Loads => ev.kind == AccessKind::Load,
        SetFilter::Stores => ev.kind == AccessKind::Store,
        SetFilter::All => true,
        SetFilter::Relaxed => ev.ord.is_atomic(),
        SetFilter::Acquire => ev.ord.is_acquire(),
        SetFilter::Release => ev.ord.is_release(),
        SetFilter::SeqCst => ev.ord == MemOrder::SeqCst,
        SetFilter::NonAtomic => ev.ord == MemOrder::Plain,
    }
}

impl RelBackend for StaticCtx<'_> {
    type C = bool;
    fn n(&self) -> usize {
        self.prog.events.len()
    }
    fn tt(&self) -> bool {
        true
    }
    fn ff(&self) -> bool {
        false
    }
    fn is_ff(&self, c: &bool) -> bool {
        !*c
    }
    fn and(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    fn or(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
    fn not(&mut self, a: bool) -> bool {
        !a
    }
    fn base(&mut self, rel: BaseRel, x: usize, y: usize) -> bool {
        static_base(self.prog, rel, x, y)
    }
    fn in_set(&self, set: SetFilter, e: usize) -> bool {
        in_set(self.prog, set, e)
    }
}

/// All relations, given a candidate order and the derived reads-from
/// sources (`rf_src[l] = Some(store)`; `None` means `l` reads the
/// initial value).
struct DynCtx<'a> {
    prog: &'a Prog,
    pos: &'a [usize],
    rf_src: &'a [Option<usize>],
}

impl RelBackend for DynCtx<'_> {
    type C = bool;
    fn n(&self) -> usize {
        self.prog.events.len()
    }
    fn tt(&self) -> bool {
        true
    }
    fn ff(&self) -> bool {
        false
    }
    fn is_ff(&self, c: &bool) -> bool {
        !*c
    }
    fn and(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    fn or(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
    fn not(&mut self, a: bool) -> bool {
        !a
    }
    fn base(&mut self, rel: BaseRel, x: usize, y: usize) -> bool {
        let (ex, ey) = (&self.prog.events[x], &self.prog.events[y]);
        match rel {
            BaseRel::Mo => x != y && self.pos[x] < self.pos[y],
            BaseRel::Rf => ey.kind == AccessKind::Load && self.rf_src[y] == Some(x),
            BaseRel::Co => {
                ex.kind == AccessKind::Store
                    && ey.kind == AccessKind::Store
                    && ex.addr == ey.addr
                    && x != y
                    && self.pos[x] < self.pos[y]
            }
            BaseRel::Fr => {
                ex.kind == AccessKind::Load
                    && ey.kind == AccessKind::Store
                    && ex.addr == ey.addr
                    && match self.rf_src[x] {
                        // Reading the initial value: fr-before every
                        // same-address store.
                        None => true,
                        Some(s0) => s0 != y && self.pos[s0] < self.pos[y],
                    }
            }
            _ => static_base(self.prog, rel, x, y),
        }
    }
    fn in_set(&self, set: SetFilter, e: usize) -> bool {
        in_set(self.prog, set, e)
    }
}

// ------------------------------------------------- static compilation

struct CompiledStatic<'s> {
    /// Required `x <mo y` edges from static `order`/`acyclic` axioms,
    /// plus atomic-block internal program order.
    edges: Vec<(usize, usize)>,
    /// Axioms needing per-order evaluation.
    dynamic: Vec<&'s Axiom>,
    /// A static axiom is violated by the program text alone: no
    /// execution is allowed.
    impossible: bool,
}

fn compile_static<'s>(spec: &'s ModelSpec, prog: &Prog) -> CompiledStatic<'s> {
    let n = prog.events.len();
    let mut out = CompiledStatic {
        edges: Vec::new(),
        dynamic: Vec::new(),
        impossible: false,
    };
    for ax in &spec.axioms {
        if !ax.rel.is_static() {
            out.dynamic.push(ax);
            continue;
        }
        let m = eval(&mut StaticCtx { prog }, &ax.rel);
        match ax.kind {
            AxiomKind::Order | AxiomKind::Acyclic => {
                for (x, row) in m.iter().enumerate() {
                    for (y, &member) in row.iter().enumerate() {
                        if !member {
                            continue;
                        }
                        if x == y {
                            out.impossible = true;
                        } else {
                            out.edges.push((x, y));
                        }
                    }
                }
            }
            AxiomKind::Irreflexive => {
                if (0..n).any(|x| m[x][x]) {
                    out.impossible = true;
                }
            }
            AxiomKind::Empty => {
                if m.iter().any(|row| row.iter().any(|&c| c)) {
                    out.impossible = true;
                }
            }
        }
    }
    // Atomic blocks execute in program order internally (model
    // independent, as in the legacy oracle).
    for x in 0..n {
        for y in 0..n {
            let (ex, ey) = (&prog.events[x], &prog.events[y]);
            if ex.thread == ey.thread
                && ex.pos < ey.pos
                && ex.group.is_some()
                && ex.group == ey.group
            {
                out.edges.push((x, y));
            }
        }
    }
    out
}

fn dynamic_ok(dynamic: &[&Axiom], prog: &Prog, pos: &[usize], rf_src: &[Option<usize>]) -> bool {
    let n = prog.events.len();
    for ax in dynamic {
        let m = eval(&mut DynCtx { prog, pos, rf_src }, &ax.rel);
        let ok = match ax.kind {
            AxiomKind::Order | AxiomKind::Acyclic => {
                (0..n).all(|x| (0..n).all(|y| !m[x][y] || (x != y && pos[x] < pos[y])))
            }
            AxiomKind::Irreflexive => (0..n).all(|x| !m[x][x]),
            AxiomKind::Empty => m.iter().all(|row| row.iter().all(|&c| !c)),
        };
        if !ok {
            return false;
        }
    }
    true
}

// ------------------------------------------------------- trace oracle

/// Does some total memory order satisfy `spec` for this annotated
/// trace? The spec-driven analogue of
/// [`ConcreteTrace::allowed`](cf_memmodel::ConcreteTrace::allowed).
///
/// # Panics
///
/// Panics if the trace has more than 12 accesses (the search is
/// factorial; the SAT path handles bigger programs).
pub fn trace_allowed(trace: &ConcreteTrace, spec: &ModelSpec) -> bool {
    let mut events = Vec::new();
    let mut values = Vec::new();
    let mut fences = Vec::new();
    for (t, items) in trace.threads.iter().enumerate() {
        for (i, item) in items.iter().enumerate() {
            match item {
                TraceItem::Access {
                    kind,
                    addr,
                    value,
                    group,
                    ord,
                } => {
                    events.push(PEvent {
                        thread: t,
                        pos: i,
                        kind: *kind,
                        addr: addr.clone(),
                        group: *group,
                        ord: *ord,
                    });
                    values.push(value.clone());
                }
                TraceItem::Fence(k) => fences.push(PFence {
                    thread: t,
                    pos: i,
                    sem: FenceSem::Classic(*k),
                }),
                TraceItem::CFence(o) => fences.push(PFence {
                    thread: t,
                    pos: i,
                    sem: FenceSem::C11(*o),
                }),
            }
        }
    }
    assert!(
        events.len() <= 12,
        "explicit-state check limited to 12 accesses"
    );
    let prog = Prog { events, fences };
    let compiled = compile_static(spec, &prog);
    if compiled.impossible {
        return false;
    }
    let n = prog.events.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    search_trace(
        &prog,
        &values,
        &trace.init,
        spec,
        &compiled,
        &mut order,
        &mut used,
    )
}

#[allow(clippy::too_many_arguments)]
fn search_trace(
    prog: &Prog,
    values: &[Value],
    init: &HashMap<Vec<u32>, Value>,
    spec: &ModelSpec,
    compiled: &CompiledStatic<'_>,
    order: &mut Vec<usize>,
    used: &mut Vec<bool>,
) -> bool {
    let n = prog.events.len();
    if order.len() == n {
        let pos = positions(order);
        let Some(rf_src) = trace_values_ok(prog, values, init, &pos, spec.forwarding) else {
            return false;
        };
        return dynamic_ok(&compiled.dynamic, prog, &pos, &rf_src);
    }
    'next: for c in 0..n {
        if used[c] {
            continue;
        }
        for &(a, b) in &compiled.edges {
            if b == c && !used[a] {
                continue 'next;
            }
        }
        // Atomic group contiguity (as in the legacy oracle): an open
        // group must finish before anything else runs.
        if let Some(&last) = order.last() {
            let open_group = prog.events[last].group.filter(|g| {
                prog.events.iter().enumerate().any(|(i, e)| {
                    !used[i] && e.group == Some(*g) && e.thread == prog.events[last].thread
                })
            });
            if let Some(g) = open_group {
                if prog.events[c].group != Some(g)
                    || prog.events[c].thread != prog.events[last].thread
                {
                    continue 'next;
                }
            }
        }
        used[c] = true;
        order.push(c);
        if search_trace(prog, values, init, spec, compiled, order, used) {
            used[c] = false;
            order.pop();
            return true;
        }
        used[c] = false;
        order.pop();
    }
    false
}

fn positions(order: &[usize]) -> Vec<usize> {
    let mut pos = vec![0; order.len()];
    for (p, &e) in order.iter().enumerate() {
        pos[e] = p;
    }
    pos
}

/// Checks the value axioms 2–3 against annotated values and returns the
/// derived reads-from sources on success.
fn trace_values_ok(
    prog: &Prog,
    values: &[Value],
    init: &HashMap<Vec<u32>, Value>,
    pos: &[usize],
    forwarding: bool,
) -> Option<Vec<Option<usize>>> {
    let n = prog.events.len();
    let mut rf_src = vec![None; n];
    for l in 0..n {
        let el = &prog.events[l];
        if el.kind != AccessKind::Load {
            continue;
        }
        let mut max_store: Option<usize> = None;
        for s in 0..n {
            let es = &prog.events[s];
            if es.kind != AccessKind::Store || es.addr != el.addr {
                continue;
            }
            let before_m = pos[s] < pos[l];
            let forwarded = forwarding && es.thread == el.thread && es.pos < el.pos;
            if before_m || forwarded {
                max_store = Some(match max_store {
                    None => s,
                    Some(m) if pos[s] > pos[m] => s,
                    Some(m) => m,
                });
            }
        }
        let expected = match max_store {
            Some(s) => values[s].clone(),
            None => init.get(&el.addr).cloned().unwrap_or(Value::Undefined),
        };
        if values[l] != expected {
            return None;
        }
        rf_src[l] = max_store;
    }
    Some(rf_src)
}

/// Names the axioms that forbid `trace` under `spec`: every axiom whose
/// *individual* removal makes the trace allowed, by its `as` label or a
/// positional fallback. Returns the empty vector when the trace is
/// allowed, and the full axiom list when only removing several axioms
/// together admits the trace (a joint violation). A trace rejected by
/// the value axioms alone (no candidate order reproduces the annotated
/// loads, whatever the spec says) has no violated axiom to name and
/// also yields the empty vector.
///
/// This is the diagnostic behind counterexample reports: the checker
/// replays a witness execution against a reference spec and names the
/// axiom the witness breaks.
///
/// # Panics
///
/// Panics if the trace has more than 12 accesses (see
/// [`trace_allowed`]).
pub fn violated_axioms(trace: &ConcreteTrace, spec: &ModelSpec) -> Vec<String> {
    if trace_allowed(trace, spec) {
        return Vec::new();
    }
    let name_of = |i: usize, ax: &Axiom| {
        ax.label
            .clone()
            .unwrap_or_else(|| format!("{} axiom #{i}", ax.kind.name()))
    };
    let mut blocking = Vec::new();
    for i in 0..spec.axioms.len() {
        let mut reduced = spec.clone();
        reduced.axioms.remove(i);
        if trace_allowed(trace, &reduced) {
            blocking.push(name_of(i, &spec.axioms[i]));
        }
    }
    if !blocking.is_empty() {
        return blocking;
    }
    // No single axiom is responsible. If the axioms are jointly to
    // blame (the trace satisfies the value axioms under *some* order),
    // report all of them; otherwise the rejection is value-level.
    let mut bare = spec.clone();
    bare.axioms.clear();
    if trace_allowed(trace, &bare) {
        spec.axioms
            .iter()
            .enumerate()
            .map(|(i, ax)| name_of(i, ax))
            .collect()
    } else {
        Vec::new()
    }
}

// ------------------------------------------------------ litmus oracle

/// Enumerates all final register outcomes allowed by `spec` — the
/// spec-driven analogue of
/// [`Litmus::allowed_outcomes`](cf_memmodel::Litmus::allowed_outcomes).
///
/// # Panics
///
/// Panics if the test has more than 10 accesses.
pub fn litmus_outcomes(test: &Litmus, spec: &ModelSpec) -> BTreeSet<Vec<i64>> {
    let mut events = Vec::new();
    let mut fences = Vec::new();
    let mut store_val = Vec::new();
    let mut load_reg = Vec::new();
    for (t, ops) in test.threads.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                LitmusOp::Store { addr, value, ord } => {
                    events.push(PEvent {
                        thread: t,
                        pos: i,
                        kind: AccessKind::Store,
                        addr: vec![addr],
                        group: None,
                        ord,
                    });
                    store_val.push(value);
                    load_reg.push(None);
                }
                LitmusOp::Load { addr, reg, ord } => {
                    events.push(PEvent {
                        thread: t,
                        pos: i,
                        kind: AccessKind::Load,
                        addr: vec![addr],
                        group: None,
                        ord,
                    });
                    store_val.push(0);
                    load_reg.push(Some(reg));
                }
                LitmusOp::Fence(k) => fences.push(PFence {
                    thread: t,
                    pos: i,
                    sem: FenceSem::Classic(k),
                }),
                LitmusOp::CFence(o) => fences.push(PFence {
                    thread: t,
                    pos: i,
                    sem: FenceSem::C11(o),
                }),
            }
        }
    }
    assert!(
        events.len() <= 10,
        "litmus enumeration limited to 10 accesses"
    );
    let prog = Prog { events, fences };
    let compiled = compile_static(spec, &prog);
    let mut outcomes = BTreeSet::new();
    if compiled.impossible {
        return outcomes;
    }
    let n = prog.events.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    litmus_rec(
        &prog,
        spec,
        &compiled,
        &store_val,
        &load_reg,
        test.num_regs,
        &mut order,
        &mut used,
        &mut outcomes,
    );
    outcomes
}

/// Is the given register outcome possible under `spec`?
pub fn litmus_allows(test: &Litmus, spec: &ModelSpec, outcome: &[i64]) -> bool {
    litmus_outcomes(test, spec).contains(outcome)
}

#[allow(clippy::too_many_arguments)]
fn litmus_rec(
    prog: &Prog,
    spec: &ModelSpec,
    compiled: &CompiledStatic<'_>,
    store_val: &[i64],
    load_reg: &[Option<usize>],
    num_regs: usize,
    order: &mut Vec<usize>,
    used: &mut Vec<bool>,
    outcomes: &mut BTreeSet<Vec<i64>>,
) {
    let n = prog.events.len();
    if order.len() == n {
        let pos = positions(order);
        let mut regs = vec![0i64; num_regs];
        let mut rf_src = vec![None; n];
        for l in 0..n {
            let Some(r) = load_reg[l] else { continue };
            let el = &prog.events[l];
            let mut best: Option<usize> = None;
            for s in 0..n {
                let es = &prog.events[s];
                if es.kind != AccessKind::Store || es.addr != el.addr {
                    continue;
                }
                let visible = pos[s] < pos[l]
                    || (spec.forwarding && es.thread == el.thread && es.pos < el.pos);
                if visible {
                    best = Some(match best {
                        None => s,
                        Some(b) if pos[s] > pos[b] => s,
                        Some(b) => b,
                    });
                }
            }
            regs[r] = best.map_or(0, |s| store_val[s]);
            rf_src[l] = best;
        }
        if dynamic_ok(&compiled.dynamic, prog, &pos, &rf_src) {
            outcomes.insert(regs);
        }
        return;
    }
    'next: for c in 0..n {
        if used[c] {
            continue;
        }
        for &(a, b) in &compiled.edges {
            if b == c && !used[a] {
                continue 'next;
            }
        }
        used[c] = true;
        order.push(c);
        litmus_rec(
            prog, spec, compiled, store_val, load_reg, num_regs, order, used, outcomes,
        );
        used[c] = false;
        order.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::compile;
    use cf_lsl::FenceKind;
    use cf_memmodel::{litmus, Mode};

    #[test]
    fn order_po_is_sequential_consistency() {
        let sc = compile("model sc\norder po").expect("checks");
        let sb = litmus::store_buffering();
        assert!(!litmus_allows(&sb, &sc, &[0, 0]));
        assert_eq!(litmus_outcomes(&sb, &sc), sb.allowed_outcomes(Mode::Sc));
    }

    #[test]
    fn rf_based_sc_formulation_matches_order_po() {
        // The classic `acyclic (po | rf | co | fr)` SC formulation:
        // under the total-order semantics with forwarding off, the
        // communication edges are implied, so it coincides with
        // `order po`.
        let sc = compile("model sc_rf\nacyclic po | rf | co | fr").expect("checks");
        for t in litmus::all() {
            assert_eq!(
                litmus_outcomes(&t, &sc),
                t.allowed_outcomes(Mode::Sc),
                "{}",
                t.name
            );
        }
    }

    #[test]
    fn fence_free_spec_ignores_fences() {
        // A spec without `fence` in its ordering axiom treats fences as
        // no-ops — the fence-semantics-experiment use case.
        let weak =
            compile("model weak\noption forwarding\norder (po ; [W]) & loc").expect("checks");
        let fenced = litmus::store_buffering_fenced();
        assert!(
            litmus_allows(&fenced, &weak, &[0, 0]),
            "fences are inert without a fence axiom"
        );
        let with_fence =
            compile("model weak_f\noption forwarding\norder ((po ; [W]) & loc) | fence")
                .expect("checks");
        assert!(!litmus_allows(&fenced, &with_fence, &[0, 0]));
    }

    #[test]
    fn empty_axiom_forbids_executions() {
        let spec = compile("model none\norder po\nempty po").expect("checks");
        let sb = litmus::store_buffering();
        assert!(litmus_outcomes(&sb, &spec).is_empty());
    }

    #[test]
    fn dynamic_empty_axiom_restricts_reads() {
        // `empty rf & ext`: no load may read another thread's store.
        let spec = compile("model local\norder po\nempty rf & ext").expect("checks");
        let mp = litmus::message_passing();
        let out = litmus_outcomes(&mp, &spec);
        assert!(out.contains(&vec![0, 0]), "init reads remain");
        assert!(!out.contains(&vec![1, 1]), "cross-thread reads forbidden");
    }

    #[test]
    fn violated_axioms_names_the_blocking_axiom() {
        // A fenced message-passing trace with a stale data read: the
        // bundled relaxed spec (whose single axiom carries the label
        // `same_address_stores`) forbids it through the fence edges of
        // that axiom — and removal-flipping names exactly it.
        use crate::bundled;
        use cf_lsl::Value;
        let relaxed = compile(bundled::RELAXED).expect("bundled relaxed compiles");
        let trace = ConcreteTrace {
            threads: vec![
                vec![
                    TraceItem::Access {
                        kind: AccessKind::Store,
                        addr: vec![0],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    TraceItem::Fence(FenceKind::StoreStore),
                    TraceItem::Access {
                        kind: AccessKind::Store,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
                vec![
                    TraceItem::Access {
                        kind: AccessKind::Load,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    TraceItem::Fence(FenceKind::LoadLoad),
                    TraceItem::Access {
                        kind: AccessKind::Load,
                        addr: vec![0],
                        value: Value::Int(0),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
            ],
            init: HashMap::from([(vec![0], Value::Int(0)), (vec![1], Value::Int(0))]),
        };
        assert!(!trace_allowed(&trace, &relaxed));
        assert_eq!(
            violated_axioms(&trace, &relaxed),
            vec!["same_address_stores".to_string()]
        );
        // The unfenced variant of the same trace is allowed: nothing to
        // blame.
        let mut unfenced = trace.clone();
        for t in &mut unfenced.threads {
            t.retain(|i| !matches!(i, TraceItem::Fence(_)));
        }
        for (i, items) in unfenced.threads.iter().enumerate() {
            assert_eq!(items.len(), 2, "thread {i}");
        }
        assert!(violated_axioms(&unfenced, &relaxed).is_empty());
    }

    #[test]
    fn trace_oracle_checks_values_and_fences() {
        use cf_lsl::Value;
        let relaxed =
            compile("model relaxed\noption forwarding\norder (((po ; [W]) & loc) | fence)")
                .expect("checks");
        let mk = |data_read: i64| ConcreteTrace {
            threads: vec![
                vec![
                    TraceItem::Access {
                        kind: AccessKind::Store,
                        addr: vec![0],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    TraceItem::Fence(FenceKind::StoreStore),
                    TraceItem::Access {
                        kind: AccessKind::Store,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
                vec![
                    TraceItem::Access {
                        kind: AccessKind::Load,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    TraceItem::Fence(FenceKind::LoadLoad),
                    TraceItem::Access {
                        kind: AccessKind::Load,
                        addr: vec![0],
                        value: Value::Int(data_read),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
            ],
            init: HashMap::from([(vec![0], Value::Int(0)), (vec![1], Value::Int(0))]),
        };
        assert!(trace_allowed(&mk(1), &relaxed));
        assert!(
            !trace_allowed(&mk(0), &relaxed),
            "fenced MP forbids stale read"
        );
    }
}
