//! Specification error type (mirrors the `cf-minic` front-end idiom).

use std::fmt;

/// A specification error with a 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    /// 1-based line of the offending construct (0 when unknown).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl SpecError {
    /// Creates an error at a source line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}
