//! The abstract syntax of `.cfm` memory-model specifications.
//!
//! A specification names a model, sets framework options, defines
//! derived relations over events (`let`), and states axioms constraining
//! the postulated total memory order `mo` (§2.3.2 of the paper: "there
//! exists a total order `<M` such that ...").

use cf_lsl::FenceKind;

/// A built-in binary relation over the events of one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaseRel {
    /// Program order: same thread, `x` issued before `y`.
    Po,
    /// Same-address restriction: `x` and `y` target the same location.
    Loc,
    /// Internal: same thread (excluding identity).
    Int,
    /// External: different threads.
    Ext,
    /// Identity.
    Id,
    /// The postulated total memory order `<M`.
    Mo,
    /// Reads-from: the store `x` is the value source of the load `y`.
    Rf,
    /// Coherence: same-address stores in memory order.
    Co,
    /// From-read: the load `x` reads a store overwritten by store `y`
    /// (including loads of the initial value, which are `fr`-before every
    /// same-address store).
    Fr,
    /// Fence-separated pairs. `None` is the generic form: some fence
    /// between `x` and `y` orders their access kinds (paper §3.1 X-Y
    /// fence semantics, or the C11 fence matrix for ordering fences).
    /// `Some(k)` restricts to classic fences of kind `k` (the pair's
    /// kinds must still match the fence's X-Y signature).
    Fence(Option<FenceKind>),
    /// Read-modify-write pairs: the load and store halves of one atomic
    /// group targeting the same location (`x` the load, `y` the store).
    Rmw,
    /// Pairs separated by a C11 fence with acquire semantics
    /// (`acquire`, `acq_rel` or `seq_cst`). Purely positional — compose
    /// with `[R]`/`[W]` filters to restrict the endpoints.
    FenceAcq,
    /// Pairs separated by a C11 fence with release semantics
    /// (`release`, `acq_rel` or `seq_cst`). Purely positional.
    FenceRel,
    /// Pairs separated by a `seq_cst` C11 fence. Purely positional.
    FenceSc,
}

impl BaseRel {
    /// The surface-syntax spelling.
    pub fn name(self) -> &'static str {
        match self {
            BaseRel::Po => "po",
            BaseRel::Loc => "loc",
            BaseRel::Int => "int",
            BaseRel::Ext => "ext",
            BaseRel::Id => "id",
            BaseRel::Mo => "mo",
            BaseRel::Rf => "rf",
            BaseRel::Co => "co",
            BaseRel::Fr => "fr",
            BaseRel::Fence(None) => "fence",
            BaseRel::Fence(Some(FenceKind::LoadLoad)) => "fence_ll",
            BaseRel::Fence(Some(FenceKind::LoadStore)) => "fence_ls",
            BaseRel::Fence(Some(FenceKind::StoreLoad)) => "fence_sl",
            BaseRel::Fence(Some(FenceKind::StoreStore)) => "fence_ss",
            BaseRel::Rmw => "rmw",
            BaseRel::FenceAcq => "fence_acq",
            BaseRel::FenceRel => "fence_rel",
            BaseRel::FenceSc => "fence_sc",
        }
    }

    /// Does evaluating this relation require a candidate memory order
    /// (or a value assignment deriving `rf`)?
    pub fn is_dynamic(self) -> bool {
        matches!(self, BaseRel::Mo | BaseRel::Rf | BaseRel::Co | BaseRel::Fr)
    }
}

/// An event-set filter, written `[R]`, `[W]`, `[M]`, or — for accesses
/// carrying C11-style ordering annotations — `[RLX]`, `[ACQ]`, `[REL]`,
/// `[SC]`, `[NA]`. A filter denotes the identity relation restricted to
/// that set (the cat idiom for kind-restricting a relation via
/// composition).
///
/// Ordering filters are *at-least* sets: `[ACQ]` matches every access
/// whose annotation provides acquire semantics (`acquire`, `acq_rel`,
/// `seq_cst`), `[REL]` the release side, `[RLX]` any atomic access, and
/// `[SC]` only `seq_cst` accesses. `[NA]` matches non-atomic (plain)
/// accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetFilter {
    /// Loads.
    Loads,
    /// Stores.
    Stores,
    /// All memory events.
    All,
    /// Atomic accesses (`relaxed` or stronger).
    Relaxed,
    /// Accesses with acquire semantics.
    Acquire,
    /// Accesses with release semantics.
    Release,
    /// `seq_cst` accesses.
    SeqCst,
    /// Non-atomic (plain) accesses.
    NonAtomic,
}

impl SetFilter {
    /// The surface-syntax spelling (without brackets).
    pub fn name(self) -> &'static str {
        match self {
            SetFilter::Loads => "R",
            SetFilter::Stores => "W",
            SetFilter::All => "M",
            SetFilter::Relaxed => "RLX",
            SetFilter::Acquire => "ACQ",
            SetFilter::Release => "REL",
            SetFilter::SeqCst => "SC",
            SetFilter::NonAtomic => "NA",
        }
    }
}

/// A relation expression.
///
/// `Name` nodes only appear in freshly parsed specifications; the
/// well-formedness checker ([`crate::check`]) resolves them against
/// `let` definitions and built-ins, so a checked [`ModelSpec`] contains
/// no names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelExpr {
    /// An unresolved identifier (parse-time only).
    Name(String),
    /// A built-in relation.
    Base(BaseRel),
    /// An identity filter `[R]`/`[W]`/`[M]`.
    Filter(SetFilter),
    /// Union `a | b`.
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Intersection `a & b`.
    Inter(Box<RelExpr>, Box<RelExpr>),
    /// Difference `a \ b`.
    Diff(Box<RelExpr>, Box<RelExpr>),
    /// Composition `a ; b`.
    Seq(Box<RelExpr>, Box<RelExpr>),
    /// Transitive closure `a+`.
    Closure(Box<RelExpr>),
    /// Inverse `a^-1`.
    Inverse(Box<RelExpr>),
}

impl RelExpr {
    /// `true` if no sub-expression mentions an execution-dependent
    /// relation (`mo`, `rf`, `co`, `fr`): such relations are decidable
    /// from the program text alone, which lets the explicit oracle use
    /// them to prune its linearization search upfront.
    pub fn is_static(&self) -> bool {
        match self {
            RelExpr::Name(_) => false,
            RelExpr::Base(b) => !b.is_dynamic(),
            RelExpr::Filter(_) => true,
            RelExpr::Union(a, b)
            | RelExpr::Inter(a, b)
            | RelExpr::Diff(a, b)
            | RelExpr::Seq(a, b) => a.is_static() && b.is_static(),
            RelExpr::Closure(a) | RelExpr::Inverse(a) => a.is_static(),
        }
    }

    /// `true` if some sub-expression is an unresolved [`RelExpr::Name`].
    pub fn has_names(&self) -> bool {
        match self {
            RelExpr::Name(_) => true,
            RelExpr::Base(_) | RelExpr::Filter(_) => false,
            RelExpr::Union(a, b)
            | RelExpr::Inter(a, b)
            | RelExpr::Diff(a, b)
            | RelExpr::Seq(a, b) => a.has_names() || b.has_names(),
            RelExpr::Closure(a) | RelExpr::Inverse(a) => a.has_names(),
        }
    }
}

/// The kind of an axiom.
///
/// All axioms constrain the one postulated total memory order `mo`
/// (this reproduction's §2.3.2 framework): an execution is allowed iff
/// *some* total order satisfies every axiom together with the value
/// axioms. Under that reading `acyclic r` is equivalent to
/// `irreflexive r` plus `order r` — with `mo` total, a cycle in
/// `r ∪ mo` exists exactly when `r` has a self-edge or an edge against
/// `mo`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AxiomKind {
    /// `order r`: every `r`-edge must be an `mo`-edge (`r ⊆ mo`).
    Order,
    /// `acyclic r`: `r ∪ mo` is acyclic, i.e. `r` is irreflexive and
    /// `r \ id ⊆ mo`.
    Acyclic,
    /// `irreflexive r`: no self-edges.
    Irreflexive,
    /// `empty r`: no edges at all.
    Empty,
}

impl AxiomKind {
    /// The surface-syntax keyword.
    pub fn name(self) -> &'static str {
        match self {
            AxiomKind::Order => "order",
            AxiomKind::Acyclic => "acyclic",
            AxiomKind::Irreflexive => "irreflexive",
            AxiomKind::Empty => "empty",
        }
    }
}

/// One axiom of a specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Axiom {
    /// What the axiom asserts about its relation.
    pub kind: AxiomKind,
    /// Optional display label (`... as name`).
    pub label: Option<String>,
    /// The constrained relation.
    pub rel: RelExpr,
}

/// A parsed-but-unchecked specification (names unresolved).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawSpec {
    /// The model name from the `model` header.
    pub name: String,
    /// `option` lines with their source lines.
    pub options: Vec<(String, usize)>,
    /// `let` definitions with their source lines, in order.
    pub lets: Vec<(String, RelExpr, usize)>,
    /// Axioms with their source lines, in order.
    pub axioms: Vec<(Axiom, usize)>,
}

/// A checked, resolved memory-model specification — the unit both
/// backends consume (the explicit oracle in [`crate::interp`], the CNF
/// compiler in the `checkfence` core).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModelSpec {
    /// Model name (reported in verdicts and counterexamples).
    pub name: String,
    /// Store-to-load forwarding: a thread's own buffered (program-order
    /// earlier) stores are visible to its loads regardless of `mo`
    /// (§2.3.2 visibility `S(l)`).
    pub forwarding: bool,
    /// Whole operations interleave atomically (the Seriality semantics).
    pub atomic_ops: bool,
    /// The axioms, fully resolved.
    pub axioms: Vec<Axiom>,
}

impl ModelSpec {
    /// `true` if every `order`/`acyclic` axiom is static (evaluable
    /// without a candidate order) — the fast path of the explicit
    /// oracle, and the common case for hardware-like models.
    pub fn has_static_order_axioms(&self) -> bool {
        self.axioms
            .iter()
            .filter(|a| matches!(a.kind, AxiomKind::Order | AxiomKind::Acyclic))
            .all(|a| a.rel.is_static())
    }
}
