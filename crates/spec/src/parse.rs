//! Lexer and recursive-descent parser for the `.cfm` surface syntax.
//!
//! ```text
//! spec    := "model" IDENT item*
//! item    := "option" IDENT
//!          | "let" IDENT "=" expr
//!          | ("order" | "acyclic" | "irreflexive" | "empty") expr ("as" IDENT)?
//! expr    := sub ("|" sub)*           -- union (lowest precedence)
//! sub     := inter ("\" inter)*       -- difference
//! inter   := seq ("&" seq)*           -- intersection
//! seq     := postfix (";" postfix)*   -- composition
//! postfix := atom ("+" | "^-1")*      -- closure, inverse
//! atom    := "(" expr ")" | "[" IDENT "]" | IDENT
//! ```
//!
//! Set names inside brackets: `R`, `W`, `M`, and the C11 ordering sets
//! `RLX`, `ACQ`, `REL`, `SC`, `NA`.
//!
//! `//` starts a line comment. Identifiers are resolved (against `let`
//! definitions and the built-in relations) by [`crate::check`], not here.

use crate::ast::{Axiom, AxiomKind, RawSpec, RelExpr, SetFilter};
use crate::error::SpecError;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Pipe,
    Amp,
    Backslash,
    Semi,
    Plus,
    Inv,
    Assign,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Backslash => write!(f, "`\\`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Inv => write!(f, "`^-1`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Spanned {
    tok: Tok,
    line: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>, SpecError> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    macro_rules! push {
        ($t:expr) => {
            out.push(Spanned { tok: $t, line })
        };
    }
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(SpecError::new(line, "expected `//` comment"));
                }
            }
            '|' => {
                chars.next();
                push!(Tok::Pipe);
            }
            '&' => {
                chars.next();
                push!(Tok::Amp);
            }
            '\\' => {
                chars.next();
                push!(Tok::Backslash);
            }
            ';' => {
                chars.next();
                push!(Tok::Semi);
            }
            '+' => {
                chars.next();
                push!(Tok::Plus);
            }
            '=' => {
                chars.next();
                push!(Tok::Assign);
            }
            '(' => {
                chars.next();
                push!(Tok::LParen);
            }
            ')' => {
                chars.next();
                push!(Tok::RParen);
            }
            '[' => {
                chars.next();
                push!(Tok::LBracket);
            }
            ']' => {
                chars.next();
                push!(Tok::RBracket);
            }
            '^' => {
                chars.next();
                if chars.next() == Some('-') && chars.next() == Some('1') {
                    push!(Tok::Inv);
                } else {
                    return Err(SpecError::new(line, "expected `^-1`"));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s));
            }
            other => {
                return Err(SpecError::new(
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), SpecError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(SpecError::new(
                self.line(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SpecError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(SpecError::new(
                self.toks[self.pos.saturating_sub(1)].line,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn expr(&mut self) -> Result<RelExpr, SpecError> {
        let mut lhs = self.sub()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            let rhs = self.sub()?;
            lhs = RelExpr::Union(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn sub(&mut self) -> Result<RelExpr, SpecError> {
        let mut lhs = self.inter()?;
        while *self.peek() == Tok::Backslash {
            self.bump();
            let rhs = self.inter()?;
            lhs = RelExpr::Diff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn inter(&mut self) -> Result<RelExpr, SpecError> {
        let mut lhs = self.seq()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            let rhs = self.seq()?;
            lhs = RelExpr::Inter(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn seq(&mut self) -> Result<RelExpr, SpecError> {
        let mut lhs = self.postfix()?;
        while *self.peek() == Tok::Semi {
            self.bump();
            let rhs = self.postfix()?;
            lhs = RelExpr::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<RelExpr, SpecError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    e = RelExpr::Closure(Box::new(e));
                }
                Tok::Inv => {
                    self.bump();
                    e = RelExpr::Inverse(Box::new(e));
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<RelExpr, SpecError> {
        let line = self.line();
        match self.bump() {
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                let name = self.ident("a set name (`R`, `W`, `M`, or an ordering set)")?;
                let set = match name.as_str() {
                    "R" => SetFilter::Loads,
                    "W" => SetFilter::Stores,
                    "M" => SetFilter::All,
                    "RLX" => SetFilter::Relaxed,
                    "ACQ" => SetFilter::Acquire,
                    "REL" => SetFilter::Release,
                    "SC" => SetFilter::SeqCst,
                    "NA" => SetFilter::NonAtomic,
                    other => {
                        return Err(SpecError::new(
                            line,
                            format!(
                                "unknown event set `{other}` \
                                 (expected R, W, M, RLX, ACQ, REL, SC or NA)"
                            ),
                        ))
                    }
                };
                self.expect(&Tok::RBracket)?;
                Ok(RelExpr::Filter(set))
            }
            Tok::Ident(s) => Ok(RelExpr::Name(s)),
            other => Err(SpecError::new(
                line,
                format!("expected a relation, found {other}"),
            )),
        }
    }
}

/// Parses `.cfm` source into a raw (name-unresolved) specification.
///
/// # Errors
///
/// Returns a [`SpecError`] with the offending source line on lexical or
/// syntactic problems.
pub fn parse(source: &str) -> Result<RawSpec, SpecError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    // Header.
    let header = p.ident("the `model` header")?;
    if header != "model" {
        return Err(SpecError::new(
            1,
            format!("a spec must start with `model <name>`, found `{header}`"),
        ));
    }
    let name = p.ident("a model name")?;
    let mut spec = RawSpec {
        name,
        options: Vec::new(),
        lets: Vec::new(),
        axioms: Vec::new(),
    };
    loop {
        let line = p.line();
        match p.peek().clone() {
            Tok::Eof => return Ok(spec),
            Tok::Ident(kw) => {
                p.bump();
                match kw.as_str() {
                    "option" => {
                        let opt = p.ident("an option name")?;
                        spec.options.push((opt, line));
                    }
                    "let" => {
                        let name = p.ident("a relation name")?;
                        p.expect(&Tok::Assign)?;
                        let e = p.expr()?;
                        spec.lets.push((name, e, line));
                    }
                    "order" | "acyclic" | "irreflexive" | "empty" => {
                        let kind = match kw.as_str() {
                            "order" => AxiomKind::Order,
                            "acyclic" => AxiomKind::Acyclic,
                            "irreflexive" => AxiomKind::Irreflexive,
                            _ => AxiomKind::Empty,
                        };
                        let rel = p.expr()?;
                        let label = if *p.peek() == Tok::Ident("as".into()) {
                            p.bump();
                            Some(p.ident("an axiom label")?)
                        } else {
                            None
                        };
                        spec.axioms.push((Axiom { kind, label, rel }, line));
                    }
                    other => {
                        return Err(SpecError::new(
                            line,
                            format!(
                                "expected `option`, `let`, `order`, `acyclic`, \
                                 `irreflexive` or `empty`, found `{other}`"
                            ),
                        ))
                    }
                }
            }
            other => {
                return Err(SpecError::new(
                    line,
                    format!("expected a declaration, found {other}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BaseRel;

    #[test]
    fn parses_precedence() {
        let s = parse("model m\norder po \\ [W] ; po ; [R] | loc").expect("parses");
        // `;` binds tighter than `\`, `|` is lowest.
        let (ax, _) = &s.axioms[0];
        match &ax.rel {
            RelExpr::Union(l, r) => {
                assert!(matches!(**r, RelExpr::Name(_)));
                assert!(matches!(**l, RelExpr::Diff(_, _)));
            }
            other => panic!("expected union at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_postfix() {
        let s = parse("model m\nlet a = po+ ^-1").expect("parses");
        let (_, e, _) = &s.lets[0];
        assert_eq!(
            *e,
            RelExpr::Inverse(Box::new(RelExpr::Closure(Box::new(RelExpr::Name(
                "po".into()
            )))))
        );
        let _ = BaseRel::Po; // silence unused import in cfg(test)
    }

    #[test]
    fn reports_lines() {
        let err = parse("model m\n\norder po |").expect_err("bad expr");
        assert_eq!(err.line, 3);
        let err = parse("model m\nfoo bar").expect_err("bad keyword");
        assert!(err.message.contains("foo"), "{err}");
    }

    #[test]
    fn rejects_bad_set() {
        let err = parse("model m\norder [X]").expect_err("bad set");
        assert!(err.message.contains("unknown event set"), "{err}");
    }
}
