//! Cumulative solver statistics.

use std::fmt;

/// Counters accumulated across all `solve` calls of a [`crate::Solver`].
///
/// # Examples
///
/// ```
/// use cf_sat::Solver;
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// s.add_clause([a]);
/// s.solve();
/// assert!(s.stats().propagations >= 1);
/// assert_eq!(s.stats().solves, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals enqueued on the trail.
    pub propagations: u64,
    /// Total literals in learnt clauses (before deletion).
    pub learnt_literals: u64,
    /// Number of learnt-database reductions.
    pub reductions: u64,
    /// Number of `solve`/`solve_with` calls (incremental sessions issue
    /// many; this is the denominator for per-query averages).
    pub solves: u64,
    /// Number of restarts performed across all solves.
    pub restarts: u64,
    /// Total assumption literals passed across all `solve_with` calls
    /// (sessions drive the solver almost exclusively through assumptions;
    /// this tracks how much of the query surface is assumption-shaped).
    pub assumed_literals: u64,
}

impl Stats {
    /// Counter deltas `self - earlier` (for per-phase attribution: snapshot
    /// before a query, subtract after).
    #[must_use]
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            conflicts: self.conflicts - earlier.conflicts,
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            learnt_literals: self.learnt_literals - earlier.learnt_literals,
            reductions: self.reductions - earlier.reductions,
            solves: self.solves - earlier.solves,
            restarts: self.restarts - earlier.restarts,
            assumed_literals: self.assumed_literals - earlier.assumed_literals,
        }
    }

    /// Ticks: the deterministic work measure (propagations + conflicts)
    /// that tick budgets are counted in.
    pub fn ticks(&self) -> u64 {
        self.propagations + self.conflicts
    }

    /// Accumulates another counter set into this one (for totals across
    /// several solvers, e.g. one per test session).
    pub fn add(&mut self, other: &Stats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.learnt_literals += other.learnt_literals;
        self.reductions += other.reductions;
        self.solves += other.solves;
        self.restarts += other.restarts;
        self.assumed_literals += other.assumed_literals;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves: {}, conflicts: {}, decisions: {}, propagations: {}, restarts: {}, reductions: {}",
            self.solves, self.conflicts, self.decisions, self.propagations, self.restarts,
            self.reductions
        )
    }
}
