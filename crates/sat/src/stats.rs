//! Cumulative solver statistics.

use std::fmt;

/// Counters accumulated across all `solve` calls of a [`crate::Solver`].
///
/// # Examples
///
/// ```
/// use cf_sat::Solver;
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// s.add_clause([a]);
/// s.solve();
/// assert!(s.stats().propagations >= 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals enqueued on the trail.
    pub propagations: u64,
    /// Total literals in learnt clauses (before deletion).
    pub learnt_literals: u64,
    /// Number of learnt-database reductions.
    pub reductions: u64,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicts: {}, decisions: {}, propagations: {}, reductions: {}",
            self.conflicts, self.decisions, self.propagations, self.reductions
        )
    }
}
