//! Deterministic fault injection for robustness testing.
//!
//! The engine layers above the solver promise graceful degradation: an
//! exhausted budget becomes an inconclusive cell, a stalled solve runs
//! into its deadline, a crashed worker loses at most the in-flight
//! query. Those paths trigger rarely in healthy runs, so the test
//! suites *inject* the failures instead of waiting for them. A
//! [`FaultPlan`] is a set of deterministic, addressed injections: every
//! hook site carries a stable string address (for the engine, the
//! query's `describe()` string behind a site prefix such as `solve:` or
//! `worker:`), and the plan decides — by exact address match, or by a
//! seed-keyed hash when scattering over a set of addresses — whether
//! the site fails and how.
//!
//! The module only exists under the `faults` cargo feature; release
//! builds compile no hooks at all, and with no plan installed every
//! hook is a cheap atomic load. Determinism contract: the same plan
//! against the same batch fires the same faults regardless of thread
//! interleaving, because addresses (not arrival order) select victims —
//! this is what lets the suites assert bit-identical degraded tables at
//! `--jobs 1` and `--jobs 4`.
//!
//! # Examples
//!
//! ```
//! use cf_sat::faults::{self, FaultKind, FaultPlan};
//!
//! faults::install(FaultPlan::new(7).exhaust("solve:check stack/T0@tso"));
//! assert!(matches!(
//!     faults::hit("solve:check stack/T0@tso"),
//!     Some(FaultKind::Exhaust)
//! ));
//! assert!(faults::hit("solve:check stack/T1@tso").is_none());
//! faults::clear();
//! assert!(faults::hit("solve:check stack/T0@tso").is_none());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// What happens at a faulted site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Synthesize budget exhaustion: the site behaves as if its tick
    /// budget ran out without doing any work.
    Exhaust,
    /// Stall the site for this many milliseconds before it proceeds
    /// (drives wall-clock deadlines).
    Stall(u64),
    /// Panic at the site (drives worker panic isolation).
    Panic,
}

struct Entry {
    addr: String,
    kind: FaultKind,
    /// Remaining firings; `u32::MAX` means the fault is persistent.
    remaining: AtomicU32,
}

/// A deterministic set of addressed fault injections.
///
/// Build one with the chainable constructors, then [`install`] it.
/// Faults either fire every time their address is hit (the default) or
/// a bounded number of times (`*_times`), which lets a test make the
/// first attempt fail and the retry succeed.
#[derive(Default)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<(String, FaultKind, u32)>,
}

impl FaultPlan {
    /// An empty plan. The seed only matters for [`FaultPlan::scatter`],
    /// which uses it to pick victims from an address set.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    /// Every hit on `addr` synthesizes budget exhaustion.
    #[must_use]
    pub fn exhaust(self, addr: impl Into<String>) -> Self {
        self.push(addr.into(), FaultKind::Exhaust, u32::MAX)
    }

    /// The first `times` hits on `addr` synthesize budget exhaustion.
    #[must_use]
    pub fn exhaust_times(self, addr: impl Into<String>, times: u32) -> Self {
        self.push(addr.into(), FaultKind::Exhaust, times)
    }

    /// Every hit on `addr` stalls for `millis` milliseconds.
    #[must_use]
    pub fn stall(self, addr: impl Into<String>, millis: u64) -> Self {
        self.push(addr.into(), FaultKind::Stall(millis), u32::MAX)
    }

    /// The first `times` hits on `addr` stall for `millis` milliseconds
    /// (a transient hang: the retry runs stall-free).
    #[must_use]
    pub fn stall_times(self, addr: impl Into<String>, millis: u64, times: u32) -> Self {
        self.push(addr.into(), FaultKind::Stall(millis), times)
    }

    /// Every hit on `addr` panics.
    #[must_use]
    pub fn panic_at(self, addr: impl Into<String>) -> Self {
        self.push(addr.into(), FaultKind::Panic, u32::MAX)
    }

    /// The first `times` hits on `addr` panic.
    #[must_use]
    pub fn panic_times(self, addr: impl Into<String>, times: u32) -> Self {
        self.push(addr.into(), FaultKind::Panic, times)
    }

    /// Seed-addressed scattering: injects `kind` persistently at the `k`
    /// addresses of `addrs` with the smallest seed-keyed hash. The
    /// victim set is a pure function of `(seed, addrs)` — not of
    /// arrival order — so scattered faults hit the same cells at any
    /// parallelism level.
    #[must_use]
    pub fn scatter(mut self, kind: FaultKind, addrs: &[String], k: usize) -> Self {
        let mut ranked: Vec<(u64, &String)> =
            addrs.iter().map(|a| (mix(self.seed, a), a)).collect();
        ranked.sort();
        for (_, addr) in ranked.into_iter().take(k) {
            self = self.push(addr.clone(), kind, u32::MAX);
        }
        self
    }

    /// The addresses this plan injects at, in insertion order.
    pub fn addresses(&self) -> Vec<&str> {
        self.entries.iter().map(|(a, _, _)| a.as_str()).collect()
    }

    fn push(mut self, addr: String, kind: FaultKind, times: u32) -> Self {
        self.entries.push((addr, kind, times));
        self
    }
}

/// Seed-keyed string hash (FNV-1a folded with an xorshift64* finalizer;
/// quality only matters for victim spreading, not security).
fn mix(seed: u64, addr: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in addr.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    crate::xorshift::Rng::new(h).next()
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Installs `plan` process-wide, replacing any previous plan.
pub fn install(plan: FaultPlan) {
    let entries = plan
        .entries
        .into_iter()
        .map(|(addr, kind, times)| Entry {
            addr,
            kind,
            remaining: AtomicU32::new(times),
        })
        .collect::<Vec<_>>();
    let mut guard = match PLAN.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    ACTIVE.store(!entries.is_empty(), Ordering::SeqCst);
    *guard = entries;
}

/// Removes the installed plan; every subsequent [`hit`] is a no-fault.
pub fn clear() {
    install(FaultPlan::default());
}

/// `true` while a non-empty plan is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::SeqCst)
}

/// Consults the installed plan at a hook site. Returns the fault to
/// enact, decrementing bounded entries, or `None` when the site is
/// healthy. Callers enact `Stall`/`Panic` themselves so the sleep or
/// unwind happens in their own stack frame, not under the plan lock.
pub fn hit(addr: &str) -> Option<FaultKind> {
    if !active() {
        return None;
    }
    let guard = match PLAN.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for e in guard.iter() {
        if e.addr != addr {
            continue;
        }
        let mut left = e.remaining.load(Ordering::SeqCst);
        loop {
            if left == 0 {
                break;
            }
            if left == u32::MAX {
                return Some(e.kind);
            }
            match e
                .remaining
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Some(e.kind),
                Err(now) => left = now,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan registry is process-global; serialize the tests that
    /// install plans so `cargo test`'s thread pool cannot interleave
    /// them.
    static GATE: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn no_plan_means_no_faults() {
        let _g = locked();
        clear();
        assert!(!active());
        assert_eq!(hit("solve:anything"), None);
    }

    #[test]
    fn exact_address_match_fires_persistently() {
        let _g = locked();
        install(FaultPlan::new(1).exhaust("solve:a").stall("solve:b", 5));
        for _ in 0..3 {
            assert_eq!(hit("solve:a"), Some(FaultKind::Exhaust));
        }
        assert_eq!(hit("solve:b"), Some(FaultKind::Stall(5)));
        assert_eq!(hit("solve:c"), None);
        clear();
    }

    #[test]
    fn bounded_entries_stop_after_their_count() {
        let _g = locked();
        install(FaultPlan::new(1).exhaust_times("solve:a", 2));
        assert_eq!(hit("solve:a"), Some(FaultKind::Exhaust));
        assert_eq!(hit("solve:a"), Some(FaultKind::Exhaust));
        assert_eq!(hit("solve:a"), None);
        clear();
    }

    #[test]
    fn scatter_picks_k_victims_deterministically() {
        let _g = locked();
        let addrs: Vec<String> = (0..10).map(|i| format!("solve:cell{i}")).collect();
        let first = FaultPlan::new(42).scatter(FaultKind::Exhaust, &addrs, 3);
        let second = FaultPlan::new(42).scatter(FaultKind::Exhaust, &addrs, 3);
        assert_eq!(first.addresses(), second.addresses());
        assert_eq!(first.addresses().len(), 3);
        // A different seed picks a different victim set (for any decent
        // hash this holds for the fixed seeds chosen here).
        let other = FaultPlan::new(43).scatter(FaultKind::Exhaust, &addrs, 3);
        assert_ne!(first.addresses(), other.addresses());
        clear();
    }

    #[test]
    fn install_replaces_the_previous_plan() {
        let _g = locked();
        install(FaultPlan::new(1).exhaust("solve:a"));
        install(FaultPlan::new(1).panic_at("worker:b"));
        assert_eq!(hit("solve:a"), None);
        assert_eq!(hit("worker:b"), Some(FaultKind::Panic));
        clear();
    }
}
