//! Fundamental solver types: variables, literals and three-valued booleans.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
///
/// Variables are created with [`crate::Solver::new_var`] and are only
/// meaningful for the solver instance that created them.
///
/// # Examples
///
/// ```
/// use cf_sat::{Solver, Var};
/// let mut s = Solver::new();
/// let v: Var = s.new_var();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw index.
    ///
    /// Callers must ensure the index was produced by the same solver.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The zero-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given sign
    /// (`true` means positive).
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        Lit::new(self, sign)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable together with a sign.
///
/// Encoded as `2 * var + (negated as usize)`, the classic MiniSat layout,
/// so that a literal indexes watch lists directly.
///
/// # Examples
///
/// ```
/// use cf_sat::Solver;
/// let mut s = Solver::new();
/// let x = s.new_var().positive();
/// assert_eq!(!!x, x);
/// assert_ne!(!x, x);
/// assert_eq!((!x).var(), x.var());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from a variable and a sign (`true` = positive).
    #[inline]
    pub fn new(var: Var, sign: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!sign))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal of its variable.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense index of this literal (usable as a watch-list index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }

    /// Converts from a DIMACS-style non-zero integer
    /// (`1` is the positive literal of the first variable).
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`.
    pub fn from_dimacs(code: i64) -> Self {
        assert!(code != 0, "DIMACS literal must be non-zero");
        let var = Var(code.unsigned_abs() as u32 - 1);
        Lit::new(var, code > 0)
    }

    /// Converts to a DIMACS-style non-zero integer.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.sign() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.sign() { "" } else { "-" }, self.var().0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A three-valued boolean: true, false or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `Some(bool)` if assigned, `None` otherwise.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// `true` when assigned true.
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// `true` when assigned false.
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// `true` when unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }

    /// Negates the value; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Applies the sign of a literal: `xor(false)` flips.
    #[inline]
    pub fn xor_sign(self, sign: bool) -> Self {
        if sign {
            self
        } else {
            self.negate()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        for i in 0..64 {
            let v = Var::from_index(i);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.sign());
            assert!(!n.sign());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_index(p.index()), p);
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        for code in [-5i64, -1, 1, 2, 17] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor_sign(false), LBool::False);
        assert_eq!(LBool::False.to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
        assert!(LBool::Undef.is_undef());
    }
}
