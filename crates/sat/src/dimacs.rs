//! DIMACS CNF reading and writing, for debugging and golden tests.

use std::fmt::Write as _;

use crate::solver::Solver;
use crate::types::Lit;

/// A parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// A CNF formula in clausal form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (may exceed the largest used index).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Parses DIMACS text. The `p cnf` header is optional; comment lines
    /// start with `c`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed literals or headers.
    pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: "expected `p cnf <vars> <clauses>`".into(),
                    });
                }
                let vars = parts.next().and_then(|s| s.parse::<usize>().ok());
                match vars {
                    Some(v) => cnf.num_vars = cnf.num_vars.max(v),
                    None => {
                        return Err(ParseDimacsError {
                            line: lineno + 1,
                            message: "bad variable count".into(),
                        })
                    }
                }
                continue;
            }
            for tok in line.split_whitespace() {
                let code: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad literal `{tok}`"),
                })?;
                if code == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let l = Lit::from_dimacs(code);
                    cnf.num_vars = cnf.num_vars.max(l.var().index() + 1);
                    current.push(l);
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }

    /// Renders the formula as DIMACS text.
    ///
    /// The header's variable count covers every literal actually used,
    /// even when `num_vars` understates it (a programmatically built
    /// formula need not keep the field in sync) — so `parse` is a left
    /// inverse of this writer and the header is valid for external
    /// tools.
    pub fn to_dimacs(&self) -> String {
        let used = self
            .clauses
            .iter()
            .flatten()
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "p cnf {} {}",
            self.num_vars.max(used),
            self.clauses.len()
        );
        for c in &self.clauses {
            for l in c {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        while s.num_vars() < self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Evaluates the formula under a total assignment
    /// (`assignment[i]` is the value of variable `i`).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment.get(l.var().index()).copied().unwrap_or(false) == l.sign())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_and_solve() {
        let cnf = Cnf::parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").expect("parses");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn roundtrip() {
        let cnf = Cnf::parse("1 2 0 -1 0").expect("parses");
        let again = Cnf::parse(&cnf.to_dimacs()).expect("parses");
        assert_eq!(cnf, again);
    }

    #[test]
    fn writer_parser_roundtrip_with_empty_clauses_and_comments() {
        // Empty clauses (a lone `0`), interleaved comments, a clause
        // split across lines, and a comment between a clause's literals
        // must all survive a parse → write → parse round trip.
        let text = "c header comment\n\
                    p cnf 4 4\n\
                    0\n\
                    1 -2\n\
                    c mid-clause comment\n\
                    3 0\n\
                    -4 0\n\
                    c trailing comment\n\
                    0\n";
        let cnf = Cnf::parse(text).expect("parses");
        assert_eq!(cnf.clauses.len(), 4);
        assert_eq!(cnf.clauses[0], vec![]);
        assert_eq!(cnf.clauses[3], vec![]);
        assert_eq!(cnf.clauses[1].len(), 3, "clause may span lines");
        let written = cnf.to_dimacs();
        let again = Cnf::parse(&written).expect("round-trips");
        assert_eq!(cnf, again);
        // Idempotence of the canonical form.
        assert_eq!(written, again.to_dimacs());
    }

    #[test]
    fn writer_header_covers_all_used_variables() {
        // A programmatically built formula whose `num_vars` understates
        // the literals used: the writer must not emit an invalid header,
        // and the round trip must be the identity on clauses with
        // `num_vars` corrected to the true count.
        let cnf = Cnf {
            num_vars: 1,
            clauses: vec![vec![Lit::from_dimacs(1), Lit::from_dimacs(-7)], vec![]],
        };
        let written = cnf.to_dimacs();
        assert!(written.starts_with("p cnf 7 2"), "{written}");
        let again = Cnf::parse(&written).expect("parses");
        assert_eq!(again.num_vars, 7);
        assert_eq!(again.clauses, cnf.clauses);
        // A second trip is the identity.
        assert_eq!(Cnf::parse(&again.to_dimacs()).expect("parses"), again);
    }

    #[test]
    fn empty_formula_roundtrip() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![],
        };
        let again = Cnf::parse(&cnf.to_dimacs()).expect("parses");
        assert_eq!(again, cnf, "declared-but-unused variables survive");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Cnf::parse("1 x 0").is_err());
        assert!(Cnf::parse("p dnf 1 1").is_err());
    }

    #[test]
    fn eval_checks_all_clauses() {
        let cnf = Cnf::parse("1 2 0 -1 0").expect("parses");
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
    }
}
