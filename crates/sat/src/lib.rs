//! # cf-sat — an incremental CDCL SAT solver
//!
//! This crate is the SAT back-end of the CheckFence reproduction. The paper
//! (Burckhardt, Alur, Martin; PLDI 2007) hands its CNF encodings to zChaff;
//! since the reproduction must be self-contained, this crate provides an
//! equivalent engine: a conflict-driven clause-learning solver with
//! two-watched-literal propagation, first-UIP learning, VSIDS branching,
//! phase saving, Luby restarts and learnt-clause database reduction.
//!
//! The one property CheckFence depends on heavily is *incrementality*:
//! specification mining (paper §3.2) repeatedly solves, reads off a model,
//! adds a blocking clause and re-solves. [`Solver::add_clause`] may be called
//! between [`Solver::solve`] calls, and learnt clauses are kept across calls.
//!
//! ## Example
//!
//! Enumerate the models of `(a ∨ b)`:
//!
//! ```
//! use cf_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([a.positive(), b.positive()]);
//!
//! let mut models = 0;
//! while s.solve() == SolveResult::Sat {
//!     models += 1;
//!     // block this model
//!     let block = [
//!         a.lit(!s.value(a).unwrap_or(false)),
//!         b.lit(!s.value(b).unwrap_or(false)),
//!     ];
//!     s.add_clause(block);
//! }
//! assert_eq!(models, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
mod heap;
mod solver;
mod stats;
mod types;

pub mod dimacs;
#[cfg(feature = "faults")]
pub mod faults;
pub mod xorshift;

pub use solver::{SolveEvent, SolveHook, SolveResult, Solver, SolverConfig, StopCause};
pub use stats::Stats;
pub use types::{LBool, Lit, Var};
