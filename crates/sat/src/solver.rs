//! The CDCL search engine.
//!
//! A conflict-driven clause-learning solver in the MiniSat lineage:
//! two-watched-literal propagation, first-UIP conflict analysis with basic
//! clause minimization, exponential VSIDS decision ordering, phase saving,
//! Luby restarts and LBD-guided learnt-clause database reduction. The solver
//! is *incremental*: clauses may be added between [`Solver::solve`] calls and
//! solving under assumptions is supported, which is exactly what the
//! CheckFence specification-mining loop requires (Section 3.2 of the paper).

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::stats::Stats;
use crate::types::{LBool, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit was exhausted before an answer was found; the
    /// specific limit is reported by [`Solver::stop_cause`].
    Unknown,
}

/// Which resource limit made the last `solve` call return
/// [`SolveResult::Unknown`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopCause {
    /// The conflict budget ([`Solver::set_conflict_budget`]) ran out.
    ConflictBudget,
    /// The deterministic tick budget ([`Solver::set_tick_budget`]) ran out.
    TickBudget,
    /// The wall-clock deadline ([`Solver::set_deadline`]) passed.
    Deadline,
}

/// What one [`Solver::solve_with`] call did: its result, the limit
/// that stopped it (for [`SolveResult::Unknown`]), and the counter
/// deltas it accumulated. Passed to the [`SolveHook`] after every
/// solve call, on every return path.
#[derive(Clone, Copy, Debug)]
pub struct SolveEvent {
    /// The result the call returned.
    pub result: SolveResult,
    /// Which resource limit stopped the call, when `result` is
    /// [`SolveResult::Unknown`].
    pub stop: Option<StopCause>,
    /// Counter deltas for this call alone ([`Stats::since`] against a
    /// snapshot taken at call entry).
    pub delta: Stats,
}

/// An observer invoked after every solve call with its [`SolveEvent`].
///
/// The hook is how higher layers (the CheckFence trace collector)
/// attribute solver work to spans without the solver depending on them;
/// `cf-sat` itself never inspects the events.
pub struct SolveHook(Box<dyn FnMut(&SolveEvent) + Send>);

impl SolveHook {
    /// Wraps a callback as a solve hook.
    pub fn new(hook: impl FnMut(&SolveEvent) + Send + 'static) -> Self {
        SolveHook(Box::new(hook))
    }
}

impl std::fmt::Debug for SolveHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SolveHook(..)")
    }
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A second literal of the clause; if it is already true the clause is
    /// satisfied and the watch list walk can skip loading the clause.
    blocker: Lit,
}

/// Feature toggles for ablation studies (everything on by default).
///
/// The toggles never affect soundness — only search dynamics — which the
/// property tests verify by running every configuration against a
/// brute-force oracle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SolverConfig {
    /// Luby-sequence restarts. Off: a single uninterrupted search.
    pub restarts: bool,
    /// Phase saving (re-decide variables with their last polarity).
    /// Off: always decide `false` first.
    pub phase_saving: bool,
    /// EVSIDS decision ordering (bump + decay). Off: activities stay
    /// flat and decisions follow the static variable order.
    pub vsids: bool,
    /// Learnt-clause database reduction. Off: keep every learnt clause.
    pub db_reduction: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restarts: true,
            phase_saving: true,
            vsids: true,
            db_reduction: true,
        }
    }
}

/// An incremental CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use cf_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b.var()), Some(true));
/// s.add_clause([!b]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    saved_phase: Vec<bool>,

    cla_inc: f64,

    /// Formula already proven unsatisfiable at level 0.
    unsat: bool,

    /// The assumption subset the last Unsat answer depends on (the
    /// final-conflict analysis result); `None` after Sat/Unknown.
    last_core: Option<Vec<Lit>>,

    // scratch buffer for conflict analysis
    seen: Vec<bool>,

    max_learnts: f64,
    stats: Stats,
    conflict_budget: Option<u64>,
    tick_budget: Option<u64>,
    deadline: Option<std::time::Instant>,
    stop_cause: Option<StopCause>,
    config: SolverConfig,
    solve_hook: Option<SolveHook>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
// Wall-clock sampling intervals: `Instant::now` per conflict would be
// noise, per decision would dominate the hot path.
const DEADLINE_CHECK_CONFLICTS: u64 = 64;
const DEADLINE_CHECK_DECISIONS: u64 = 512;

impl Solver {
    /// Creates an empty solver with no variables and no clauses.
    pub fn new() -> Self {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::new(),
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            unsat: false,
            last_core: None,
            seen: Vec::new(),
            max_learnts: 0.0,
            stats: Stats::default(),
            conflict_budget: None,
            tick_budget: None,
            deadline: None,
            stop_cause: None,
            config: SolverConfig::default(),
            solve_hook: None,
        }
    }

    /// Creates an empty solver with the given feature toggles.
    pub fn with_config(config: SolverConfig) -> Self {
        let mut s = Self::new();
        s.config = config;
        s
    }

    /// The active feature toggles.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Replaces the feature toggles (takes effect on the next solve).
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem clauses (units and empty clauses are absorbed
    /// into the assignment and the unsat flag and are not counted).
    pub fn num_clauses(&self) -> usize {
        self.db.num_original
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.db.num_learnt
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Limits the next `solve` calls to roughly `conflicts` conflicts;
    /// `None` removes the limit. When the budget is exhausted `solve`
    /// returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Limits the next `solve` calls to roughly `ticks` *ticks*, where a
    /// tick is one propagation or one conflict; `None` removes the limit.
    ///
    /// Unlike a wall-clock deadline, tick counts depend only on the formula
    /// and the solver state, so an exhausted budget reproduces exactly on
    /// any machine. When the budget is exhausted `solve` returns
    /// [`SolveResult::Unknown`] and [`Solver::stop_cause`] reports
    /// [`StopCause::TickBudget`].
    pub fn set_tick_budget(&mut self, ticks: Option<u64>) {
        self.tick_budget = ticks;
    }

    /// Aborts any `solve` call still running at `deadline` (checked at
    /// conflict and decision boundaries); `None` removes the deadline.
    /// On expiry `solve` returns [`SolveResult::Unknown`] and
    /// [`Solver::stop_cause`] reports [`StopCause::Deadline`].
    ///
    /// Wall-clock deadlines are inherently machine-dependent; prefer
    /// [`Solver::set_tick_budget`] when reproducibility matters.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Cumulative ticks (propagations + conflicts) across all solves.
    pub fn ticks(&self) -> u64 {
        self.stats.ticks()
    }

    /// Why the most recent `solve` call returned [`SolveResult::Unknown`],
    /// or `None` if it returned a definite answer.
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.stop_cause
    }

    /// `true` if the clause set has been proven unsatisfiable at level 0
    /// (no `solve` call can succeed anymore).
    pub fn is_known_unsat(&self) -> bool {
        self.unsat
    }

    /// Adds a clause. Returns `false` if the formula is now known to be
    /// unsatisfiable (the empty clause was derived), `true` otherwise.
    ///
    /// May be called between `solve` calls; the solver backtracks to
    /// decision level 0 first.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        if self.unsat {
            return false;
        }
        self.cancel_until(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable();
        c.dedup();
        // Detect tautologies and strip literals false at level 0.
        let mut simplified = Vec::with_capacity(c.len());
        let mut prev: Option<Lit> = None;
        for &l in &c {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology: x ∨ ¬x
                }
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => simplified.push(l),
            }
            prev = Some(l);
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.db.alloc(simplified, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Installs (or removes) the per-call observer; see [`SolveHook`].
    pub fn set_solve_hook(&mut self, hook: Option<SolveHook>) {
        self.solve_hook = hook;
    }

    /// Solves under the given assumptions. The assumptions behave like
    /// temporary unit clauses for this call only.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        // Snapshot-delta-notify wrapper: the hook must observe every
        // return path of the search body, early outs included.
        let before = self.stats;
        let result = self.solve_with_inner(assumptions);
        if let Some(hook) = &mut self.solve_hook {
            let event = SolveEvent {
                result,
                stop: self.stop_cause,
                delta: self.stats.since(&before),
            };
            (hook.0)(&event);
        }
        result
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.stats.assumed_literals += assumptions.len() as u64;
        self.stop_cause = None;
        // The formula being unsatisfiable without any assumption help is
        // the empty core: re-solving with no assumptions reproduces it.
        self.last_core = None;
        if self.unsat {
            self.last_core = Some(Vec::new());
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            self.last_core = Some(Vec::new());
            return SolveResult::Unsat;
        }
        if self.past_deadline() {
            // A stalled caller may arrive with the deadline already spent;
            // answer Unknown without starting a search.
            self.stop_cause = Some(StopCause::Deadline);
            return SolveResult::Unknown;
        }
        self.max_learnts = (self.db.num_original as f64 / 3.0).max(4000.0);
        let budget_start = self.stats.conflicts;
        let tick_start = self.ticks();
        let mut restart_round = 0u32;
        loop {
            let conflict_limit = if self.config.restarts {
                100 * luby(2.0, restart_round) as u64
            } else {
                u64::MAX
            };
            match self.search(conflict_limit, assumptions, budget_start, tick_start) {
                Some(r) => return r,
                None => {
                    // Restart.
                    self.stats.restarts += 1;
                    restart_round += 1;
                }
            }
        }
    }

    /// The model value of `v` after a successful solve.
    ///
    /// Returns `None` for variables that were never assigned (such
    /// variables are unconstrained; either value satisfies the formula).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()].to_option()
    }

    /// The model value of a literal after a successful solve.
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.sign())
    }

    // ---------------------------------------------------------------- search

    /// Runs CDCL until a result, a restart (`None`) or budget exhaustion.
    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget_start: u64,
        tick_start: u64,
    ) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    self.last_core = Some(Vec::new());
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                self.cancel_until(bt_level);
                self.record_learnt(learnt, lbd);
                self.decay_activities();
                if let Some(cause) = self.exhausted(budget_start, tick_start) {
                    self.cancel_until(0);
                    self.stop_cause = Some(cause);
                    return Some(SolveResult::Unknown);
                }
                if self
                    .stats
                    .conflicts
                    .is_multiple_of(DEADLINE_CHECK_CONFLICTS)
                    && self.past_deadline()
                {
                    self.cancel_until(0);
                    self.stop_cause = Some(StopCause::Deadline);
                    return Some(SolveResult::Unknown);
                }
            } else {
                // Resource checks sit at decision boundaries too, so
                // propagation-heavy searches with few conflicts still stop.
                // Tick exhaustion depends only on the deterministic
                // decision/propagation sequence; the wall clock is sampled
                // every few hundred decisions to keep the hot path cheap.
                if let Some(cause) = self.exhausted(budget_start, tick_start) {
                    self.cancel_until(0);
                    self.stop_cause = Some(cause);
                    return Some(SolveResult::Unknown);
                }
                if self
                    .stats
                    .decisions
                    .is_multiple_of(DEADLINE_CHECK_DECISIONS)
                    && self.past_deadline()
                {
                    self.cancel_until(0);
                    self.stop_cause = Some(StopCause::Deadline);
                    return Some(SolveResult::Unknown);
                }
                if conflicts_here >= conflict_limit {
                    // Restart.
                    self.cancel_until(0);
                    return None;
                }
                if self.config.db_reduction && self.db.num_learnt as f64 >= self.max_learnts {
                    self.reduce_db();
                }
                // Place assumptions first, then decide.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Assumption contradicted: run the final-conflict
                            // analysis before unwinding the trail it walks.
                            let core = self.analyze_final(a);
                            self.last_core = Some(core);
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(l) => Some(l),
                    None => self.pick_branch_lit(),
                };
                match decision {
                    None => return Some(SolveResult::Sat),
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Deterministic budget checks (conflict and tick); `None` while both
    /// budgets still have headroom.
    #[inline]
    fn exhausted(&self, budget_start: u64, tick_start: u64) -> Option<StopCause> {
        if let Some(b) = self.conflict_budget {
            if self.stats.conflicts - budget_start >= b {
                return Some(StopCause::ConflictBudget);
            }
        }
        if let Some(b) = self.tick_budget {
            if self.ticks() - tick_start >= b {
                return Some(StopCause::TickBudget);
            }
        }
        None
    }

    #[inline]
    fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor_sign(l.sign())
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()].is_undef() {
                let phase = self.config.phase_saving && self.saved_phase[v.index()];
                return Some(v.lit(phase));
            }
        }
        None
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l).is_undef());
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.sign());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = from;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var();
            self.saved_phase[v.index()] = l.sign();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len().min(self.qhead.min(self.trail.len()));
        self.qhead = bound.min(self.trail.len());
    }

    // ----------------------------------------------------------- propagation

    fn attach(&mut self, cref: ClauseRef) {
        let c = self.db.get(cref);
        debug_assert!(c.lits.len() >= 2);
        let l0 = c.lits[0];
        let l1 = c.lits[1];
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let c = self.db.get(cref);
        let l0 = c.lits[0];
        let l1 = c.lits[1];
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Process clauses watching ¬p (stored under index p).
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker).is_true() {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize: put the false literal (¬p) at position 1.
                let false_lit = !p;
                {
                    let c = self.db.get_mut(cref);
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.db.get(cref).lits[0];
                let new_watcher = Watcher {
                    cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first).is_true() {
                    ws[j] = new_watcher;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.get(cref).lits.len();
                for k in 2..len {
                    let lk = self.db.get(cref).lits[k];
                    if !self.lit_value(lk).is_false() {
                        let c = self.db.get_mut(cref);
                        c.lits.swap(1, k);
                        self.watches[(!lk).index()].push(new_watcher);
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = new_watcher;
                j += 1;
                if self.lit_value(first).is_false() {
                    // Conflict: copy the remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    // -------------------------------------------------------------- analysis

    /// First-UIP conflict analysis. Returns (learnt clause with the
    /// asserting literal first, backtrack level, LBD).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.db.get(confl).lits.clone();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(skip) {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("found");
                break;
            }
            confl = self.reason[pv.index()].expect("non-decision has a reason");
        }

        // Basic (one-step self-subsumption) minimization.
        let kept: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.lit_redundant(l))
            .collect();
        let mut minimized = Vec::with_capacity(kept.len() + 1);
        minimized.push(learnt[0]);
        minimized.extend(kept);

        // Compute backtrack level: max level among non-asserting literals,
        // and move that literal to slot 1 (it becomes the second watch).
        let bt_level = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };

        // LBD = number of distinct decision levels in the clause.
        let mut levels: Vec<u32> = minimized
            .iter()
            .map(|l| self.level[l.var().index()])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        // Clear `seen` for the literals we kept (dropped ones cleared here too).
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        (minimized, bt_level, lbd)
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): called when
    /// installing assumption `p` finds it already falsified. Walks the
    /// implication graph backwards from `¬p` through the trail and
    /// collects the assumption literals (the decisions above level 0 —
    /// during installation every decision *is* an assumption) that the
    /// falsification depends on. Returns them as passed by the caller,
    /// `p` included, so the result is a subset of the assumption vector.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            // `¬p` is implied by the clause set alone.
            return core;
        }
        self.seen[p.var().index()] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                // A decision: an installed assumption the chain rests on.
                None => core.push(x),
                Some(cref) => {
                    let lits: Vec<Lit> = self.db.get(cref).lits.clone();
                    for &q in &lits {
                        if q.var() != v && self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        // `¬p` may itself be a level-0 implication (below the walk).
        self.seen[p.var().index()] = false;
        core
    }

    /// The assumption subset the most recent [`Solver::solve_with`]
    /// call's [`SolveResult::Unsat`] answer depends on, as a subset of
    /// the literals that were passed (an empty slice when the formula is
    /// unsatisfiable without any assumptions). `None` if the most recent
    /// solve did not return Unsat.
    ///
    /// Re-solving with only the core literals as assumptions is
    /// guaranteed to reproduce the Unsat answer. The core is *not*
    /// guaranteed minimal; see [`Solver::minimize_core`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cf_sat::{Solver, SolveResult};
    /// let mut s = Solver::new();
    /// let a = s.new_var().positive();
    /// let b = s.new_var().positive();
    /// let c = s.new_var().positive();
    /// s.add_clause([!a, !b]);
    /// assert_eq!(s.solve_with(&[a, c, b]), SolveResult::Unsat);
    /// let core = s.unsat_core().expect("unsat has a core").to_vec();
    /// assert!(core.contains(&a) && core.contains(&b) && !core.contains(&c));
    /// assert_eq!(s.solve_with(&core), SolveResult::Unsat);
    /// ```
    pub fn unsat_core(&self) -> Option<&[Lit]> {
        self.last_core.as_deref()
    }

    /// Greedy deletion minimization of the last unsat core: repeatedly
    /// re-solves with one element dropped, keeping the drop whenever the
    /// query stays unsatisfiable (and shrinking to the probe's own core),
    /// until a full pass deletes nothing — the result is then *locally
    /// minimal* (dropping any element loses unsatisfiability).
    ///
    /// The pass runs under its own deterministic tick budget, separate
    /// from (and without touching) the solver's configured budgets and
    /// deadline, so minimization can never blow a query's resource
    /// governance: on exhaustion it stops early and returns the current
    /// — possibly only partially minimized — core. `None` for the
    /// budget means minimize without limit.
    ///
    /// Returns `(core, complete)` where `complete` reports whether the
    /// pass reached local minimality; [`Solver::unsat_core`] is updated
    /// to the returned core. Returns `None` when there is no core (the
    /// most recent solve was not Unsat).
    pub fn minimize_core(&mut self, ticks: Option<u64>) -> Option<(Vec<Lit>, bool)> {
        let mut core = self.last_core.clone()?;
        let saved_conflicts = self.conflict_budget;
        let saved_ticks = self.tick_budget;
        let saved_deadline = self.deadline;
        self.conflict_budget = None;
        self.deadline = None;
        let mut remaining = ticks;
        let mut complete = true;
        'passes: loop {
            let mut deleted = false;
            let mut i = 0;
            while i < core.len() {
                if remaining == Some(0) {
                    complete = false;
                    break 'passes;
                }
                let mut probe = core.clone();
                probe.remove(i);
                self.tick_budget = remaining;
                let t0 = self.ticks();
                let r = self.solve_with(&probe);
                if let Some(rem) = &mut remaining {
                    *rem = rem.saturating_sub(self.ticks() - t0);
                }
                match r {
                    SolveResult::Unsat => {
                        // The element is redundant; adopt the probe's own
                        // core, which may be smaller still.
                        core = self.last_core.clone().unwrap_or(probe);
                        deleted = true;
                    }
                    SolveResult::Sat => i += 1,
                    SolveResult::Unknown => {
                        complete = false;
                        break 'passes;
                    }
                }
            }
            if !deleted {
                break;
            }
        }
        self.conflict_budget = saved_conflicts;
        self.tick_budget = saved_ticks;
        self.deadline = saved_deadline;
        // The probes are internal: the last *query* answer was Unsat, so
        // the exposed state must read as such again.
        self.stop_cause = None;
        self.last_core = Some(core.clone());
        Some((core, complete))
    }

    /// One-step redundancy: `l` is redundant if it was implied by a clause
    /// whose other literals are all already in the learnt clause (seen) or
    /// fixed at level 0.
    fn lit_redundant(&self, l: Lit) -> bool {
        let v = l.var();
        match self.reason[v.index()] {
            None => false,
            Some(r) => self.db.get(r).lits.iter().all(|&q| {
                q.var() == v || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.stats.learnt_literals += learnt.len() as u64;
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], None);
        } else {
            let first = learnt[0];
            let cref = self.db.alloc(learnt, true, lbd);
            self.bump_clause(cref);
            self.attach(cref);
            self.unchecked_enqueue(first, Some(cref));
        }
    }

    // ------------------------------------------------------------ activities

    fn bump_var(&mut self, v: Var) {
        if !self.config.vsids {
            return;
        }
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = self.db.get_mut(cref);
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > RESCALE_LIMIT {
            let inc = &mut self.cla_inc;
            *inc *= 1e-100;
            for r in self.db.learnt_refs().collect::<Vec<_>>() {
                self.db.get_mut(r).activity *= 1e-100;
            }
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLA_DECAY;
    }

    // -------------------------------------------------------------- reduceDB

    /// Removes roughly half of the learnt clauses, preferring high-LBD,
    /// low-activity ones. Binary and LBD ≤ 2 clauses and clauses that are
    /// the reason of a current assignment are kept.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut learnts: Vec<ClauseRef> = self.db.learnt_refs().collect();
        learnts.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        for cref in learnts {
            if removed >= target {
                break;
            }
            let c = self.db.get(cref);
            if c.lits.len() <= 2 || c.lbd <= 2 || self.is_locked(cref) {
                continue;
            }
            self.detach(cref);
            self.db.free(cref);
            removed += 1;
        }
        self.max_learnts *= 1.3;
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.get(cref).lits[0];
        self.reason[first.var().index()] == Some(cref) && self.lit_value(first).is_true()
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...) scaled by `y`.
fn luby(y: f64, mut x: u32) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size as u32;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, n: i64) -> Lit {
        while s.num_vars() < n.unsigned_abs() as usize {
            s.new_var();
        }
        Lit::from_dimacs(n)
    }

    fn clause(s: &mut Solver, ns: &[i64]) -> bool {
        let lits: Vec<Lit> = ns.iter().map(|&n| lit(s, n)).collect();
        s.add_clause(lits)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        clause(&mut s, &[1, 2]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        clause(&mut s, &[1]);
        assert!(!clause(&mut s, &[-1]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        clause(&mut s, &[1, -1]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        clause(&mut s, &[1]);
        clause(&mut s, &[-1, 2]);
        clause(&mut s, &[-2, 3]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole.
        let mut s = Solver::new();
        clause(&mut s, &[1]); // pigeon 1 in hole 1
        clause(&mut s, &[2]); // pigeon 2 in hole 1
        clause(&mut s, &[-1, -2]); // not both
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // PHP(4,3): pigeons p in 1..=4, holes h in 1..=3,
        // var(p,h) = (p-1)*3 + h.
        let mut s = Solver::new();
        let v = |p: i64, h: i64| (p - 1) * 3 + h;
        for p in 1..=4 {
            clause(&mut s, &[v(p, 1), v(p, 2), v(p, 3)]);
        }
        for h in 1..=3 {
            for p1 in 1..=4 {
                for p2 in (p1 + 1)..=4 {
                    clause(&mut s, &[-v(p1, h), -v(p2, h)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn incremental_blocking() {
        // Enumerate all 4 models of a 2-variable free formula by blocking.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), a.negative()]); // tautology: ignored
        let mut count = 0;
        loop {
            match s.solve() {
                SolveResult::Sat => {
                    count += 1;
                    let block = [
                        a.lit(!s.value(a).unwrap_or(false)),
                        b.lit(!s.value(b).unwrap_or(false)),
                    ];
                    s.add_clause(block);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("no budget set"),
            }
            assert!(count <= 4);
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn assumptions() {
        let mut s = Solver::new();
        clause(&mut s, &[1, 2]);
        let l1 = Lit::from_dimacs(1);
        let l2 = Lit::from_dimacs(2);
        assert_eq!(s.solve_with(&[!l1]), SolveResult::Sat);
        assert_eq!(s.value(l2.var()), Some(true));
        assert_eq!(s.solve_with(&[!l1, !l2]), SolveResult::Unsat);
        // Assumptions do not persist.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        s.add_clause([a]);
        assert_eq!(s.solve_with(&[!a]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A moderately hard instance with a 1-conflict budget.
        let mut s = Solver::new();
        let v = |p: i64, h: i64| (p - 1) * 4 + h;
        for p in 1..=5 {
            clause(&mut s, &[v(p, 1), v(p, 2), v(p, 3), v(p, 4)]);
        }
        for h in 1..=4 {
            for p1 in 1..=5 {
                for p2 in (p1 + 1)..=5 {
                    clause(&mut s, &[-v(p1, h), -v(p2, h)]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// PHP(5,4): small but guaranteed to take real search effort.
    fn pigeonhole_5_into_4(s: &mut Solver) {
        let v = |p: i64, h: i64| (p - 1) * 4 + h;
        for p in 1..=5 {
            clause(s, &[v(p, 1), v(p, 2), v(p, 3), v(p, 4)]);
        }
        for h in 1..=4 {
            for p1 in 1..=5 {
                for p2 in (p1 + 1)..=5 {
                    clause(s, &[-v(p1, h), -v(p2, h)]);
                }
            }
        }
    }

    #[test]
    fn tick_budget_exhaustion_reports_its_cause() {
        let mut s = Solver::new();
        pigeonhole_5_into_4(&mut s);
        s.set_tick_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::TickBudget));
        s.set_tick_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.stop_cause(), None);
    }

    #[test]
    fn tick_budget_is_deterministic_across_runs() {
        // The same formula under the same budget stops at the same tick
        // count — the property that makes budgets reproducible across
        // machines.
        let run = || {
            let mut s = Solver::new();
            pigeonhole_5_into_4(&mut s);
            s.set_tick_budget(Some(50));
            let r = s.solve();
            (r, s.ticks(), s.stats().decisions)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.0, SolveResult::Unknown);
    }

    #[test]
    fn zero_tick_budget_stops_before_the_first_decision() {
        let mut s = Solver::new();
        clause(&mut s, &[1, 2]);
        s.set_tick_budget(Some(0));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::TickBudget));
    }

    #[test]
    fn expired_deadline_returns_unknown_immediately() {
        let mut s = Solver::new();
        pigeonhole_5_into_4(&mut s);
        s.set_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::Deadline));
        s.set_deadline(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_cause_is_distinguished_from_ticks() {
        let mut s = Solver::new();
        pigeonhole_5_into_4(&mut s);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::ConflictBudget));
    }

    #[test]
    fn unsat_core_is_a_reproducing_subset() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        let d = s.new_var().positive();
        s.add_clause([!a, !b]);
        assert_eq!(s.solve_with(&[a, c, d, b]), SolveResult::Unsat);
        let core = s.unsat_core().expect("unsat has a core").to_vec();
        assert!(core.contains(&a), "a is load-bearing");
        assert!(core.contains(&b), "b is load-bearing");
        assert!(!core.contains(&c), "c is irrelevant");
        assert!(!core.contains(&d), "d is irrelevant");
        // Soundness: the core alone reproduces the answer.
        assert_eq!(s.solve_with(&core), SolveResult::Unsat);
        // A Sat answer clears the core.
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
        assert!(s.unsat_core().is_none());
    }

    #[test]
    fn core_of_directly_contradictory_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let _ = b;
        assert_eq!(s.solve_with(&[b, a, !a]), SolveResult::Unsat);
        let core = s.unsat_core().expect("core").to_vec();
        assert!(core.contains(&a) && core.contains(&!a));
        assert!(!core.contains(&b));
        assert_eq!(s.solve_with(&core), SolveResult::Unsat);
    }

    #[test]
    fn core_of_a_level_zero_falsified_assumption_is_that_assumption() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause([!a]);
        assert_eq!(s.solve_with(&[b, a]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), Some(&[a][..]));
    }

    #[test]
    fn globally_unsat_formula_has_an_empty_core() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        clause(&mut s, &[3]);
        clause(&mut s, &[-3]);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), Some(&[][..]));
        // And so does a search-discovered global conflict.
        let mut s = Solver::new();
        pigeonhole_5_into_4(&mut s);
        let a = s.new_var().positive();
        assert_eq!(s.solve_with(&[a]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), Some(&[][..]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn minimize_core_reaches_the_unique_minimal_core() {
        // y can be forced by c two ways: through x (which needs a) or
        // directly. If propagation happens to route through x, the
        // final-conflict core over-approximates with a; minimization
        // must land on the unique minimal core {b, c} either way.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        let x = s.new_var().positive();
        let y = s.new_var().positive();
        s.add_clause([!a, x]);
        s.add_clause([!x, !c, y]);
        s.add_clause([!c, y]);
        s.add_clause([!b, !y]);
        assert_eq!(s.solve_with(&[a, c, b]), SolveResult::Unsat);
        let raw = s.unsat_core().expect("core").to_vec();
        let (min, complete) = s.minimize_core(None).expect("core to minimize");
        assert!(complete, "unbudgeted minimization completes");
        assert!(min.len() <= raw.len());
        let mut sorted = min.clone();
        sorted.sort_unstable();
        let mut want = vec![b, c];
        want.sort_unstable();
        assert_eq!(sorted, want, "unique minimal core");
        assert_eq!(s.unsat_core(), Some(&min[..]));
        assert_eq!(s.solve_with(&min), SolveResult::Unsat);
        // Local minimality: dropping any element loses the answer.
        let core = s.unsat_core().expect("core").to_vec();
        for i in 0..core.len() {
            let mut probe = core.clone();
            probe.remove(i);
            assert_eq!(s.solve_with(&probe), SolveResult::Sat);
        }
    }

    #[test]
    fn budget_starved_minimization_degrades_to_the_unminimized_core() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        s.add_clause([!a, !b]);
        assert_eq!(s.solve_with(&[a, c, b]), SolveResult::Unsat);
        let raw = s.unsat_core().expect("core").to_vec();
        let (min, complete) = s.minimize_core(Some(0)).expect("core present");
        assert!(!complete, "a zero budget cannot finish");
        assert_eq!(min, raw, "degrades to the unminimized core");
        // The solver's own governance is untouched by the pass.
        assert_eq!(s.stop_cause(), None);
        assert_eq!(s.solve_with(&min), SolveResult::Unsat);
    }

    #[test]
    fn minimization_budgets_are_restored_afterwards() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause([!a, !b]);
        s.set_tick_budget(Some(10_000));
        s.set_conflict_budget(Some(10_000));
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        let _ = s.minimize_core(Some(1_000));
        assert_eq!(s.tick_budget, Some(10_000));
        assert_eq!(s.conflict_budget, Some(10_000));
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<f64> = (0..7).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0]);
    }
}
