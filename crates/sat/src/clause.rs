//! Clause storage: a slab of clauses addressed by [`ClauseRef`].

use crate::types::Lit;

/// A handle to a clause in the [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single clause plus its bookkeeping metadata.
#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub lits: Vec<Lit>,
    /// Learnt clauses may be deleted during database reduction.
    pub learnt: bool,
    /// Literal-block distance at learning time (glucose heuristic).
    pub lbd: u32,
    /// Bump-and-decay activity for reduction ordering.
    pub activity: f64,
    /// Tombstone: slot is free for reuse.
    pub deleted: bool,
}

/// Slab of clauses with a free list so [`ClauseRef`]s stay stable.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    free: Vec<u32>,
    /// Number of live learnt clauses.
    pub num_learnt: usize,
    /// Number of live problem (original) clauses.
    pub num_original: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_original += 1;
        }
        let clause = Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            deleted: false,
        };
        if let Some(slot) = self.free.pop() {
            self.clauses[slot as usize] = clause;
            ClauseRef(slot)
        } else {
            self.clauses.push(clause);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    pub fn free(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.index()];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_original -= 1;
        }
        c.deleted = true;
        c.lits = Vec::new();
        self.free.push(cref.0);
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.index()]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.index()]
    }

    /// Iterates over the refs of all live learnt clauses.
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Iterates over the refs of all live clauses.
    #[allow(dead_code)] // kept for debugging / future simplification passes
    pub fn all_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(n: &[i64]) -> Vec<Lit> {
        n.iter().map(|&x| Lit::from_dimacs(x)).collect()
    }

    #[test]
    fn alloc_free_reuse() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(&[1, 2]), false, 0);
        let b = db.alloc(lits(&[1, -2, 3]), true, 2);
        assert_eq!(db.num_original, 1);
        assert_eq!(db.num_learnt, 1);
        assert_eq!(db.get(a).lits.len(), 2);
        db.free(b);
        assert_eq!(db.num_learnt, 0);
        let c = db.alloc(lits(&[4, 5]), true, 1);
        assert_eq!(c, b, "freed slot is reused");
        assert_eq!(db.get(c).lits, lits(&[4, 5]));
    }

    #[test]
    fn iterators_skip_deleted() {
        let mut db = ClauseDb::new();
        let _a = db.alloc(lits(&[1, 2]), false, 0);
        let b = db.alloc(lits(&[3, 4]), true, 2);
        let _c = db.alloc(lits(&[5, 6]), true, 2);
        db.free(b);
        assert_eq!(db.learnt_refs().count(), 1);
        assert_eq!(db.all_refs().count(), 2);
        let _ = Var::from_index(0); // silence unused import in some cfgs
    }
}
