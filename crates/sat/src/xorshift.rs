//! A deterministic xorshift64* generator for reproducible randomized
//! tests across the workspace.
//!
//! The build is offline (no property-testing crates), so the test
//! suites generate their own random instances; sharing one generator
//! keeps the sequences reproducible and the implementation in one
//! place. Not cryptographic — test input generation only.

/// Deterministic xorshift64* pseudo-random generator.
///
/// # Examples
///
/// ```
/// use cf_sat::xorshift::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next(), b.next());
/// assert!(a.below(10) < 10);
/// ```
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (zero is mapped to one; the
    /// xorshift state must be non-zero).
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    /// The next 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value uniformly-ish below `n` (modulo bias is irrelevant for
    /// test generation).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}
