//! An indexed max-heap over variables ordered by VSIDS activity.

use crate::types::Var;

/// Max-heap keyed by an external activity array, with `O(log n)` updates
/// addressed by variable index (the MiniSat `VarOrder` structure).
#[derive(Debug, Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarHeap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NONE);
        }
    }

    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NONE
    }

    #[inline]
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v.0);
        let i = self.heap.len() - 1;
        self.pos[v.index()] = i as u32;
        self.sift_up(i, activity);
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        let p = self.pos[v.index()];
        if p != NONE {
            self.sift_up(p as usize, activity);
        }
    }

    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let x = self.heap[i];
        while i > 0 {
            let parent = (i - 1) >> 1;
            let p = self.heap[parent];
            if activity[x as usize] <= activity[p as usize] {
                break;
            }
            self.heap[i] = p;
            self.pos[p as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let x = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child =
                if r < n && activity[self.heap[r] as usize] > activity[self.heap[l] as usize] {
                    r
                } else {
                    l
                };
            let c = self.heap[child];
            if activity[c as usize] <= activity[x as usize] {
                break;
            }
            self.heap[i] = c;
            self.pos[c as usize] = i as u32;
            i = child;
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(4);
        for i in 0..4 {
            h.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn update_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow_to(3);
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var::from_index(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.grow_to(1);
        h.insert(Var::from_index(0), &activity);
        h.insert(Var::from_index(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
        assert_eq!(h.pop_max(&activity), None);
    }
}
