//! Randomized tests: the CDCL solver agrees with brute-force enumeration
//! on random small formulas, and models it returns actually satisfy the
//! input. A deterministic xorshift generator replaces an external
//! property-testing dependency so the suite is reproducible offline.

use cf_sat::dimacs::Cnf;
use cf_sat::xorshift::Rng;
use cf_sat::{Lit, SolveResult, Var};

/// Brute-force satisfiability over `n` variables.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars;
    assert!(n <= 16, "brute force limited to 16 vars");
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

fn random_cnf(rng: &mut Rng, max_vars: usize, max_clauses: usize) -> Cnf {
    let num_clauses = rng.below(max_clauses as u64 + 1) as usize;
    let clauses: Vec<Vec<Lit>> = (0..num_clauses)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            (0..len)
                .map(|_| {
                    let v = rng.below(max_vars as u64) as usize;
                    Lit::new(Var::from_index(v), rng.bool())
                })
                .collect()
        })
        .collect();
    Cnf {
        num_vars: max_vars,
        clauses,
    }
}

#[test]
fn solver_matches_brute_force() {
    let mut rng = Rng::new(0xcf01);
    for _ in 0..300 {
        let cnf = random_cnf(&mut rng, 8, 24);
        let mut s = cnf.to_solver();
        let expected = brute_force_sat(&cnf);
        match s.solve() {
            SolveResult::Sat => {
                assert!(expected, "solver said SAT but formula is UNSAT: {cnf:?}");
                // The model must satisfy the formula (unassigned vars are free).
                let model: Vec<bool> = (0..cnf.num_vars)
                    .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                    .collect();
                assert!(cnf.eval(&model), "returned model does not satisfy {cnf:?}");
            }
            SolveResult::Unsat => {
                assert!(!expected, "solver said UNSAT but formula is SAT: {cnf:?}");
            }
            SolveResult::Unknown => panic!("no budget was set"),
        }
    }
}

#[test]
fn model_enumeration_is_complete() {
    let mut rng = Rng::new(0xcf02);
    for _ in 0..150 {
        // Count models by blocking; must equal brute-force count.
        let cnf = random_cnf(&mut rng, 5, 12);
        let n = cnf.num_vars;
        let expected = (0u32..(1 << n))
            .filter(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                cnf.eval(&a)
            })
            .count();

        let mut s = cnf.to_solver();
        let mut found = 0usize;
        while s.solve() == SolveResult::Sat {
            found += 1;
            assert!(
                found <= expected,
                "enumerated more models than exist: {cnf:?}"
            );
            let block: Vec<Lit> = (0..n)
                .map(|i| {
                    let v = Var::from_index(i);
                    v.lit(!s.value(v).unwrap_or(false))
                })
                .collect();
            s.add_clause(block);
        }
        assert_eq!(found, expected, "{cnf:?}");
    }
}

#[test]
fn assumptions_are_sound() {
    let mut rng = Rng::new(0xcf03);
    for _ in 0..200 {
        // Solving with assumptions == solving the formula with those units added.
        let cnf = random_cnf(&mut rng, 6, 16);
        let pattern = rng.below(64) as u32;
        let mask = rng.below(64) as u32;
        let assumptions: Vec<Lit> = (0..6)
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| Lit::new(Var::from_index(i), pattern >> i & 1 == 1))
            .collect();
        let mut s = cnf.to_solver();
        let with_assumptions = s.solve_with(&assumptions);

        let mut strengthened = cnf.clone();
        for &l in &assumptions {
            strengthened.clauses.push(vec![l]);
        }
        let expected = brute_force_sat(&strengthened);
        match with_assumptions {
            SolveResult::Sat => assert!(expected, "{cnf:?} under {assumptions:?}"),
            SolveResult::Unsat => assert!(!expected, "{cnf:?} under {assumptions:?}"),
            SolveResult::Unknown => panic!("no budget was set"),
        }
        // And the solver is reusable afterwards without the assumptions.
        let plain = s.solve();
        assert_eq!(plain == SolveResult::Sat, brute_force_sat(&cnf), "{cnf:?}");
    }
}

/// All 16 feature-toggle combinations.
fn all_configs() -> Vec<cf_sat::SolverConfig> {
    let mut out = Vec::new();
    for bits in 0u8..16 {
        out.push(cf_sat::SolverConfig {
            restarts: bits & 1 != 0,
            phase_saving: bits & 2 != 0,
            vsids: bits & 4 != 0,
            db_reduction: bits & 8 != 0,
        });
    }
    out
}

#[test]
fn every_ablation_config_is_sound() {
    let mut rng = Rng::new(0xcf04);
    for _ in 0..48 {
        // The toggles change search dynamics only: every configuration
        // must agree with brute force, and SAT models must satisfy the
        // formula.
        let cnf = random_cnf(&mut rng, 7, 20);
        let expected = brute_force_sat(&cnf);
        for config in all_configs() {
            let mut s = cf_sat::Solver::with_config(config);
            for _ in 0..cnf.num_vars {
                s.new_var();
            }
            for c in &cnf.clauses {
                s.add_clause(c.iter().copied());
            }
            match s.solve() {
                SolveResult::Sat => {
                    assert!(expected, "{config:?}: SAT on an UNSAT formula");
                    let model: Vec<bool> = (0..cnf.num_vars)
                        .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                        .collect();
                    assert!(cnf.eval(&model), "{config:?}: bad model");
                }
                SolveResult::Unsat => {
                    assert!(!expected, "{config:?}: UNSAT on a SAT formula");
                }
                SolveResult::Unknown => panic!("no budget was set"),
            }
        }
    }
}

/// Pigeonhole (4 pigeons, 3 holes): a classic resolution-hard UNSAT
/// instance, solved under every ablation configuration.
#[test]
fn pigeonhole_unsat_under_every_config() {
    const P: usize = 4;
    const H: usize = 3;
    for config in all_configs() {
        let mut s = cf_sat::Solver::with_config(config);
        let vars: Vec<Vec<Lit>> = (0..P)
            .map(|_| (0..H).map(|_| s.new_var().positive()).collect())
            .collect();
        for p in vars.iter() {
            s.add_clause(p.iter().copied()); // each pigeon sits somewhere
        }
        for a in 0..P {
            for b in a + 1..P {
                for (&x, &y) in vars[a].iter().zip(&vars[b]) {
                    s.add_clause([!x, !y]); // no hole sharing
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "{config:?}");
    }
}
