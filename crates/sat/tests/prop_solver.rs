//! Property tests: the CDCL solver agrees with brute-force enumeration on
//! random small formulas, and models it returns actually satisfy the input.

use cf_sat::dimacs::Cnf;
use cf_sat::{Lit, SolveResult, Var};
use proptest::prelude::*;

/// Brute-force satisfiability over `n` variables.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars;
    assert!(n <= 16, "brute force limited to 16 vars");
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |raw| {
        let clauses: Vec<Vec<Lit>> = raw
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|(v, sign)| Lit::new(Var::from_index(v), sign))
                    .collect()
            })
            .collect();
        Cnf {
            num_vars: max_vars,
            clauses,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn solver_matches_brute_force(cnf in arb_cnf(8, 24)) {
        let mut s = cnf.to_solver();
        let expected = brute_force_sat(&cnf);
        match s.solve() {
            SolveResult::Sat => {
                prop_assert!(expected, "solver said SAT but formula is UNSAT");
                // The model must satisfy the formula (unassigned vars are free).
                let model: Vec<bool> = (0..cnf.num_vars)
                    .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                    .collect();
                prop_assert!(cnf.eval(&model), "returned model does not satisfy formula");
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver said UNSAT but formula is SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn model_enumeration_is_complete(cnf in arb_cnf(5, 12)) {
        // Count models by blocking; must equal brute-force count.
        let n = cnf.num_vars;
        let expected = (0u32..(1 << n)).filter(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&a)
        }).count();

        let mut s = cnf.to_solver();
        let mut found = 0usize;
        while s.solve() == SolveResult::Sat {
            found += 1;
            prop_assert!(found <= expected, "enumerated more models than exist");
            let block: Vec<Lit> = (0..n)
                .map(|i| {
                    let v = Var::from_index(i);
                    v.lit(!s.value(v).unwrap_or(false))
                })
                .collect();
            s.add_clause(block);
        }
        prop_assert_eq!(found, expected);
    }

    #[test]
    fn assumptions_are_sound(cnf in arb_cnf(6, 16), pattern in 0u32..64, mask in 0u32..64) {
        // Solving with assumptions == solving the formula with those units added.
        let assumptions: Vec<Lit> = (0..6)
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| Lit::new(Var::from_index(i), pattern >> i & 1 == 1))
            .collect();
        let mut s = cnf.to_solver();
        let with_assumptions = s.solve_with(&assumptions);

        let mut strengthened = cnf.clone();
        for &l in &assumptions {
            strengthened.clauses.push(vec![l]);
        }
        let expected = brute_force_sat(&strengthened);
        match with_assumptions {
            SolveResult::Sat => prop_assert!(expected),
            SolveResult::Unsat => prop_assert!(!expected),
            SolveResult::Unknown => prop_assert!(false),
        }
        // And the solver is reusable afterwards without the assumptions.
        let plain = s.solve();
        prop_assert_eq!(plain == SolveResult::Sat, brute_force_sat(&cnf));
    }
}

/// All 16 feature-toggle combinations.
fn all_configs() -> Vec<cf_sat::SolverConfig> {
    let mut out = Vec::new();
    for bits in 0u8..16 {
        out.push(cf_sat::SolverConfig {
            restarts: bits & 1 != 0,
            phase_saving: bits & 2 != 0,
            vsids: bits & 4 != 0,
            db_reduction: bits & 8 != 0,
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_ablation_config_is_sound(cnf in arb_cnf(7, 20)) {
        // The toggles change search dynamics only: every configuration
        // must agree with brute force, and SAT models must satisfy the
        // formula.
        let expected = brute_force_sat(&cnf);
        for config in all_configs() {
            let mut s = cf_sat::Solver::with_config(config);
            for _ in 0..cnf.num_vars {
                s.new_var();
            }
            for c in &cnf.clauses {
                s.add_clause(c.iter().copied());
            }
            match s.solve() {
                SolveResult::Sat => {
                    prop_assert!(expected, "{config:?}: SAT on an UNSAT formula");
                    let model: Vec<bool> = (0..cnf.num_vars)
                        .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                        .collect();
                    prop_assert!(cnf.eval(&model), "{config:?}: bad model");
                }
                SolveResult::Unsat => {
                    prop_assert!(!expected, "{config:?}: UNSAT on a SAT formula");
                }
                SolveResult::Unknown => prop_assert!(false, "no budget was set"),
            }
        }
    }
}

/// Pigeonhole (4 pigeons, 3 holes): a classic resolution-hard UNSAT
/// instance, solved under every ablation configuration.
#[test]
fn pigeonhole_unsat_under_every_config() {
    const P: usize = 4;
    const H: usize = 3;
    for config in all_configs() {
        let mut s = cf_sat::Solver::with_config(config);
        let vars: Vec<Vec<Lit>> = (0..P)
            .map(|_| (0..H).map(|_| s.new_var().positive()).collect())
            .collect();
        for p in vars.iter() {
            s.add_clause(p.iter().copied()); // each pigeon sits somewhere
        }
        for h in 0..H {
            for a in 0..P {
                for b in a + 1..P {
                    s.add_clause([!vars[a][h], !vars[b][h]]); // no sharing
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "{config:?}");
    }
}
