//! Fence enumeration and removal, for necessity analysis.
//!
//! The paper verifies that its fence placements are "sufficient and
//! necessary for the tests" (§4.2). Sufficiency is a passing inclusion
//! check; necessity is established by deleting each fence individually
//! and checking that some test then fails. This module manipulates fences
//! at the LSL level so the analysis is independent of how sources are
//! generated.

use cf_lsl::{FenceKind, Program, Stmt};
use cf_memmodel::Mode;
use checkfence::{CheckError, Engine, EngineConfig, Harness, Query, TestSpec};

/// Identifies one fence statement in a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FenceSite {
    /// Procedure name.
    pub proc: String,
    /// Index within the procedure's fences (document order).
    pub index_in_proc: usize,
    /// The fence kind.
    pub kind: FenceKind,
}

impl std::fmt::Display for FenceSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{} ({})", self.proc, self.index_in_proc, self.kind)
    }
}

/// Lists every fence in the program (document order), excluding fences
/// inside `lock`/`unlock` helpers — those belong to the locking
/// primitives (paper Fig. 7), not to the algorithm's placement.
pub fn fence_sites(program: &Program) -> Vec<FenceSite> {
    let mut out = Vec::new();
    for proc in &program.procedures {
        if proc.name.contains("lock") {
            continue;
        }
        let mut count = 0usize;
        visit(&proc.body, &mut |s| {
            if let Stmt::Fence(kind) = s {
                out.push(FenceSite {
                    proc: proc.name.clone(),
                    index_in_proc: count,
                    kind: *kind,
                });
                count += 1;
            }
        });
    }
    out
}

/// Returns a copy of the program with the given fence removed.
///
/// # Panics
///
/// Panics if the site does not exist (sites must come from
/// [`fence_sites`] on the same program).
pub fn remove_fence(program: &Program, site: &FenceSite) -> Program {
    let mut program = program.clone();
    let mut found = false;
    for proc in &mut program.procedures {
        if proc.name != site.proc {
            continue;
        }
        let mut count = 0usize;
        remove_nth_fence(&mut proc.body, site.index_in_proc, &mut count, &mut found);
    }
    assert!(found, "fence site {site} not found");
    program
}

/// Verdict for one fence site in a [`necessity`] analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NecessityVerdict {
    /// The site examined.
    pub site: FenceSite,
    /// `Some(test name)` if deleting the fence makes that test fail (or
    /// diverges its retry bounds — the livelock symptom of a missing
    /// load-load fence); `None` if every given test still passes, i.e.
    /// the fence is not exercised by these tests.
    pub broken_by: Option<String>,
}

/// The §4.2 necessity analysis: deletes each fence of `harness`
/// individually and reports which of `tests` (if any) then fails on
/// `mode`. A placement is *necessary for the tests* when every verdict
/// has `broken_by = Some(..)`; sufficiency is the fenced build passing,
/// which callers check separately.
///
/// Specifications are mined once per test (fences are serially inert)
/// and reused across all deletions.
///
/// # Errors
///
/// Propagates mining/checking failures ([`CheckError::SerialBug`] is a
/// verification result in its own right and is also propagated).
pub fn necessity(
    harness: &Harness,
    tests: &[TestSpec],
    mode: Mode,
) -> Result<Vec<NecessityVerdict>, CheckError> {
    let mut specs = Vec::with_capacity(tests.len());
    for t in tests {
        specs.push(checkfence::mine_reference(harness, t)?.spec);
    }
    let mut out = Vec::new();
    for site in fence_sites(&harness.program) {
        let program = remove_fence(&harness.program, &site);
        let build = Harness {
            name: format!("{}-minus-{site}", harness.name),
            program,
            init_proc: harness.init_proc.clone(),
            ops: harness.ops.clone(),
        };
        let mut engine = Engine::new(EngineConfig::single(mode));
        let mut broken_by = None;
        for (t, spec) in tests.iter().zip(&specs) {
            let q = Query::check_inclusion(&build, t, spec.clone()).on(mode);
            match engine.run(&q) {
                Ok(v) if v.passed() => {}
                Ok(_) | Err(CheckError::BoundsDiverged { .. }) => {
                    broken_by = Some(t.name.clone());
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        out.push(NecessityVerdict { site, broken_by });
    }
    Ok(out)
}

fn visit(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::Atomic(body) | Stmt::Block { body, .. } => visit(body, f),
            _ => {}
        }
    }
}

fn remove_nth_fence(stmts: &mut Vec<Stmt>, target: usize, count: &mut usize, found: &mut bool) {
    let mut i = 0;
    while i < stmts.len() {
        if *found {
            return;
        }
        match &mut stmts[i] {
            Stmt::Fence(_) => {
                if *count == target {
                    stmts.remove(i);
                    *found = true;
                    return;
                }
                *count += 1;
                i += 1;
            }
            Stmt::Atomic(body) | Stmt::Block { body, .. } => {
                remove_nth_fence(body, target, count, found);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_and_remove() {
        let program = cf_minic::compile(
            r#"
            int x;
            void f() {
                x = 1;
                fence("store-store");
                x = 2;
                if (x == 2) { fence("load-load"); }
            }
            void lock_thing() { fence("load-load"); }
            "#,
        )
        .expect("compiles");
        let sites = fence_sites(&program);
        assert_eq!(sites.len(), 2, "lock helpers excluded");
        assert_eq!(sites[0].kind, FenceKind::StoreStore);
        assert_eq!(sites[1].kind, FenceKind::LoadLoad);

        let without_first = remove_fence(&program, &sites[0]);
        assert_eq!(fence_sites(&without_first).len(), 1);
        let without_second = remove_fence(&program, &sites[1]);
        let remaining = fence_sites(&without_second);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].kind, FenceKind::StoreStore);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn removing_missing_site_panics() {
        let program = cf_minic::compile("int x; void f() { x = 1; }").expect("compiles");
        let site = FenceSite {
            proc: "f".into(),
            index_in_proc: 0,
            kind: FenceKind::LoadLoad,
        };
        let _ = remove_fence(&program, &site);
    }
}
