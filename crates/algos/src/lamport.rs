//! `lamport` — Lamport's single-producer single-consumer bounded queue
//! (a ring buffer with independent head/tail indices), as a seventh
//! data type beyond the paper's Table 1.
//!
//! Unlike the five studied algorithms and the Treiber stack, this one
//! synchronizes without any atomic read-modify-write at all: the
//! producer owns `tail`, the consumer owns `head`, and correctness
//! rests purely on the *order* of plain loads and stores — which makes
//! it the sharpest memory-model probe in the collection, and the only
//! algorithm here whose repair needs a **load-store** fence (the five
//! paper algorithms needed only load-load and store-store, §4.2):
//!
//! * **producer publish** (store-store): the slot write must precede
//!   the `tail` bump, or the consumer dequeues garbage;
//! * **consumer read-before-release** (load-store): the slot read must
//!   precede the `head` bump, or the producer can reuse the slot and
//!   overwrite the value while it is still being read;
//! * **consumer index/data order** (load-load): the `tail` read must
//!   precede the slot read for the same reason as in msn's load
//!   sequences;
//! * **producer check-before-store** (load-store): the full-check loads
//!   must precede the slot store. This fence is *inter-operation*: on
//!   Relaxed, load→store reordering lets a thread's second `enqueue`
//!   overtake its first one wholesale, making the first report "full"
//!   on an empty queue — an observation no serial execution justifies.
//!   Fences constrain the whole thread, not one operation, so the fence
//!   inside the operation also orders the *previous* call's loads;
//! * **producer head-load coherence** (load-load, at `enqueue` entry):
//!   the paper's Relaxed relaxes even same-address load-load order
//!   (relaxation 4, Alpha-style), so a later `enqueue` may read an
//!   *older* `head` than its predecessor and overfill the ring across
//!   the wrap-around. Real machines guarantee per-location coherence;
//!   on this model an explicit fence is needed.
//!
//! The buffer has `SIZE = 2` slots and usable capacity 1, keeping the
//! wrap-around path (`if (n == 2) n = 0;` — mini-C has no `%`) within
//! reach of small bounded tests: slot 0 is already reused by the third
//! enqueue.

use checkfence::Harness;

use crate::{compile_harness, spsc_ops, Variant};

/// The mini-C source with the full placement (see module docs).
pub fn source(variant: Variant) -> String {
    match variant {
        Variant::Fenced => source_with_kinds(true, true, true),
        Variant::Unfenced => source_with_kinds(false, false, false),
    }
}

/// The source with only the selected fence kinds included.
pub fn source_with_kinds(load_load: bool, store_store: bool, load_store: bool) -> String {
    let ll = if load_load {
        r#"fence("load-load");"#
    } else {
        ""
    };
    let ss = if store_store {
        r#"fence("store-store");"#
    } else {
        ""
    };
    let ls = if load_store {
        r#"fence("load-store");"#
    } else {
        ""
    };
    format!(
        r#"
typedef struct queue {{
    int buf[2];
    int head;
    int tail;
}} queue_t;

queue_t q;

void init_queue() {{
    q.head = 0;
    q.tail = 0;
}}

bool enqueue(int value) {{
    {ll}
    int t = q.tail;
    int h = q.head;
    int n = t + 1;
    if (n == 2) {{ n = 0; }}
    if (n == h) {{
        commit(1);
        return false;
    }}
    {ls}
    q.buf[t] = value;
    {ss}
    q.tail = n;
    commit(1);
    return true;
}}

bool dequeue(int *pvalue) {{
    int h = q.head;
    int t = q.tail;
    if (h == t) {{
        commit(1);
        return false;
    }}
    {ll}
    *pvalue = q.buf[h];
    int n = h + 1;
    if (n == 2) {{ n = 0; }}
    {ls}
    q.head = n;
    commit(1);
    return true;
}}

int enqueue_op(int v) {{
    bool ok = enqueue(v);
    if (ok) {{ return 1; }}
    return 0;
}}

int dequeue_op() {{
    int v;
    bool ok = dequeue(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}
"#
    )
}

/// Builds the checkable harness. `enqueue_op` observes its argument and
/// returns 1 (accepted) or 0 (full); `dequeue_op` returns 0 for "empty"
/// and `value + 1` otherwise.
pub fn harness(variant: Variant) -> Harness {
    let name = match variant {
        Variant::Fenced => "lamport",
        Variant::Unfenced => "lamport-unfenced",
    };
    compile_harness(name, &source(variant), "init_queue", spsc_ops())
}

/// Builds a harness containing only the selected fence kinds.
pub fn harness_with_kinds(load_load: bool, store_store: bool, load_store: bool) -> Harness {
    let name = format!(
        "lamport{}{}{}",
        if load_load { "+ll" } else { "" },
        if store_store { "+ss" } else { "" },
        if load_store { "+ls" } else { "" },
    );
    compile_harness(
        &name,
        &source_with_kinds(load_load, store_store, load_store),
        "init_queue",
        spsc_ops(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{Machine, Value};

    #[test]
    fn sources_compile() {
        harness(Variant::Fenced);
        harness(Variant::Unfenced);
        harness_with_kinds(false, true, false);
    }

    #[test]
    fn sequential_capacity_one_fifo() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_queue").unwrap(), &[]).expect("init");
        let enq = p.proc_id("enqueue_op").unwrap();
        let deq = p.proc_id("dequeue_op").unwrap();
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(0)), "empty");
        assert_eq!(m.call(enq, &[Value::Int(1)]).unwrap(), Some(Value::Int(1)));
        assert_eq!(
            m.call(enq, &[Value::Int(0)]).unwrap(),
            Some(Value::Int(0)),
            "full"
        );
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(2)), "1+1");
        assert_eq!(
            m.call(deq, &[]).unwrap(),
            Some(Value::Int(0)),
            "empty again"
        );
    }

    #[test]
    fn wrap_around_reuses_slot_zero() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_queue").unwrap(), &[]).expect("init");
        let enq = p.proc_id("enqueue_op").unwrap();
        let deq = p.proc_id("dequeue_op").unwrap();
        for v in 0..3 {
            assert_eq!(m.call(enq, &[Value::Int(v)]).unwrap(), Some(Value::Int(1)));
            assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(v + 1)));
        }
    }

    #[test]
    fn fenced_placement_uses_all_three_kinds() {
        let h = harness(Variant::Fenced);
        let sites = crate::fences::fence_sites(&h.program);
        assert_eq!(sites.len(), 5, "{sites:?}");
        let kinds: std::collections::BTreeSet<&str> =
            sites.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds.len(), 3, "three distinct kinds: {kinds:?}");
        let ls_count = sites
            .iter()
            .filter(|s| s.kind == cf_lsl::FenceKind::LoadStore)
            .count();
        assert_eq!(ls_count, 2, "load-store in both producer and consumer");
    }
}
