//! The symbolic test catalog of paper Fig. 8.
//!
//! Queue tests use `e`/`d` (enqueue/dequeue), set tests use `a`/`c`/`r`
//! (add/contains/remove), deque tests use `l`/`r`/`L`/`R` (push left,
//! push right, pop left, pop right — the paper writes aₗ, aᵣ, rₗ, rᵣ).
//! Primes mark operations restricted to a single retry iteration.

use checkfence::TestSpec;

use crate::Shape;

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct CatalogTest {
    /// Paper name (e.g. `Tpc2`).
    pub name: &'static str,
    /// The DSL text.
    pub text: &'static str,
    /// Which data type shape it exercises.
    pub shape: Shape,
}

/// The queue tests of Fig. 8.
pub const QUEUE_TESTS: &[(&str, &str)] = &[
    ("T0", "( e | d )"),
    ("T1", "( e | e | d | d )"),
    ("Tpc2", "( ee | dd )"),
    ("Tpc3", "( eee | ddd )"),
    ("Tpc4", "( eeee | dddd )"),
    ("Tpc5", "( eeeee | ddddd )"),
    ("Tpc6", "( eeeeee | dddddd )"),
    ("Ti2", "e ( ed | de )"),
    ("Ti3", "e ( de | dde )"),
    ("T53", "( eeee | d | d )"),
    ("T54", "( eee | e | d | d )"),
    ("T55", "( ee | e | e | d | d )"),
    ("T56", "( e | e | e | e | d | d )"),
];

/// The set tests of Fig. 8.
pub const SET_TESTS: &[(&str, &str)] = &[
    ("Sac", "( a | c )"),
    ("Sar", "( a | r )"),
    ("Saa", "( a | a )"),
    ("Sacr", "( a | c | r )"),
    ("Saacr", "a ( a | c | r )"),
    ("Sacr2", "aar ( a | c | r )"),
    ("Saaarr", "aaa ( r | rc )"),
    ("Sarr", "( a | r | r )"),
    ("S1", "( a' | a' | c' | c' | r' | r' )"),
];

/// The deque tests of Fig. 8 (in our key notation) plus `Dx`, the
/// three-element opposing-pops test on which the seeded snark bug
/// manifests (see the `snark` module docs).
pub const DEQUE_TESTS: &[(&str, &str)] = &[
    ("D0", "( lR | rL )"),
    ("Da", "ll ( RR | LL )"),
    ("Db", "( RL | r | l )"),
    ("Dm", "( l'l'l' | R'R'R' | L' | r' )"),
    ("Dq", "( l' | l' | r' | r' | L' | L' | R' | R' )"),
    ("Dx", "rrr ( R'R' | L'L' )"),
];

/// The stack tests for the `treiber` extension, following the Fig. 8
/// queue-test patterns (`u` = push, `o` = pop).
pub const STACK_TESTS: &[(&str, &str)] = &[
    ("U0", "( u | o )"),
    ("U1", "( u | u | o | o )"),
    ("Upc2", "( uu | oo )"),
    ("Upc3", "( uuu | ooo )"),
    ("Ui2", "u ( uo | ou )"),
];

/// Tests for the `lamport` SPSC extension: one producer thread, one
/// consumer thread (the algorithm's contract), reusing the queue keys.
pub const SPSC_TESTS: &[(&str, &str)] = &[
    ("L0", "( e | d )"),
    ("Li1", "e ( e | d )"),
    ("Lpc2", "( ee | dd )"),
    ("Lpc3", "( eee | ddd )"),
];

/// Parses a catalog test by name (searches all five groups).
pub fn by_name(name: &str) -> Option<TestSpec> {
    for (n, text) in QUEUE_TESTS
        .iter()
        .chain(SET_TESTS)
        .chain(DEQUE_TESTS)
        .chain(STACK_TESTS)
        .chain(SPSC_TESTS)
    {
        if *n == name {
            return Some(TestSpec::parse(n, text).expect("catalog entries parse"));
        }
    }
    None
}

/// All tests applicable to a shape.
pub fn for_shape(shape: Shape) -> Vec<TestSpec> {
    let table = match shape {
        Shape::Queue => QUEUE_TESTS,
        Shape::Set => SET_TESTS,
        Shape::Deque => DEQUE_TESTS,
        Shape::Stack => STACK_TESTS,
        Shape::Spsc => SPSC_TESTS,
    };
    table
        .iter()
        .map(|(n, t)| TestSpec::parse(n, t).expect("catalog entries parse"))
        .collect()
}

/// A small subset per shape suitable for fast regression tests.
pub fn smoke_for_shape(shape: Shape) -> Vec<TestSpec> {
    let names: &[&str] = match shape {
        Shape::Queue => &["T0", "Ti2"],
        Shape::Set => &["Sac", "Sar"],
        Shape::Deque => &["D0"],
        Shape::Stack => &["U0", "Ui2"],
        Shape::Spsc => &["L0", "Lpc2"],
    };
    names
        .iter()
        .map(|n| by_name(n).expect("smoke tests exist"))
        .collect()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn whole_catalog_parses() {
        for (n, t) in QUEUE_TESTS
            .iter()
            .chain(SET_TESTS)
            .chain(DEQUE_TESTS)
            .chain(STACK_TESTS)
            .chain(SPSC_TESTS)
        {
            let spec = TestSpec::parse(n, t).expect("parses");
            assert!(!spec.threads.is_empty(), "{n}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Tpc4").is_some());
        assert!(by_name("Dq").is_some());
        assert!(by_name("nope").is_none());
        let t = by_name("Ti2").expect("exists");
        assert_eq!(t.init.len(), 1);
        assert_eq!(t.threads.len(), 2);
    }

    #[test]
    fn primed_tests_are_primed() {
        let s1 = by_name("S1").expect("exists");
        assert!(s1.threads.iter().all(|t| t.iter().all(|o| o.primed)));
        let dq = by_name("Dq").expect("exists");
        assert_eq!(dq.threads.len(), 8);
    }

    #[test]
    fn counts_match_figure() {
        assert_eq!(QUEUE_TESTS.len(), 13);
        assert_eq!(SET_TESTS.len(), 9);
        assert_eq!(DEQUE_TESTS.len(), 6);
    }
}
