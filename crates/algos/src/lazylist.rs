//! `lazylist` — the lazy list-based set of Heller, Herlihy, Luchangco,
//! Moir, Scherer and Shavit (OPODIS 2005).
//!
//! A sorted linked list with sentinel head/tail nodes. Insertion and
//! deletion lock the two affected nodes and re-validate; membership test
//! is lock-free. Deletion is *lazy*: nodes are first marked
//! (`marked = 1`) and then unlinked.
//!
//! The [`Build::Buggy`] variant reproduces the not-previously-known bug
//! the paper found (§4.1): the published pseudocode "fails to properly
//! initialize the `marked` field when a new node is added to the list" —
//! a later `contains` reads the undefined field, which CheckFence
//! detects as an undefined-value error already in *serial* executions of
//! the `Sac` test.
//!
//! Keys are restricted to {0, 1} (test arguments); the sentinels use
//! keys −1 and 2.

use checkfence::Harness;

use crate::{compile_harness, set_ops, Variant};

/// Which build of the algorithm to produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Build {
    /// The published pseudocode: `marked` left uninitialized on add.
    Buggy,
    /// Initialization fixed, fences placed (passes on Relaxed).
    Fixed,
    /// Initialization fixed but no fences (fails on Relaxed).
    Unfenced,
}

/// The mini-C source.
pub fn source(build: Build) -> String {
    let fenced = build != Build::Unfenced;
    let f = |s: &'static str| if fenced { s } else { "" };
    let ll = f(r#"fence("load-load");"#);
    let publish = f(r#"fence("store-store");"#);
    let mark_first = f(r#"fence("store-store");"#);
    let init_marked = if build == Build::Buggy {
        "" // the published pseudocode omits this line
    } else {
        "n->marked = 0;"
    };
    format!(
        r#"
typedef struct node {{
    int key;
    struct node *next;
    int marked;
    int lock;
}} node_t;

typedef struct set {{
    node_t *head;
}} set_t;

set_t set;

void lock_node(node_t *n) {{
    int val;
    do {{
        atomic {{ val = n->lock; n->lock = 1; }}
    }} spinwhile (val != 0);
    fence("load-load");
    fence("load-store");
}}

void unlock_node(node_t *n) {{
    fence("load-store");
    fence("store-store");
    atomic {{ assert(n->lock == 1); n->lock = 0; }}
}}

void init_set() {{
    node_t *h = malloc(node_t);
    node_t *t = malloc(node_t);
    t->key = 2;
    t->next = 0;
    t->marked = 0;
    t->lock = 0;
    h->key = -1;
    h->next = t;
    h->marked = 0;
    h->lock = 0;
    set.head = h;
}}

bool add(int key) {{
    spin while (true) {{
        node_t *pred = set.head;
        {ll}
        node_t *curr = pred->next;
        {ll}
        while (curr->key < key) {{
            pred = curr;
            curr = curr->next;
            {ll}
        }}
        lock_node(pred);
        lock_node(curr);
        if (!pred->marked && !curr->marked && pred->next == curr) {{
            bool ret;
            if (curr->key == key) {{
                ret = false;
            }} else {{
                node_t *n = malloc(node_t);
                n->key = key;
                {init_marked}
                n->lock = 0;
                n->next = curr;
                {publish}
                pred->next = n;
                ret = true;
            }}
            unlock_node(curr);
            unlock_node(pred);
            return ret;
        }}
        unlock_node(curr);
        unlock_node(pred);
    }}
}}

bool remove(int key) {{
    spin while (true) {{
        node_t *pred = set.head;
        {ll}
        node_t *curr = pred->next;
        {ll}
        while (curr->key < key) {{
            pred = curr;
            curr = curr->next;
            {ll}
        }}
        lock_node(pred);
        lock_node(curr);
        if (!pred->marked && !curr->marked && pred->next == curr) {{
            bool ret;
            if (curr->key != key) {{
                ret = false;
            }} else {{
                curr->marked = 1;
                {mark_first}
                pred->next = curr->next;
                ret = true;
            }}
            unlock_node(curr);
            unlock_node(pred);
            return ret;
        }}
        unlock_node(curr);
        unlock_node(pred);
    }}
}}

bool contains(int key) {{
    node_t *curr = set.head;
    {ll}
    while (curr->key < key) {{
        curr = curr->next;
        {ll}
    }}
    if (curr->key == key) {{
        {ll}
        if (curr->marked) {{ return false; }}
        return true;
    }}
    return false;
}}

int add_op(int k) {{ return add(k); }}
int contains_op(int k) {{ return contains(k); }}
int remove_op(int k) {{ return remove(k); }}
"#
    )
}

/// Builds the checkable harness. All three operations observe their key
/// argument and a 0/1 return value.
pub fn harness(build: Build) -> Harness {
    let name = match build {
        Build::Buggy => "lazylist-buggy",
        Build::Fixed => "lazylist",
        Build::Unfenced => "lazylist-unfenced",
    };
    compile_harness(name, &source(build), "init_set", set_ops())
}

/// Convenience alias used by [`crate::Algo::harness`].
pub fn harness_for(variant: Variant) -> Harness {
    harness(match variant {
        Variant::Fenced => Build::Fixed,
        Variant::Unfenced => Build::Unfenced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{ExecError, Machine, Value};

    #[test]
    fn sources_compile() {
        harness(Build::Buggy);
        harness(Build::Fixed);
        harness(Build::Unfenced);
    }

    #[test]
    fn sequential_set_behaviour() {
        let h = harness(Build::Fixed);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_set").unwrap(), &[]).expect("init");
        let add = p.proc_id("add_op").unwrap();
        let contains = p.proc_id("contains_op").unwrap();
        let remove = p.proc_id("remove_op").unwrap();
        let one = [Value::Int(1)];
        let zero = [Value::Int(0)];
        assert_eq!(m.call(contains, &one).unwrap(), Some(Value::Int(0)));
        assert_eq!(m.call(add, &one).unwrap(), Some(Value::Int(1)));
        assert_eq!(
            m.call(add, &one).unwrap(),
            Some(Value::Int(0)),
            "already present"
        );
        assert_eq!(m.call(add, &zero).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(contains, &one).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(contains, &zero).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(remove, &one).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(contains, &one).unwrap(), Some(Value::Int(0)));
        assert_eq!(
            m.call(remove, &one).unwrap(),
            Some(Value::Int(0)),
            "already gone"
        );
        assert_eq!(m.call(contains, &zero).unwrap(), Some(Value::Int(1)));
    }

    #[test]
    fn buggy_variant_reads_uninitialized_marked_sequentially() {
        // add(k) then contains(k): contains reads the uninitialized
        // `marked` field — the bug the paper found (§4.1).
        let h = harness(Build::Buggy);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_set").unwrap(), &[]).expect("init");
        m.call(p.proc_id("add_op").unwrap(), &[Value::Int(1)])
            .expect("add itself succeeds");
        let err = m
            .call(p.proc_id("contains_op").unwrap(), &[Value::Int(1)])
            .expect_err("contains reads undefined marked");
        assert!(matches!(err, ExecError::UndefinedUse { .. }), "{err}");
    }
}
