//! `snark` — a DCAS-based nonblocking deque following Detlefs, Flood,
//! Garthwaite, Martin, Shavit and Steele (DISC 2000).
//!
//! The deque is a doubly-linked list of fresh nodes between two hats
//! (`LeftHat`, `RightHat`) and a self-linked `Dummy` sentinel:
//!
//! * *empty* is detected by a self-link (`hat->R == hat` from the right,
//!   `hat->L == hat` from the left);
//! * a push swings its hat and the outermost node's outward link onto the
//!   new node with one DCAS;
//! * a pop of the last element swings **both hats** back to `Dummy` with
//!   one DCAS; a pop of an outer element swings its hat inward while
//!   self-linking the popped node.
//!
//! `dcas` is modeled as an atomic block over two locations, exactly as
//! the paper models CAS (Fig. 6).
//!
//! [`Build::Original`] follows the published pop discipline: the
//! non-single-element pop covers the popped node's **own** back-link in
//! its DCAS. That is the published algorithm's flaw (Doherty et al.,
//! "DCAS is not a silver bullet"): popping one end does not invalidate
//! the link the *other* end's DCAS checks, so with a stale hat read a
//! node can be popped from **both ends** — the double-pop that this
//! reproduction's checker rediscovers on catalog test `Da` (already
//! under sequential consistency, matching §4.1: the snark bugs are logic
//! errors, not memory-model errors). [`Build::Fixed`] repairs the race
//! by covering the **neighbor's** link toward the popped node instead,
//! which the opposite end's pop rewrites.

use checkfence::Harness;

use crate::{compile_harness, deque_ops, Variant};

/// Which algorithm build to produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Build {
    /// Published pop discipline: the DCAS covers the popped node's own
    /// back-link (double-pop bug).
    Original,
    /// Corrected pops: the DCAS covers the neighbor's link toward the
    /// popped node.
    Fixed,
}

/// The mini-C source.
pub fn source(build: Build, variant: Variant) -> String {
    let f = |s: &'static str| match variant {
        Variant::Fenced => s,
        Variant::Unfenced => "",
    };
    let ll = f(r#"fence("load-load");"#);
    let publish = f(r#"fence("store-store");"#);
    // The builds differ only in the non-single pop path: which second
    // location the DCAS covers.
    let inner_right = match build {
        Build::Original => {
            r#"node_t *rhL = rh->L;
            {ll2}
            if (dcas(&RightHat, &rh->L,
                     (unsigned) rh, (unsigned) rhL, (unsigned) rhL, (unsigned) rh)) {
                {ll2}
                *pv = rh->V;
                return true;
            }"#
        }
        Build::Fixed => {
            r#"node_t *rhL = rh->L;
            {ll2}
            if (dcas(&RightHat, &rhL->R,
                     (unsigned) rh, (unsigned) rh, (unsigned) rhL, (unsigned) dum)) {
                {ll2}
                *pv = rh->V;
                return true;
            }"#
        }
    };
    let inner_left = match build {
        Build::Original => {
            r#"node_t *lhR = lh->R;
            {ll2}
            if (dcas(&LeftHat, &lh->R,
                     (unsigned) lh, (unsigned) lhR, (unsigned) lhR, (unsigned) lh)) {
                {ll2}
                *pv = lh->V;
                return true;
            }"#
        }
        Build::Fixed => {
            r#"node_t *lhR = lh->R;
            {ll2}
            if (dcas(&LeftHat, &lhR->L,
                     (unsigned) lh, (unsigned) lh, (unsigned) lhR, (unsigned) dum)) {
                {ll2}
                *pv = lh->V;
                return true;
            }"#
        }
    };
    let inner_right = inner_right.replace("{ll2}", ll);
    let inner_left = inner_left.replace("{ll2}", ll);
    format!(
        r#"
typedef struct node {{
    struct node *L;
    struct node *R;
    int V;
}} node_t;

node_t *Dummy;
node_t *LeftHat;
node_t *RightHat;

bool cas(unsigned *loc, unsigned old, unsigned new) {{
    atomic {{
        if (*loc == old) {{ *loc = new; return true; }}
        return false;
    }}
}}

bool dcas(unsigned *a1, unsigned *a2, unsigned o1, unsigned o2,
          unsigned n1, unsigned n2) {{
    atomic {{
        if (*a1 == o1 && *a2 == o2) {{
            *a1 = n1;
            *a2 = n2;
            return true;
        }}
        return false;
    }}
}}

void init_deque() {{
    node_t *d = malloc(node_t);
    d->L = d;
    d->R = d;
    d->V = -1;
    Dummy = d;
    LeftHat = d;
    RightHat = d;
}}

void push_right(int v) {{
    node_t *dum = Dummy;
    node_t *nd = malloc(node_t);
    nd->R = dum;
    nd->V = v;
    spin while (true) {{
        node_t *rh = RightHat;
        {ll}
        node_t *rhR = rh->R;
        {ll}
        if (rhR == rh) {{
            nd->L = dum;
            node_t *lh = LeftHat;
            {publish}
            if (dcas(&RightHat, &LeftHat,
                     (unsigned) rh, (unsigned) lh, (unsigned) nd, (unsigned) nd)) {{
                return;
            }}
        }} else {{
            nd->L = rh;
            {publish}
            if (dcas(&RightHat, &rh->R,
                     (unsigned) rh, (unsigned) rhR, (unsigned) nd, (unsigned) nd)) {{
                return;
            }}
        }}
    }}
}}

void push_left(int v) {{
    node_t *dum = Dummy;
    node_t *nd = malloc(node_t);
    nd->L = dum;
    nd->V = v;
    spin while (true) {{
        node_t *lh = LeftHat;
        {ll}
        node_t *lhL = lh->L;
        {ll}
        if (lhL == lh) {{
            nd->R = dum;
            node_t *rh = RightHat;
            {publish}
            if (dcas(&LeftHat, &RightHat,
                     (unsigned) lh, (unsigned) rh, (unsigned) nd, (unsigned) nd)) {{
                return;
            }}
        }} else {{
            nd->R = lh;
            {publish}
            if (dcas(&LeftHat, &lh->L,
                     (unsigned) lh, (unsigned) lhL, (unsigned) nd, (unsigned) nd)) {{
                return;
            }}
        }}
    }}
}}

bool pop_right(int *pv) {{
    node_t *dum = Dummy;
    spin while (true) {{
        node_t *rh = RightHat;
        {ll}
        node_t *rhR = rh->R;
        {ll}
        if (rhR == rh) {{
            return false;
        }}
        node_t *lh = LeftHat;
        {ll}
        if (rh == lh) {{
            if (dcas(&RightHat, &LeftHat,
                     (unsigned) rh, (unsigned) lh, (unsigned) dum, (unsigned) dum)) {{
                *pv = rh->V;
                return true;
            }}
        }} else {{
            {inner_right}
        }}
    }}
}}

bool pop_left(int *pv) {{
    node_t *dum = Dummy;
    spin while (true) {{
        node_t *lh = LeftHat;
        {ll}
        node_t *lhL = lh->L;
        {ll}
        if (lhL == lh) {{
            return false;
        }}
        node_t *rh = RightHat;
        {ll}
        if (lh == rh) {{
            if (dcas(&LeftHat, &RightHat,
                     (unsigned) lh, (unsigned) rh, (unsigned) dum, (unsigned) dum)) {{
                *pv = lh->V;
                return true;
            }}
        }} else {{
            {inner_left}
        }}
    }}
}}

void push_left_op(int v) {{ push_left(v); }}
void push_right_op(int v) {{ push_right(v); }}

int pop_left_op() {{
    int v;
    bool ok = pop_left(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}

int pop_right_op() {{
    int v;
    bool ok = pop_right(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}
"#
    )
}

/// Builds the checkable harness. Pops return 0 for "empty" and
/// `value + 1` otherwise.
pub fn harness(build: Build, variant: Variant) -> Harness {
    let name = match (build, variant) {
        (Build::Original, _) => "snark-original",
        (Build::Fixed, Variant::Fenced) => "snark",
        (Build::Fixed, Variant::Unfenced) => "snark-unfenced",
    };
    compile_harness(name, &source(build, variant), "init_deque", deque_ops())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{Machine, Value};

    fn run_sequence(build: Build) -> Vec<Option<Value>> {
        let h = harness(build, Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_deque").unwrap(), &[]).expect("init");
        let pl = p.proc_id("push_left_op").unwrap();
        let pr = p.proc_id("push_right_op").unwrap();
        let popl = p.proc_id("pop_left_op").unwrap();
        let popr = p.proc_id("pop_right_op").unwrap();
        let mut out = Vec::new();
        // deque after pushes: [1, 1, 0] (left to right)
        m.call(pr, &[Value::Int(1)]).expect("pr 1");
        m.call(pr, &[Value::Int(0)]).expect("pr 0");
        m.call(pl, &[Value::Int(1)]).expect("pl 1");
        out.push(m.call(popl, &[]).expect("popl")); // 1 -> 2
        out.push(m.call(popr, &[]).expect("popr")); // 0 -> 1
        out.push(m.call(popr, &[]).expect("popr")); // 1 -> 2 (single)
        out.push(m.call(popr, &[]).expect("popr")); // empty -> 0
        out.push(m.call(popl, &[]).expect("popl")); // empty -> 0
                                                    // refill after going empty
        m.call(pl, &[Value::Int(0)]).expect("pl 0");
        out.push(m.call(popr, &[]).expect("popr")); // 0 -> 1 (single)
        out
    }

    #[test]
    fn sources_compile() {
        for b in [Build::Original, Build::Fixed] {
            for v in [Variant::Fenced, Variant::Unfenced] {
                harness(b, v);
            }
        }
    }

    #[test]
    fn sequential_deque_behaviour_fixed() {
        assert_eq!(
            run_sequence(Build::Fixed),
            vec![
                Some(Value::Int(2)),
                Some(Value::Int(1)),
                Some(Value::Int(2)),
                Some(Value::Int(0)),
                Some(Value::Int(0)),
                Some(Value::Int(1)),
            ]
        );
    }

    #[test]
    fn sequential_deque_behaviour_original_matches_fixed() {
        // The seeded bug is concurrency-only.
        assert_eq!(run_sequence(Build::Original), run_sequence(Build::Fixed));
    }
}
