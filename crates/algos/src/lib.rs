//! # cf-algos — the five concurrent data types studied by CheckFence
//!
//! Mini-C implementations (closely following the published pseudocode,
//! with the memory-ordering fences the paper derived in §4.2–4.3) of the
//! algorithms in the paper's Table 1:
//!
//! | mnemonic   | algorithm | module |
//! |------------|-----------|--------|
//! | `ms2`      | Michael & Scott two-lock queue | [`ms2`] |
//! | `msn`      | Michael & Scott nonblocking queue (paper Fig. 9) | [`msn`] |
//! | `lazylist` | Heller et al. lazy list-based set | [`lazylist`] |
//! | `harris`   | Harris nonblocking list-based set | [`harris`] |
//! | `snark`    | Detlefs et al. DCAS-based deque | [`snark`] |
//!
//! Two extensions beyond Table 1 (the paper's §6 lists "more data type
//! implementations from the literature" as future work):
//!
//! | mnemonic   | algorithm | module |
//! |------------|-----------|--------|
//! | `treiber`  | Treiber lock-free stack | [`treiber`] |
//! | `lamport`  | Lamport SPSC ring buffer (no atomics at all) | [`lamport`] |
//!
//! Each module provides *fenced* and *unfenced* builds (the published
//! algorithms carry no fences; the fenced versions add the placements the
//! paper reports), and where the paper found algorithmic bugs, a *buggy*
//! variant reproducing them (`lazylist` misses the `marked`
//! initialization; `snark` admits a double pop).
//!
//! The crate also ships the Fig. 8 test catalog plus stack/SPSC
//! extensions ([`tests`]), pure-Rust reference models for fast
//! specification mining ([`refmodel`]), and fence-manipulation
//! utilities for necessity analysis ([`fences`]).
//!
//! ## Example
//!
//! ```
//! use cf_algos::{msn, tests};
//! use checkfence::{mine_reference, Query};
//! use cf_memmodel::Mode;
//!
//! let harness = msn::harness(cf_algos::Variant::Fenced);
//! let t0 = tests::by_name("T0").expect("catalog test");
//! let spec = mine_reference(&harness, &t0).expect("mines").spec;
//! let verdict = Query::check_inclusion(&harness, &t0, spec)
//!     .on(Mode::Relaxed)
//!     .run()
//!     .expect("runs");
//! assert!(verdict.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fences;
pub mod harris;
pub mod lamport;
pub mod lazylist;
pub mod ms2;
pub mod msn;
pub mod refmodel;
pub mod snark;
pub mod tests;
pub mod treiber;

use checkfence::{Harness, OpSig};

/// Fence configuration of an implementation build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// With the memory-ordering fences the paper derived (§4.2).
    Fenced,
    /// As published: no fences beyond those inside lock primitives.
    Unfenced,
}

/// The five studied implementations (paper Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    /// Two-lock queue.
    Ms2,
    /// Nonblocking queue.
    Msn,
    /// Lazy list-based set.
    Lazylist,
    /// Nonblocking set.
    Harris,
    /// DCAS deque.
    Snark,
}

impl Algo {
    /// All five, in Table 1 order.
    pub fn all() -> [Algo; 5] {
        [
            Algo::Ms2,
            Algo::Msn,
            Algo::Lazylist,
            Algo::Harris,
            Algo::Snark,
        ]
    }

    /// The paper's mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Ms2 => "ms2",
            Algo::Msn => "msn",
            Algo::Lazylist => "lazylist",
            Algo::Harris => "harris",
            Algo::Snark => "snark",
        }
    }

    /// Builds the harness for a variant (the correct algorithm; buggy
    /// variants are exposed by the individual modules).
    pub fn harness(self, variant: Variant) -> Harness {
        match self {
            Algo::Ms2 => ms2::harness(variant),
            Algo::Msn => msn::harness(variant),
            Algo::Lazylist => lazylist::harness(match variant {
                Variant::Fenced => lazylist::Build::Fixed,
                Variant::Unfenced => lazylist::Build::Unfenced,
            }),
            Algo::Harris => harris::harness(variant),
            Algo::Snark => snark::harness(snark::Build::Fixed, variant),
        }
    }

    /// Which kind of data type this is (selects tests and models).
    pub fn shape(self) -> Shape {
        match self {
            Algo::Ms2 | Algo::Msn => Shape::Queue,
            Algo::Lazylist | Algo::Harris => Shape::Set,
            Algo::Snark => Shape::Deque,
        }
    }
}

/// The abstract data type shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// FIFO queue: enqueue / dequeue.
    Queue,
    /// Set over keys {0,1}: add / contains / remove.
    Set,
    /// Double-ended queue: push/pop left/right.
    Deque,
    /// LIFO stack: push / pop (the `treiber` extension beyond the
    /// paper's Table 1).
    Stack,
    /// Single-producer single-consumer bounded queue of capacity 1 (the
    /// `lamport` extension): enqueue returns `false` when full, dequeue
    /// returns 0 when empty.
    Spsc,
}

pub(crate) fn queue_ops() -> Vec<OpSig> {
    vec![
        OpSig {
            key: 'e',
            proc_name: "enqueue_op".into(),
            num_args: 1,
            has_ret: false,
        },
        OpSig {
            key: 'd',
            proc_name: "dequeue_op".into(),
            num_args: 0,
            has_ret: true,
        },
    ]
}

pub(crate) fn set_ops() -> Vec<OpSig> {
    vec![
        OpSig {
            key: 'a',
            proc_name: "add_op".into(),
            num_args: 1,
            has_ret: true,
        },
        OpSig {
            key: 'c',
            proc_name: "contains_op".into(),
            num_args: 1,
            has_ret: true,
        },
        OpSig {
            key: 'r',
            proc_name: "remove_op".into(),
            num_args: 1,
            has_ret: true,
        },
    ]
}

pub(crate) fn spsc_ops() -> Vec<OpSig> {
    vec![
        OpSig {
            key: 'e',
            proc_name: "enqueue_op".into(),
            num_args: 1,
            has_ret: true,
        },
        OpSig {
            key: 'd',
            proc_name: "dequeue_op".into(),
            num_args: 0,
            has_ret: true,
        },
    ]
}

pub(crate) fn stack_ops() -> Vec<OpSig> {
    vec![
        OpSig {
            key: 'u',
            proc_name: "push_op".into(),
            num_args: 1,
            has_ret: false,
        },
        OpSig {
            key: 'o',
            proc_name: "pop_op".into(),
            num_args: 0,
            has_ret: true,
        },
    ]
}

pub(crate) fn deque_ops() -> Vec<OpSig> {
    vec![
        OpSig {
            key: 'l',
            proc_name: "push_left_op".into(),
            num_args: 1,
            has_ret: false,
        },
        OpSig {
            key: 'r',
            proc_name: "push_right_op".into(),
            num_args: 1,
            has_ret: false,
        },
        OpSig {
            key: 'L',
            proc_name: "pop_left_op".into(),
            num_args: 0,
            has_ret: true,
        },
        OpSig {
            key: 'R',
            proc_name: "pop_right_op".into(),
            num_args: 0,
            has_ret: true,
        },
    ]
}

pub(crate) fn compile_harness(
    name: &str,
    source: &str,
    init_proc: &str,
    ops: Vec<OpSig>,
) -> Harness {
    let program = cf_minic::compile(source)
        .unwrap_or_else(|e| panic!("bundled {name} source must compile: {e}"));
    Harness {
        name: name.into(),
        program,
        init_proc: Some(init_proc.into()),
        ops,
    }
}
