//! `harris` — the nonblocking list-based set of Harris (DISC 2001).
//!
//! A sorted linked list where deletion happens in two steps: the node is
//! first *logically* deleted by setting its mark, then *physically*
//! unlinked. Harris packs the mark bit into the `next` pointer so that a
//! single CAS covers both; the paper notes (footnote 1) that it models
//! such packed structures as atomically-accessed units. This
//! reproduction makes that explicit: `cas2` atomically compares and
//! updates the `(next, marked)` pair of one node, which is exactly the
//! packed-word CAS at LSL level.
//!
//! Traversals skip marked nodes; insertion at a marked predecessor fails
//! and retries (the `cas2` re-checks the mark).

use checkfence::Harness;

use crate::{compile_harness, set_ops, Variant};

/// The mini-C source.
pub fn source(variant: Variant) -> String {
    let f = |s: &'static str| match variant {
        Variant::Fenced => s,
        Variant::Unfenced => "",
    };
    let ll = f(r#"fence("load-load");"#);
    let publish = f(r#"fence("store-store");"#);
    format!(
        r#"
typedef struct node {{
    int key;
    struct node *next;
    int marked;
}} node_t;

typedef struct set {{
    node_t *head;
}} set_t;

set_t set;

bool cas2(unsigned *a1, unsigned *a2, unsigned o1, unsigned o2,
          unsigned n1, unsigned n2) {{
    atomic {{
        if (*a1 == o1 && *a2 == o2) {{
            *a1 = n1;
            *a2 = n2;
            return true;
        }}
        return false;
    }}
}}

void init_set() {{
    node_t *h = malloc(node_t);
    node_t *t = malloc(node_t);
    t->key = 2;
    t->next = 0;
    t->marked = 0;
    h->key = -1;
    h->next = t;
    h->marked = 0;
    set.head = h;
}}

bool add(int key) {{
    spin while (true) {{
        node_t *pred = set.head;
        {ll}
        node_t *curr = pred->next;
        {ll}
        int cm = curr->marked;
        {ll}
        while (curr->key < key || cm == 1) {{
            pred = curr;
            curr = curr->next;
            {ll}
            cm = curr->marked;
            {ll}
        }}
        if (curr->key == key) {{
            return false;
        }}
        node_t *n = malloc(node_t);
        n->key = key;
        n->marked = 0;
        n->next = curr;
        {publish}
        if (cas2(&pred->next, &pred->marked,
                 (unsigned) curr, 0, (unsigned) n, 0)) {{
            return true;
        }}
    }}
}}

bool remove(int key) {{
    spin while (true) {{
        node_t *pred = set.head;
        {ll}
        node_t *curr = pred->next;
        {ll}
        int cm = curr->marked;
        {ll}
        while (curr->key < key || cm == 1) {{
            pred = curr;
            curr = curr->next;
            {ll}
            cm = curr->marked;
            {ll}
        }}
        if (curr->key != key) {{
            return false;
        }}
        node_t *succ = curr->next;
        {ll}
        if (cas2(&curr->next, &curr->marked,
                 (unsigned) succ, 0, (unsigned) succ, 1)) {{
            cas2(&pred->next, &pred->marked,
                 (unsigned) curr, 0, (unsigned) succ, 0);
            return true;
        }}
    }}
}}

bool contains(int key) {{
    node_t *curr = set.head;
    {ll}
    while (curr->key < key) {{
        curr = curr->next;
        {ll}
    }}
    if (curr->key == key) {{
        {ll}
        if (curr->marked == 0) {{ return true; }}
    }}
    return false;
}}

int add_op(int k) {{ return add(k); }}
int contains_op(int k) {{ return contains(k); }}
int remove_op(int k) {{ return remove(k); }}
"#
    )
}

/// Builds the checkable harness.
pub fn harness(variant: Variant) -> Harness {
    let name = match variant {
        Variant::Fenced => "harris",
        Variant::Unfenced => "harris-unfenced",
    };
    compile_harness(name, &source(variant), "init_set", set_ops())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{Machine, Value};

    #[test]
    fn sources_compile() {
        harness(Variant::Fenced);
        harness(Variant::Unfenced);
    }

    #[test]
    fn sequential_set_behaviour() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_set").unwrap(), &[]).expect("init");
        let add = p.proc_id("add_op").unwrap();
        let contains = p.proc_id("contains_op").unwrap();
        let remove = p.proc_id("remove_op").unwrap();
        let k0 = [Value::Int(0)];
        let k1 = [Value::Int(1)];
        assert_eq!(m.call(add, &k0).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(add, &k1).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(add, &k0).unwrap(), Some(Value::Int(0)));
        assert_eq!(m.call(contains, &k0).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(remove, &k0).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(contains, &k0).unwrap(), Some(Value::Int(0)));
        assert_eq!(m.call(contains, &k1).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(remove, &k0).unwrap(), Some(Value::Int(0)));
        // Re-adding a removed key works (marked node is skipped).
        assert_eq!(m.call(add, &k0).unwrap(), Some(Value::Int(1)));
        assert_eq!(m.call(contains, &k0).unwrap(), Some(Value::Int(1)));
    }
}
