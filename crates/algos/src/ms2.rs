//! `ms2` — the two-lock queue of Michael & Scott (PODC 1996).
//!
//! The queue is a linked list with a dummy node; the head and tail are
//! protected by two independent spin locks (lock/unlock follow the
//! paper's Fig. 7, with the SPARC-style acquire/release fences built in).
//!
//! Because the two locks are independent, a dequeuer synchronizes with an
//! enqueuer only through the list itself, so the *publication* fence
//! (store-store before linking a node) and the *dependent-load* fence
//! (load-load between reading `next` and reading the node's fields) are
//! still required on Relaxed — the paper's "incomplete initialization"
//! and "reordering of value-dependent instructions" failures (§4.3).

use checkfence::Harness;

use crate::{compile_harness, queue_ops, Variant};

/// The mini-C source of the implementation.
pub fn source(variant: Variant) -> String {
    let (publish, dep) = match variant {
        Variant::Fenced => (r#"fence("store-store");"#, r#"fence("load-load");"#),
        Variant::Unfenced => ("", ""),
    };
    format!(
        r#"
typedef struct node {{
    struct node *next;
    int value;
}} node_t;

typedef struct queue {{
    node_t *head;
    node_t *tail;
    int head_lock;
    int tail_lock;
}} queue_t;

queue_t queue;

void lock(int *lk) {{
    int val;
    do {{
        atomic {{ val = *lk; *lk = 1; }}
    }} spinwhile (val != 0);
    fence("load-load");
    fence("load-store");
}}

void unlock(int *lk) {{
    fence("load-store");
    fence("store-store");
    atomic {{ assert(*lk == 1); *lk = 0; }}
}}

void init_queue() {{
    node_t *node = malloc(node_t);
    node->next = 0;
    queue.head = node;
    queue.tail = node;
    queue.head_lock = 0;
    queue.tail_lock = 0;
}}

void enqueue(int value) {{
    node_t *node = malloc(node_t);
    node->value = value;
    node->next = 0;
    {publish}
    lock(&queue.tail_lock);
    queue.tail->next = node;
    commit(1);
    queue.tail = node;
    unlock(&queue.tail_lock);
}}

bool dequeue(int *pvalue) {{
    lock(&queue.head_lock);
    node_t *node = queue.head;
    node_t *new_head = node->next;
    if (new_head == 0) {{
        commit(1);
        unlock(&queue.head_lock);
        return false;
    }}
    {dep}
    *pvalue = new_head->value;
    queue.head = new_head;
    commit(1);
    unlock(&queue.head_lock);
    free(node);
    return true;
}}

void enqueue_op(int v) {{ enqueue(v); }}

int dequeue_op() {{
    int v;
    bool ok = dequeue(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}
"#
    )
}

/// Builds the checkable harness. Observation encoding: `enqueue_op`
/// observes its argument; `dequeue_op` returns 0 for "empty" and
/// `value + 1` otherwise.
pub fn harness(variant: Variant) -> Harness {
    let name = match variant {
        Variant::Fenced => "ms2",
        Variant::Unfenced => "ms2-unfenced",
    };
    compile_harness(name, &source(variant), "init_queue", queue_ops())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_compile() {
        harness(Variant::Fenced);
        harness(Variant::Unfenced);
    }

    #[test]
    fn sequential_fifo_behaviour() {
        use cf_lsl::{Machine, Value};
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_queue").unwrap(), &[]).expect("init");
        let enq = p.proc_id("enqueue_op").unwrap();
        let deq = p.proc_id("dequeue_op").unwrap();
        m.call(enq, &[Value::Int(1)]).expect("enqueue 1");
        m.call(enq, &[Value::Int(0)]).expect("enqueue 0");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(2)), "1+1");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(1)), "0+1");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(0)), "empty");
    }
}
