//! `msn` — the nonblocking queue of Michael & Scott (PODC 1996), with the
//! fence placement of the paper's Fig. 9.
//!
//! This is, per the paper, "the first published version of Michael and
//! Scott's non-blocking queue that includes memory ordering fences". The
//! line comments reference the paper's figure:
//!
//! * line 29 — store-store: node fields before the linking CAS
//!   ("incomplete initialization", §4.3);
//! * lines 32/34 and 53/55/57 — load-load fences ordering the load
//!   sequences (`queue->tail`, `tail->next`, re-check) that the
//!   algorithm uses for synchronization ("reordering of load sequences");
//! * line 44 — store-store between the linking CAS and the tail-advance
//!   CAS ("reordering of CAS operations").
//!
//! Retry loops are marked `spin while`: their failing iterations perform
//! no stores, so the paper's spin-loop reduction applies.

use checkfence::Harness;

use crate::{compile_harness, queue_ops, Variant};

/// The mini-C source (paper Fig. 9, minus the pointer-counter packing the
/// paper also omits).
pub fn source(variant: Variant) -> String {
    match variant {
        Variant::Fenced => source_with_kinds(true, true),
        Variant::Unfenced => source_with_kinds(false, false),
    }
}

/// The Fig. 9 source with only the selected fence *kinds* included.
///
/// Partial builds drive the §4.2 architecture observation: "on some
/// architectures (such as Sun TSO or IBM zSeries), these fences are
/// automatic and the algorithm therefore works without inserting any
/// fences". On [`cf_memmodel::Mode::Tso`] both kinds are automatic; on
/// [`cf_memmodel::Mode::Pso`] only load-load order is automatic, so the
/// store-store placements (Fig. 9 lines 29 and 44) are still required.
pub fn source_with_kinds(load_load: bool, store_store: bool) -> String {
    let ll = |s: &'static str| if load_load { s } else { "" };
    let ss = |s: &'static str| if store_store { s } else { "" };
    let ss29 = ss(r#"fence("store-store");"#);
    let ll32 = ll(r#"fence("load-load");"#);
    let ll34 = ll(r#"fence("load-load");"#);
    let ss44 = ss(r#"fence("store-store");"#);
    let ll53 = ll(r#"fence("load-load");"#);
    let ll55 = ll(r#"fence("load-load");"#);
    let ll57 = ll(r#"fence("load-load");"#);
    format!(
        r#"
typedef struct node {{
    struct node *next;
    int value;
}} node_t;

typedef struct queue {{
    node_t *head;
    node_t *tail;
}} queue_t;

queue_t queue;

bool cas(unsigned *loc, unsigned old, unsigned new) {{
    atomic {{
        if (*loc == old) {{ *loc = new; return true; }}
        return false;
    }}
}}

void init_queue() {{
    node_t *node = malloc(node_t);
    node->next = 0;
    queue.head = node;
    queue.tail = node;
}}

void enqueue(int value) {{
    node_t *node, *tail, *next;
    node = malloc(node_t);
    node->value = value;
    node->next = 0;
    {ss29}
    spin while (true) {{
        tail = queue.tail;
        {ll32}
        next = tail->next;
        {ll34}
        if (tail == queue.tail) {{
            if (next == 0) {{
                if (cas(&tail->next, (unsigned) next, (unsigned) node)) {{
                    commit(1);
                    break;
                }}
            }} else {{
                cas(&queue.tail, (unsigned) tail, (unsigned) next);
            }}
        }}
    }}
    {ss44}
    cas(&queue.tail, (unsigned) tail, (unsigned) node);
}}

bool dequeue(int *pvalue) {{
    node_t *head, *tail, *next;
    spin while (true) {{
        head = queue.head;
        {ll53}
        tail = queue.tail;
        {ll55}
        next = head->next;
        {ll57}
        if (head == queue.head) {{
            if (head == tail) {{
                if (next == 0) {{
                    node_t *next2 = head->next;
                    if (next2 == 0) {{
                        commit(1);
                        return false;
                    }}
                }} else {{
                    cas(&queue.tail, (unsigned) tail, (unsigned) next);
                }}
            }} else {{
                *pvalue = next->value;
                if (cas(&queue.head, (unsigned) head, (unsigned) next)) {{
                    commit(1);
                    break;
                }}
            }}
        }}
    }}
    delete_node(head);
    return true;
}}

void enqueue_op(int v) {{ enqueue(v); }}

int dequeue_op() {{
    int v;
    bool ok = dequeue(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}
"#
    )
}

/// Builds the checkable harness. Observation encoding: `enqueue_op`
/// observes its argument; `dequeue_op` returns 0 for "empty" and
/// `value + 1` otherwise.
pub fn harness(variant: Variant) -> Harness {
    let name = match variant {
        Variant::Fenced => "msn",
        Variant::Unfenced => "msn-unfenced",
    };
    compile_harness(name, &source(variant), "init_queue", queue_ops())
}

/// Builds a harness containing only the selected fence kinds (see
/// [`source_with_kinds`]).
pub fn harness_with_kinds(load_load: bool, store_store: bool) -> Harness {
    let name = match (load_load, store_store) {
        (true, true) => "msn",
        (true, false) => "msn-ll-only",
        (false, true) => "msn-ss-only",
        (false, false) => "msn-unfenced",
    };
    compile_harness(
        name,
        &source_with_kinds(load_load, store_store),
        "init_queue",
        queue_ops(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{Machine, Value};

    #[test]
    fn sources_compile() {
        harness(Variant::Fenced);
        harness(Variant::Unfenced);
    }

    #[test]
    fn sequential_fifo_behaviour() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_queue").unwrap(), &[]).expect("init");
        let enq = p.proc_id("enqueue_op").unwrap();
        let deq = p.proc_id("dequeue_op").unwrap();
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(0)), "empty");
        m.call(enq, &[Value::Int(0)]).expect("enqueue 0");
        m.call(enq, &[Value::Int(1)]).expect("enqueue 1");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(1)), "0+1");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(2)), "1+1");
        assert_eq!(m.call(deq, &[]).unwrap(), Some(Value::Int(0)), "empty");
    }

    #[test]
    fn fenced_source_has_seven_fences_outside_cas() {
        let h = harness(Variant::Fenced);
        let sites = crate::fences::fence_sites(&h.program);
        assert_eq!(sites.len(), 7, "fig. 9 places 7 fences");
        let h = harness(Variant::Unfenced);
        assert!(crate::fences::fence_sites(&h.program).is_empty());
    }
}
