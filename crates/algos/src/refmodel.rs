//! Pure-Rust reference models of the three data type shapes.
//!
//! The paper's Fig. 11a shows that observation sets can be enumerated
//! much faster from "a small, fast reference implementation" (the
//! `refset` series). These models are that implementation: trivially
//! correct sequential data types whose serial interleavings define the
//! specification, independent of the mini-C implementation under test.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use cf_lsl::Value;
use checkfence::{ObsSet, TestSpec};

use crate::Shape;

/// Sequential state of one reference data type.
#[derive(Clone, Debug, Default)]
enum State {
    #[default]
    Empty,
    Queue(VecDeque<i64>),
    Set([bool; 2]),
    Deque(VecDeque<i64>),
    Stack(Vec<i64>),
    Spsc(VecDeque<i64>),
}

/// Applies one operation; returns the observed return value (if the
/// operation has one) using the same encoding as the mini-C wrappers
/// (pops/dequeues: 0 = empty, value + 1 otherwise; set ops: 0/1).
fn apply(state: &mut State, key: char, arg: i64) -> Option<i64> {
    match state {
        State::Queue(q) => match key {
            'e' => {
                q.push_back(arg);
                None
            }
            'd' => Some(q.pop_front().map_or(0, |v| v + 1)),
            _ => panic!("unknown queue op `{key}`"),
        },
        State::Set(present) => {
            let k = usize::try_from(arg).expect("keys are 0 or 1");
            match key {
                'a' => {
                    let added = !present[k];
                    present[k] = true;
                    Some(i64::from(added))
                }
                'c' => Some(i64::from(present[k])),
                'r' => {
                    let removed = present[k];
                    present[k] = false;
                    Some(i64::from(removed))
                }
                _ => panic!("unknown set op `{key}`"),
            }
        }
        State::Deque(d) => match key {
            'l' => {
                d.push_front(arg);
                None
            }
            'r' => {
                d.push_back(arg);
                None
            }
            'L' => Some(d.pop_front().map_or(0, |v| v + 1)),
            'R' => Some(d.pop_back().map_or(0, |v| v + 1)),
            _ => panic!("unknown deque op `{key}`"),
        },
        State::Spsc(q) => match key {
            'e' => {
                if !q.is_empty() {
                    Some(0) // full (capacity 1)
                } else {
                    q.push_back(arg);
                    Some(1)
                }
            }
            'd' => Some(q.pop_front().map_or(0, |v| v + 1)),
            _ => panic!("unknown spsc op `{key}`"),
        },
        State::Stack(st) => match key {
            'u' => {
                st.push(arg);
                None
            }
            'o' => Some(st.pop().map_or(0, |v| v + 1)),
            _ => panic!("unknown stack op `{key}`"),
        },
        State::Empty => unreachable!("state initialized before use"),
    }
}

fn fresh(shape: Shape) -> State {
    match shape {
        Shape::Queue => State::Queue(VecDeque::new()),
        Shape::Set => State::Set([false, false]),
        Shape::Deque => State::Deque(VecDeque::new()),
        Shape::Stack => State::Stack(Vec::new()),
        Shape::Spsc => State::Spsc(VecDeque::new()),
    }
}

fn op_has_ret(shape: Shape, key: char) -> bool {
    match shape {
        Shape::Queue => key == 'd',
        Shape::Set => true,
        Shape::Deque => key == 'L' || key == 'R',
        Shape::Stack => key == 'o',
        Shape::Spsc => true,
    }
}

fn op_has_arg(shape: Shape, key: char) -> bool {
    match shape {
        Shape::Queue => key == 'e',
        Shape::Set => true,
        Shape::Deque => key == 'l' || key == 'r',
        Shape::Stack => key == 'u',
        Shape::Spsc => key == 'e',
    }
}

/// Enumerates the observation set of `test` against the reference model
/// of `shape` — all interleavings of whole operations crossed with all
/// {0,1} argument assignments.
///
/// # Panics
///
/// Panics on operation keys that do not belong to the shape, or if the
/// test has more than 20 nondeterministic arguments.
pub fn mine(shape: Shape, test: &TestSpec) -> ObsSet {
    let arg_count: usize = test.all_ops().filter(|o| op_has_arg(shape, o.key)).count();
    assert!(arg_count <= 20, "too many arguments to enumerate");

    // Enumerate interleavings as sequences of thread picks.
    let sizes: Vec<usize> = test.threads.iter().map(Vec::len).collect();
    let mut schedules = Vec::new();
    fn rec(
        sizes: &[usize],
        progress: &mut Vec<usize>,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if sizes.iter().zip(progress.iter()).all(|(s, p)| p >= s) {
            out.push(cur.clone());
            return;
        }
        for t in 0..sizes.len() {
            if progress[t] < sizes[t] {
                progress[t] += 1;
                cur.push(t);
                rec(sizes, progress, cur, out);
                cur.pop();
                progress[t] -= 1;
            }
        }
    }
    rec(
        &sizes,
        &mut vec![0; sizes.len()],
        &mut Vec::new(),
        &mut schedules,
    );

    let mut vectors = BTreeSet::new();
    for bits in 0u32..(1 << arg_count) {
        for schedule in &schedules {
            let mut state = fresh(shape);
            let mut next_arg = 0usize;
            let take = |bits: u32, next_arg: &mut usize| {
                let v = i64::from(bits >> *next_arg & 1);
                *next_arg += 1;
                v
            };
            let mut obs: Vec<Value> = Vec::new();
            // Init ops run first, observed in order.
            for op in &test.init {
                let arg = if op_has_arg(shape, op.key) {
                    let v = take(bits, &mut next_arg);
                    obs.push(Value::Int(v));
                    v
                } else {
                    0
                };
                if let Some(r) = apply(&mut state, op.key, arg) {
                    if op_has_ret(shape, op.key) {
                        obs.push(Value::Int(r));
                    }
                }
            }
            // Thread ops run per schedule; observations grouped by thread.
            let mut per_thread: Vec<Vec<Value>> = vec![Vec::new(); sizes.len()];
            let mut progress = vec![0usize; sizes.len()];
            for &t in schedule {
                let op = &test.threads[t][progress[t]];
                progress[t] += 1;
                let arg = if op_has_arg(shape, op.key) {
                    let v = take(bits, &mut next_arg);
                    per_thread[t].push(Value::Int(v));
                    v
                } else {
                    0
                };
                let ret = apply(&mut state, op.key, arg);
                if op_has_ret(shape, op.key) {
                    per_thread[t].push(Value::Int(ret.expect("op has return")));
                }
            }
            for t in per_thread {
                obs.extend(t);
            }
            vectors.insert(obs);
        }
    }
    ObsSet { vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkfence::TestSpec;

    #[test]
    fn queue_t0_observations() {
        let t = TestSpec::parse("T0", "( e | d )").expect("parses");
        let spec = mine(Shape::Queue, &t);
        // obs = (enq arg, deq ret): deq sees empty (0) or arg+1.
        let expect: BTreeSet<Vec<Value>> = [
            vec![Value::Int(0), Value::Int(0)],
            vec![Value::Int(0), Value::Int(1)],
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(1), Value::Int(2)],
        ]
        .into_iter()
        .collect();
        assert_eq!(spec.vectors, expect);
    }

    #[test]
    fn set_sac_observations() {
        let t = TestSpec::parse("Sac", "( a | c )").expect("parses");
        let spec = mine(Shape::Set, &t);
        // obs = (add key, add ret=1, contains key, contains ret).
        // contains(k) sees the added key only if keys match and add ran
        // first.
        assert!(spec.vectors.contains(&vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
            Value::Int(1)
        ]));
        assert!(spec.vectors.contains(&vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
            Value::Int(0)
        ]));
        assert!(spec.vectors.contains(&vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(0),
            Value::Int(0)
        ]));
        assert!(!spec.vectors.contains(&vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(0),
            Value::Int(1)
        ]));
    }

    #[test]
    fn deque_order_matters() {
        let t = TestSpec::parse("Dx", "rr ( R | L )").expect("parses");
        let spec = mine(Shape::Deque, &t);
        // push 0 then 1 rightward; pops from both ends never return the
        // same element twice.
        for obs in &spec.vectors {
            let (r, l) = (&obs[2], &obs[3]);
            if let (Value::Int(a), Value::Int(b)) = (r, l) {
                if *a != 0 && *b != 0 {
                    // both non-empty: they took different ends
                    let args = (&obs[0], &obs[1]);
                    let (Value::Int(x), Value::Int(y)) = args else {
                        panic!()
                    };
                    assert_eq!(*a, y + 1, "pop right sees last push");
                    assert_eq!(*b, x + 1, "pop left sees first push");
                }
            }
        }
    }

    #[test]
    fn queue_model_agrees_with_interpreter_mining() {
        // The Rust model and the interpreter-run msn implementation must
        // produce identical specifications.
        let h = crate::msn::harness(crate::Variant::Fenced);
        for (name, text) in &crate::tests::QUEUE_TESTS[..3] {
            let t = TestSpec::parse(name, text).expect("parses");
            let model = mine(Shape::Queue, &t);
            let interp = checkfence::mine_reference(&h, &t).expect("mines").spec;
            assert_eq!(model, interp, "spec mismatch on {name}");
        }
    }
}
