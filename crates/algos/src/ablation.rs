//! Fig. 11-style ablation studies over the bundled data types.
//!
//! The paper validates the checker itself by mutating the studied
//! implementations — deleting the fences it derived, weakening their
//! kinds, reordering adjacent operations — and confirming that every
//! injected bug is caught. This driver reproduces those experiments on
//! the batched mutation engine ([`checkfence::mutate`]): one
//! [`CheckSession`](checkfence::CheckSession) encoding per (subject,
//! test) answers the whole mutant × model matrix through assumptions,
//! under all five built-in models *and* any user `.cfm` specs supplied.
//!
//! ```no_run
//! use cf_algos::ablation::{run_ablation, Oracle};
//!
//! let outcome = run_ablation("treiber", &[], Oracle::Session, 1).expect("runs");
//! for report in &outcome.reports {
//!     println!("{}", report.table());
//!     assert_eq!(report.session.encodes, 1, "one encoding per matrix");
//! }
//! ```

use cf_memmodel::Mode;
use cf_spec::ModelSpec;
use checkfence::mutate::{
    run_mutation_matrix, run_mutation_matrix_oneshot, MatrixConfig, MutationConfig, MutationPlan,
    MutationReport,
};
use checkfence::{CheckError, Harness, TestSpec};

use crate::{lazylist, ms2, msn, tests, treiber, Variant};

/// Which checking path answers the matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Oracle {
    /// One incremental session, mutants selected by assumptions (the
    /// batched engine).
    Session,
    /// A fresh one-shot checker per (mutant, model) cell — the paper's
    /// naive protocol, kept as the equivalence/benchmark baseline.
    Oneshot,
}

/// An ablation subject: a fenced build plus the tests and the mutation
/// scope the matrix runs over.
pub struct Subject {
    /// The fenced harness.
    pub harness: Harness,
    /// Catalog tests checked (small ones — every mutant is checked under
    /// every model for each test).
    pub tests: Vec<TestSpec>,
    /// The mutation scope (procedures of the algorithm proper).
    pub mutation: MutationConfig,
}

/// The subjects [`run_ablation`] knows, in report order.
pub fn subjects() -> [&'static str; 4] {
    ["treiber", "ms2", "msn", "lazylist"]
}

/// Builds an ablation subject by mnemonic (see [`subjects`]).
pub fn subject(name: &str) -> Option<Subject> {
    let pick = |names: &[&str]| -> Vec<TestSpec> {
        names
            .iter()
            .map(|n| tests::by_name(n).expect("catalog test"))
            .collect()
    };
    let scoped = |procs: &[&str]| MutationConfig {
        procs: Some(procs.iter().map(ToString::to_string).collect()),
        ..MutationConfig::default()
    };
    match name {
        "treiber" => Some(Subject {
            harness: treiber::harness(Variant::Fenced),
            tests: pick(&["U0"]),
            mutation: scoped(&["push", "pop"]),
        }),
        "ms2" => Some(Subject {
            harness: ms2::harness(Variant::Fenced),
            tests: pick(&["T0"]),
            mutation: scoped(&["enqueue", "dequeue"]),
        }),
        "msn" => Some(Subject {
            harness: msn::harness(Variant::Fenced),
            tests: pick(&["T0"]),
            mutation: scoped(&["enqueue", "dequeue"]),
        }),
        "lazylist" => Some(Subject {
            harness: lazylist::harness(lazylist::Build::Fixed),
            tests: pick(&["Sac"]),
            mutation: scoped(&["add", "contains"]),
        }),
        _ => None,
    }
}

/// The result of one ablation run: a Fig. 11-style mutant matrix per
/// test.
pub struct AblationOutcome {
    /// Subject mnemonic.
    pub name: String,
    /// One report per test of the subject.
    pub reports: Vec<MutationReport>,
}

/// Why an ablation run failed.
#[derive(Debug)]
pub enum AblationError {
    /// The subject mnemonic is not in [`subjects`].
    UnknownSubject(String),
    /// The underlying checker failed.
    Check(CheckError),
}

impl std::fmt::Display for AblationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AblationError::UnknownSubject(n) => {
                write!(
                    f,
                    "unknown ablation subject `{n}` (expected one of {:?})",
                    subjects()
                )
            }
            AblationError::Check(e) => write!(f, "checker error during ablation: {e}"),
        }
    }
}

impl std::error::Error for AblationError {}

impl From<CheckError> for AblationError {
    fn from(e: CheckError) -> Self {
        AblationError::Check(e)
    }
}

/// Runs the full mutant matrix of one subject under every built-in
/// model plus the given declarative specs, one report per catalog test.
/// With `jobs > 1` the session path shards each matrix across that many
/// engine workers (one session replica per shard); verdicts are
/// identical at any job count.
///
/// # Errors
///
/// [`AblationError::UnknownSubject`] for a bad mnemonic; checker errors
/// otherwise (per-cell bound divergence is a verdict, not an error).
pub fn run_ablation(
    name: &str,
    specs: &[ModelSpec],
    oracle: Oracle,
    jobs: usize,
) -> Result<AblationOutcome, AblationError> {
    let subject = subject(name).ok_or_else(|| AblationError::UnknownSubject(name.to_string()))?;
    let config = MatrixConfig {
        modes: Mode::all().to_vec(),
        specs: specs.to_vec(),
        jobs,
        ..MatrixConfig::default()
    };
    let plan = MutationPlan::build(&subject.harness.program, &subject.mutation);
    let mut reports = Vec::with_capacity(subject.tests.len());
    for test in &subject.tests {
        let report = match oracle {
            Oracle::Session => run_mutation_matrix(&subject.harness, test, &plan, &config)?,
            Oracle::Oneshot => run_mutation_matrix_oneshot(&subject.harness, test, &plan, &config)?,
        };
        reports.push(report);
    }
    Ok(AblationOutcome {
        name: name.to_string(),
        reports,
    })
}

#[cfg(test)]
mod tests_mod {
    use super::*;

    #[test]
    fn every_subject_resolves_and_plans_mutants() {
        for name in subjects() {
            let s = subject(name).expect("known subject");
            let plan = MutationPlan::build(&s.harness.program, &s.mutation);
            assert!(
                !plan.points.is_empty(),
                "{name}: the mutation planner found nothing to mutate"
            );
        }
        assert!(subject("nope").is_none());
    }
}
