//! `treiber` — Treiber's lock-free stack (IBM technical report RJ5118,
//! 1986), as a sixth data type beyond the paper's Table 1.
//!
//! The paper's §6 lists "more data type implementations from the
//! literature" as future work; the Treiber stack is the canonical next
//! candidate: the simplest compare-and-swap retry loop, and it exhibits
//! two of the paper's four §4.3 failure classes on relaxed models:
//!
//! * **incomplete initialization** — the node's `value`/`next` fields
//!   must be published before the linking CAS (a store-store fence
//!   inside the retry loop, analogous to Fig. 9 line 29);
//! * **reordering of value-dependent instructions** — `pop` loads
//!   `stack.top` and then dereferences it (`t->next`, `t->value`); on
//!   Relaxed the dependent loads may be speculated early, so a
//!   load-load fence is required after the `stack.top` load.
//!
//! The fenced build carries exactly those two fences; [`harness_with_kinds`]
//! exposes partial builds for the TSO/PSO architecture sweep.

use checkfence::Harness;

use crate::{compile_harness, stack_ops, Variant};

/// The mini-C source.
pub fn source(variant: Variant) -> String {
    match variant {
        Variant::Fenced => source_with_kinds(true, true),
        Variant::Unfenced => source_with_kinds(false, false),
    }
}

/// The source with only the selected fence kinds included (for the
/// TSO/PSO model sweep, mirroring [`crate::msn::source_with_kinds`]).
pub fn source_with_kinds(load_load: bool, store_store: bool) -> String {
    let ll = |s: &'static str| if load_load { s } else { "" };
    let ss = |s: &'static str| if store_store { s } else { "" };
    let publish = ss(r#"fence("store-store");"#);
    let deref = ll(r#"fence("load-load");"#);
    format!(
        r#"
typedef struct node {{
    int value;
    struct node *next;
}} node_t;

typedef struct stack {{
    node_t *top;
}} stack_t;

stack_t stack;

bool cas(unsigned *loc, unsigned old, unsigned new) {{
    atomic {{
        if (*loc == old) {{ *loc = new; return true; }}
        return false;
    }}
}}

void init_stack() {{
    stack.top = 0;
}}

void push(int value) {{
    node_t *n = malloc(node_t);
    n->value = value;
    spin while (true) {{
        node_t *t = stack.top;
        n->next = t;
        {publish}
        if (cas(&stack.top, (unsigned) t, (unsigned) n)) {{
            commit(1);
            break;
        }}
    }}
}}

bool pop(int *pvalue) {{
    spin while (true) {{
        node_t *t = stack.top;
        if (t == 0) {{
            commit(1);
            return false;
        }}
        {deref}
        node_t *next = t->next;
        if (cas(&stack.top, (unsigned) t, (unsigned) next)) {{
            commit(1);
            *pvalue = t->value;
            break;
        }}
    }}
    return true;
}}

void push_op(int v) {{ push(v); }}

int pop_op() {{
    int v;
    bool ok = pop(&v);
    if (ok) {{ return v + 1; }}
    return 0;
}}
"#
    )
}

/// Builds the checkable harness. Observation encoding matches the queue
/// wrappers: `push_op` observes its argument; `pop_op` returns 0 for
/// "empty" and `value + 1` otherwise.
pub fn harness(variant: Variant) -> Harness {
    let name = match variant {
        Variant::Fenced => "treiber",
        Variant::Unfenced => "treiber-unfenced",
    };
    compile_harness(name, &source(variant), "init_stack", stack_ops())
}

/// Builds a harness containing only the selected fence kinds.
pub fn harness_with_kinds(load_load: bool, store_store: bool) -> Harness {
    let name = match (load_load, store_store) {
        (true, true) => "treiber",
        (true, false) => "treiber-ll-only",
        (false, true) => "treiber-ss-only",
        (false, false) => "treiber-unfenced",
    };
    compile_harness(
        name,
        &source_with_kinds(load_load, store_store),
        "init_stack",
        stack_ops(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_lsl::{Machine, Value};

    #[test]
    fn sources_compile() {
        harness(Variant::Fenced);
        harness(Variant::Unfenced);
        harness_with_kinds(false, true);
        harness_with_kinds(true, false);
    }

    #[test]
    fn sequential_lifo_behaviour() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_stack").unwrap(), &[]).expect("init");
        let push = p.proc_id("push_op").unwrap();
        let pop = p.proc_id("pop_op").unwrap();
        assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(0)), "empty");
        m.call(push, &[Value::Int(0)]).expect("push 0");
        m.call(push, &[Value::Int(1)]).expect("push 1");
        assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(2)), "1+1");
        assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(1)), "0+1");
        assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(0)), "empty");
    }

    #[test]
    fn fenced_source_has_two_fences() {
        let h = harness(Variant::Fenced);
        let sites = crate::fences::fence_sites(&h.program);
        assert_eq!(sites.len(), 2, "{sites:?}");
        let h = harness(Variant::Unfenced);
        assert!(crate::fences::fence_sites(&h.program).is_empty());
    }

    #[test]
    fn interleaved_push_pop_round_trip() {
        let h = harness(Variant::Fenced);
        let p = &h.program;
        let mut m = Machine::new(p);
        m.call(p.proc_id("init_stack").unwrap(), &[]).expect("init");
        let push = p.proc_id("push_op").unwrap();
        let pop = p.proc_id("pop_op").unwrap();
        for v in 0..2 {
            m.call(push, &[Value::Int(v)]).expect("push");
            assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(v + 1)));
        }
        assert_eq!(m.call(pop, &[]).unwrap(), Some(Value::Int(0)));
    }
}
