//! Session-vs-oneshot equivalence: a [`CheckSession`] answering the full
//! `Mode` lattice from one persistent encoding must return exactly the
//! results of per-configuration one-shot `Checker`s — same mined
//! observation sets, same pass/fail verdicts, same failure kinds — for
//! every catalog implementation.
//!
//! This is the regression gate of the incremental-session architecture:
//! any divergence means a mode-selector or activation-literal gating bug.
//!
//! This suite (like `mutation_equiv.rs` and `query_equiv.rs`) is the
//! sanctioned caller of the deprecated method grid: the legacy shims
//! must keep answering exactly like the query engine and the one-shot
//! oracles, so the equivalence tests exercise them on purpose.
#![allow(deprecated)]

use cf_algos::{harris, lazylist, ms2, msn, snark, tests, treiber, Variant};
use cf_lsl::FenceKind;
use cf_memmodel::Mode;
use checkfence::infer::{infer, infer_baseline, InferConfig};
use checkfence::{CheckOutcome, CheckSession, Checker, Harness};

/// Mines the spec with the session and the one-shot checker (both SAT
/// paths plus the reference interpreter) and checks every hardware mode
/// on both paths, asserting bit-identical observation sets and verdicts.
fn assert_equivalent(h: &Harness, test_name: &str) {
    let t = tests::by_name(test_name).expect("catalog test");
    let mut session = CheckSession::new(h, &t);

    let mined = session.mine_spec().expect("session mining").spec;
    let oneshot = Checker::new(h, &t);
    let mined_oneshot = oneshot.mine_spec_oneshot().expect("one-shot mining").spec;
    assert_eq!(
        mined.vectors, mined_oneshot.vectors,
        "{} / {test_name}: session and one-shot SAT mining disagree",
        h.name
    );
    let reference = oneshot
        .mine_spec_reference()
        .expect("reference mining")
        .spec;
    assert_eq!(
        mined.vectors, reference.vectors,
        "{} / {test_name}: SAT mining and reference interpreter disagree",
        h.name
    );

    for mode in Mode::hardware() {
        let s = session
            .check_inclusion(mode, &mined)
            .expect("session inclusion");
        let o = Checker::new(h, &t)
            .with_memory_model(mode)
            .check_inclusion_oneshot(&mined)
            .expect("one-shot inclusion");
        assert_eq!(
            s.outcome.passed(),
            o.outcome.passed(),
            "{} / {test_name} on {}: session and one-shot verdicts disagree",
            h.name,
            mode.name()
        );
        if let (CheckOutcome::Fail(sc), CheckOutcome::Fail(oc)) = (&s.outcome, &o.outcome) {
            assert_eq!(
                sc.kind,
                oc.kind,
                "{} / {test_name} on {}: failure kinds disagree",
                h.name,
                mode.name()
            );
        }
    }
    // The whole lattice was answered from one persistent solver.
    let stats = session.stats();
    assert_eq!(
        stats.symexecs, stats.encodes,
        "every symbolic execution is encoded exactly once"
    );
    assert_eq!(stats.queries, 5, "mining + four hardware modes");
}

#[test]
fn ms2_sessions_match_oneshot() {
    assert_equivalent(&ms2::harness(Variant::Fenced), "T0");
}

#[test]
fn msn_sessions_match_oneshot() {
    assert_equivalent(&msn::harness(Variant::Fenced), "T0");
}

#[test]
fn msn_unfenced_sessions_match_oneshot() {
    // Failing builds too: counterexample verdicts must agree per mode.
    assert_equivalent(&msn::harness(Variant::Unfenced), "T0");
}

#[test]
fn lazylist_sessions_match_oneshot() {
    assert_equivalent(&lazylist::harness(lazylist::Build::Fixed), "Sac");
}

#[test]
fn harris_sessions_match_oneshot() {
    assert_equivalent(&harris::harness(Variant::Fenced), "Sac");
}

#[test]
fn snark_sessions_match_oneshot() {
    assert_equivalent(&snark::harness(snark::Build::Fixed, Variant::Fenced), "D0");
}

#[test]
fn treiber_sessions_match_oneshot() {
    assert_equivalent(&treiber::harness(Variant::Fenced), "U0");
}

#[test]
fn treiber_unfenced_sessions_match_oneshot() {
    assert_equivalent(&treiber::harness(Variant::Unfenced), "U0");
}

/// The acceptance criterion of the session refactor: fence inference on
/// the Treiber stack performs exactly one symbolic execution and one
/// encode per test, answers every candidate build by assumptions, and
/// lands on the same 1-minimal placement as the per-candidate baseline.
#[test]
fn treiber_inference_is_encode_once_and_matches_baseline() {
    let h = treiber::harness(Variant::Unfenced);
    let u0 = vec![tests::by_name("U0").expect("catalog")];
    let config = InferConfig {
        kinds: vec![FenceKind::LoadLoad, FenceKind::StoreStore],
        procs: Some(vec!["push".into(), "pop".into()]),
        ..InferConfig::default()
    };
    let session = infer(&h, &u0, Mode::Relaxed, &config).expect("session inference");
    // One test, stable spin-loop bounds: exactly one symbolic execution
    // and one encode for the whole candidate search.
    assert_eq!(session.symexecs, 1, "one symbolic execution per test");
    assert_eq!(session.encodes, 1, "one encode per test");
    assert!(
        session.checks as u64 <= session.sat.solves,
        "candidate builds are assumption-vector queries on one solver"
    );
    // The paper's Treiber repair: one store-store fence in push, one
    // load-load fence in pop.
    assert_eq!(session.kept.len(), 2, "kept: {:?}", session.kept);

    let baseline = infer_baseline(&h, &u0, Mode::Relaxed, &config).expect("baseline inference");
    assert_eq!(
        session.kept, baseline.kept,
        "session and per-candidate inference must agree on the placement"
    );
    assert_eq!(session.checks, baseline.checks, "identical search traces");
    assert!(
        baseline.encodes > session.encodes,
        "the baseline re-encodes per check ({} vs {})",
        baseline.encodes,
        session.encodes
    );
}

/// Commit-point queries ride the same session solver as observation
/// queries and agree with the one-shot implementation.
#[test]
fn treiber_commit_method_sessions_match_oneshot() {
    use checkfence::commit::AbstractType;
    let h = treiber::harness(Variant::Fenced);
    let t = tests::by_name("U0").expect("catalog");
    let mut session = CheckSession::new(&h, &t);
    for mode in [Mode::Sc, Mode::Relaxed] {
        let s = session
            .check_commit_method(mode, AbstractType::Stack)
            .expect("session commit");
        let o = Checker::new(&h, &t)
            .with_memory_model(mode)
            .check_commit_method_oneshot(AbstractType::Stack)
            .expect("one-shot commit");
        assert_eq!(
            s.outcome.passed(),
            o.outcome.passed(),
            "commit-point verdicts disagree on {}",
            mode.name()
        );
    }
    assert_eq!(session.stats().encodes, 1, "one encode for both modes");
}
