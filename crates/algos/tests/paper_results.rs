//! The qualitative results of paper §4, as an executable test suite:
//! which implementations pass on which memory model, which bugs are
//! found, and that the fence placements are sufficient.
//!
//! These use the pairwise (paper-faithful) order encoding and small
//! catalog tests, mirroring how "all memory model-related bugs were
//! found on such small testcases" (§4).

use cf_algos::{harris, lazylist, ms2, msn, snark, tests, Variant};
use cf_memmodel::Mode;
use checkfence::{mine_reference, CheckError, CheckOutcome, FailureKind, Harness, Query};

fn outcome(h: &Harness, test_name: &str, mode: Mode) -> CheckOutcome {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = mine_reference(h, &t).expect("mines").spec;
    Query::check_inclusion(h, &t, spec)
        .on(mode)
        .run()
        .expect("checks")
        .into_outcome()
        .expect("outcome")
}

// ---------------------------------------------------------------- msn

#[test]
fn msn_fenced_passes_t0_on_relaxed() {
    let h = msn::harness(Variant::Fenced);
    assert!(outcome(&h, "T0", Mode::Relaxed).passed());
}

#[test]
fn msn_unfenced_passes_on_sc_but_fails_on_relaxed() {
    let h = msn::harness(Variant::Unfenced);
    assert!(
        outcome(&h, "T0", Mode::Sc).passed(),
        "the algorithm is correct under SC"
    );
    match outcome(&h, "T0", Mode::Relaxed) {
        CheckOutcome::Fail(cx) => {
            assert_eq!(cx.kind, FailureKind::InconsistentObservation, "{cx}");
        }
        CheckOutcome::Pass => panic!("unfenced msn must fail on Relaxed (§4.2)"),
    }
}

// ---------------------------------------------------------------- ms2

#[test]
fn ms2_fenced_passes_t0_on_relaxed() {
    let h = ms2::harness(Variant::Fenced);
    assert!(outcome(&h, "T0", Mode::Relaxed).passed());
}

#[test]
fn ms2_unfenced_passes_on_sc_but_fails_on_relaxed() {
    // The classic "incomplete initialization" failure (§4.3): node
    // fields published after the link becomes visible.
    let h = ms2::harness(Variant::Unfenced);
    assert!(outcome(&h, "T0", Mode::Sc).passed());
    assert!(!outcome(&h, "T0", Mode::Relaxed).passed());
}

// ------------------------------------------------------------ lazylist

#[test]
fn lazylist_buggy_marked_init_found_serially_on_sac() {
    // The paper's §4.1 finding: the published pseudocode fails to
    // initialize `marked`; CheckFence detects the undefined read during
    // specification mining of the `Sac` test.
    let h = lazylist::harness(lazylist::Build::Buggy);
    let t = tests::by_name("Sac").expect("catalog");
    match mine_reference(&h, &t) {
        Err(CheckError::SerialBug(cx)) => {
            assert!(
                cx.errors.iter().any(|e| e.contains("undefined")),
                "expected an undefined-value error, got {:?}",
                cx.errors
            );
        }
        other => panic!("expected the marked-field bug, got {other:?}"),
    }
}

#[test]
fn lazylist_fixed_passes_sac_on_relaxed() {
    let h = lazylist::harness(lazylist::Build::Fixed);
    assert!(outcome(&h, "Sac", Mode::Relaxed).passed());
}

#[test]
fn lazylist_unfenced_fails_on_relaxed() {
    let h = lazylist::harness(lazylist::Build::Unfenced);
    assert!(outcome(&h, "Sac", Mode::Sc).passed());
    assert!(!outcome(&h, "Sac", Mode::Relaxed).passed());
}

// -------------------------------------------------------------- harris

#[test]
fn harris_fenced_passes_sac_on_relaxed() {
    let h = harris::harness(Variant::Fenced);
    assert!(outcome(&h, "Sac", Mode::Relaxed).passed());
}

#[test]
fn harris_unfenced_fails_on_relaxed() {
    let h = harris::harness(Variant::Unfenced);
    assert!(outcome(&h, "Sac", Mode::Sc).passed());
    assert!(!outcome(&h, "Sac", Mode::Relaxed).passed());
}

// --------------------------------------------------------------- snark

#[test]
fn snark_fixed_passes_d0_on_sc() {
    let h = snark::harness(snark::Build::Fixed, Variant::Fenced);
    assert!(outcome(&h, "D0", Mode::Sc).passed());
}

#[test]
fn snark_original_double_pop_found_on_da() {
    // The seeded double-pop bug (same class as the published snark bug,
    // §4.1) is a logic error: it already shows under SC.
    let h = snark::harness(snark::Build::Original, Variant::Fenced);
    match outcome(&h, "Da", Mode::Sc) {
        CheckOutcome::Fail(cx) => {
            assert_eq!(cx.kind, FailureKind::InconsistentObservation, "{cx}");
        }
        CheckOutcome::Pass => panic!("original snark must double-pop on Da"),
    }
}

#[test]
fn snark_fixed_passes_da_on_sc() {
    let h = snark::harness(snark::Build::Fixed, Variant::Fenced);
    assert!(outcome(&h, "Da", Mode::Sc).passed());
}
