//! Memory-model sweep: the §4.2 architecture observation, executable.
//!
//! The paper notes: "An interesting observation is that the
//! implementations we studied required only load-load and store-store
//! fences. On some architectures (such as Sun TSO or IBM zSeries), these
//! fences are automatic and the algorithm therefore works without
//! inserting any fences on these architectures."
//!
//! With the TSO and PSO models this claim becomes checkable:
//!
//! * on **TSO** both load-load and store-store order are automatic, so
//!   the *unfenced* algorithms pass;
//! * on **PSO** only load order is automatic; the store-store placements
//!   (Fig. 9 lines 29 and 44 for msn) are still required, but the
//!   load-load placements are not;
//! * on **Relaxed** the full Fig. 9 placement is needed.

use cf_algos::{harris, lazylist, ms2, msn, tests, Variant};
use cf_memmodel::Mode;
use checkfence::{mine_reference, CheckOutcome, Engine, EngineConfig, Harness, Query};

fn outcome(h: &Harness, test_name: &str, mode: Mode) -> CheckOutcome {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = mine_reference(h, &t).expect("mines").spec;
    Engine::new(EngineConfig::single(mode))
        .run(&Query::check_inclusion(h, &t, spec).on(mode))
        .expect("checks")
        .into_outcome()
        .expect("outcome")
}

/// Sweeps every hardware mode on one engine-pooled session (one
/// symbolic execution, one encoding, one persistent solver for the
/// whole lattice).
fn sweep(h: &Harness, test_name: &str) -> Vec<(Mode, bool)> {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = mine_reference(h, &t).expect("mines").spec;
    let mut engine = Engine::new(EngineConfig::default());
    let queries: Vec<Query> = Mode::hardware()
        .into_iter()
        .map(|mode| Query::check_inclusion(h, &t, spec.clone()).on(mode))
        .collect();
    let out = Mode::hardware()
        .into_iter()
        .zip(engine.run_batch(&queries))
        .map(|(mode, v)| (mode, v.expect("checks").passed()))
        .collect();
    assert_eq!(
        engine.stats().encodes,
        engine.stats().symexecs,
        "sweep must reuse the encoding across modes"
    );
    out
}

// ------------------------------------------------------------------ TSO

#[test]
fn msn_unfenced_passes_t0_on_tso() {
    // The headline claim: Michael & Scott's queue as published (no
    // fences) is correct on TSO.
    let h = msn::harness(Variant::Unfenced);
    assert!(outcome(&h, "T0", Mode::Tso).passed());
}

#[test]
fn msn_unfenced_passes_ti2_on_tso() {
    let h = msn::harness(Variant::Unfenced);
    assert!(outcome(&h, "Ti2", Mode::Tso).passed());
}

#[test]
fn ms2_unfenced_passes_t0_on_tso() {
    let h = ms2::harness(Variant::Unfenced);
    assert!(outcome(&h, "T0", Mode::Tso).passed());
}

#[test]
fn lazylist_unfenced_passes_sac_on_tso() {
    let h = lazylist::harness(lazylist::Build::Unfenced);
    assert!(outcome(&h, "Sac", Mode::Tso).passed());
}

#[test]
fn harris_unfenced_passes_sac_on_tso() {
    let h = harris::harness(Variant::Unfenced);
    assert!(outcome(&h, "Sac", Mode::Tso).passed());
}

// ------------------------------------------------------------------ PSO

#[test]
fn msn_unfenced_fails_t0_on_pso() {
    // PSO reorders the node-field stores past the linking CAS
    // ("incomplete initialization", §4.3) — store-store fences are not
    // automatic there.
    let h = msn::harness(Variant::Unfenced);
    assert!(!outcome(&h, "T0", Mode::Pso).passed());
}

#[test]
fn msn_store_store_only_passes_t0_on_pso() {
    // Keeping just the two store-store placements (Fig. 9 lines 29/44)
    // suffices on PSO: loads never reorder there, so the five load-load
    // placements are automatic.
    let h = msn::harness_with_kinds(false, true);
    assert!(outcome(&h, "T0", Mode::Pso).passed());
}

#[test]
fn msn_store_store_only_passes_ti2_on_pso() {
    let h = msn::harness_with_kinds(false, true);
    assert!(outcome(&h, "Ti2", Mode::Pso).passed());
}

#[test]
fn msn_load_load_only_fails_t0_on_pso() {
    // The converse: load-load fences alone do not restore store order.
    let h = msn::harness_with_kinds(true, false);
    assert!(!outcome(&h, "T0", Mode::Pso).passed());
}

#[test]
fn msn_store_store_only_fails_t0_on_relaxed() {
    // On Relaxed the load-load placements are load-bearing (reordering
    // of load sequences and of value-dependent loads, §4.3).
    let h = msn::harness_with_kinds(false, true);
    assert!(!outcome(&h, "T0", Mode::Relaxed).passed());
}

// ------------------------------------------------------- full placement

#[test]
fn msn_fenced_passes_t0_on_every_hardware_model() {
    let h = msn::harness(Variant::Fenced);
    for mode in Mode::hardware() {
        assert!(
            outcome(&h, "T0", mode).passed(),
            "fenced msn must pass T0 on {}",
            mode.name()
        );
    }
}

#[test]
fn failures_are_monotone_in_model_strength() {
    // If a build fails on a stronger model it must fail on every weaker
    // one: executions only accumulate as the model weakens. The whole
    // lattice runs on one incremental session per build.
    let builds = [
        msn::harness(Variant::Unfenced),
        msn::harness_with_kinds(false, true),
        msn::harness_with_kinds(true, false),
        msn::harness(Variant::Fenced),
    ];
    for h in &builds {
        let mut failed = false;
        for (mode, passed) in sweep(h, "T0") {
            assert!(
                !(failed && passed),
                "{}: passed on {} after failing on a stronger model",
                h.name,
                mode.name()
            );
            failed |= !passed;
        }
    }
}
