//! Verification results for the Lamport SPSC ring-buffer extension.
//!
//! The interesting property of this algorithm is *which* fences repair
//! it: with no atomic operations, every ordering obligation falls on
//! plain loads and stores, and the consumer's "read the slot before
//! releasing it" obligation needs a **load-store** fence — a kind none
//! of the paper's five algorithms required (§4.2).

use cf_algos::{lamport, refmodel, tests, Shape, Variant};
use cf_memmodel::Mode;
use checkfence::{mine_reference, CheckOutcome, Harness, Query};

fn outcome(h: &Harness, test_name: &str, mode: Mode) -> CheckOutcome {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = mine_reference(h, &t).expect("mines").spec;
    Query::check_inclusion(h, &t, spec)
        .on(mode)
        .run()
        .expect("checks")
        .into_outcome()
        .expect("outcome")
}

#[test]
fn fenced_passes_l0_and_lpc2_on_relaxed() {
    let h = lamport::harness(Variant::Fenced);
    assert!(outcome(&h, "L0", Mode::Relaxed).passed());
    assert!(outcome(&h, "Lpc2", Mode::Relaxed).passed());
}

#[test]
fn fenced_passes_the_wrap_around_test_on_relaxed() {
    // Lpc3 drives the ring through its wrap-around: slot 0 is reused by
    // the third enqueue, which is what exercises the producer's
    // entry load-load fence (same-address head-load coherence).
    let h = lamport::harness(Variant::Fenced);
    assert!(outcome(&h, "Lpc3", Mode::Relaxed).passed());
}

#[test]
fn without_load_store_fences_the_wrap_around_breaks() {
    // ss+ll only: on Relaxed, load→store reordering still lets the
    // consumer release a slot (head bump) before it finished reading
    // it, and the producer's wrap-around reuse then overwrites the
    // value — Lpc3 catches it; the non-wrapping tests do not.
    let h = lamport::harness_with_kinds(true, true, false);
    assert!(outcome(&h, "Lpc2", Mode::Relaxed).passed());
    assert!(!outcome(&h, "Lpc3", Mode::Relaxed).passed());
    // TSO and PSO preserve load→store order, so the same build is fine
    // there even with the wrap-around.
    assert!(outcome(&h, "Lpc3", Mode::Tso).passed());
    assert!(outcome(&h, "Lpc3", Mode::Pso).passed());
}

#[test]
fn every_fence_is_necessary_for_the_spsc_tests() {
    // The 5-fence placement (2 load-load, 1 store-store, 2 load-store)
    // is 1-minimal for {L0, Lpc2, Lpc3} on Relaxed.
    let fenced = lamport::harness(Variant::Fenced);
    let tests: Vec<_> = ["L0", "Lpc2", "Lpc3"]
        .iter()
        .map(|n| tests::by_name(n).expect("catalog"))
        .collect();
    let verdicts =
        cf_algos::fences::necessity(&fenced, &tests, Mode::Relaxed).expect("analysis runs");
    assert_eq!(verdicts.len(), 5);
    for v in &verdicts {
        assert!(
            v.broken_by.is_some(),
            "removing {} should break one of the SPSC tests",
            v.site
        );
    }
}

#[test]
fn unfenced_passes_on_sc_and_tso() {
    // TSO preserves store-store, load-load and load-store order — every
    // ordering this algorithm relies on. Only the (irrelevant here)
    // store-load order is relaxed, so the published algorithm is
    // TSO-correct with no fences, like the paper's five (§4.2).
    let h = lamport::harness(Variant::Unfenced);
    assert!(outcome(&h, "L0", Mode::Sc).passed());
    assert!(outcome(&h, "Lpc2", Mode::Sc).passed());
    assert!(outcome(&h, "L0", Mode::Tso).passed());
    assert!(outcome(&h, "Lpc2", Mode::Tso).passed());
}

#[test]
fn unfenced_fails_on_pso_and_relaxed() {
    // The producer's slot store reorders past its tail bump: the
    // consumer dequeues an undefined slot ("incomplete initialization",
    // the §4.3 pattern, with an array slot instead of a node field).
    let h = lamport::harness(Variant::Unfenced);
    assert!(!outcome(&h, "L0", Mode::Pso).passed());
    assert!(!outcome(&h, "L0", Mode::Relaxed).passed());
}

#[test]
fn store_store_alone_repairs_pso_but_not_relaxed() {
    let h = lamport::harness_with_kinds(false, true, false);
    assert!(outcome(&h, "L0", Mode::Pso).passed());
    assert!(outcome(&h, "Lpc3", Mode::Pso).passed());
    assert!(
        !outcome(&h, "L0", Mode::Relaxed).passed(),
        "the consumer's index/data load pair still reorders"
    );
}

#[test]
fn sat_mining_agrees_with_the_bounded_queue_reference() {
    let h = lamport::harness(Variant::Fenced);
    for name in ["L0", "Li1", "Lpc2"] {
        let t = tests::by_name(name).expect("catalog");
        let sat = Query::mine(&h, &t)
            .run()
            .expect("sat mining")
            .into_observations()
            .expect("observations");
        let reference = refmodel::mine(Shape::Spsc, &t);
        assert_eq!(
            sat.vectors, reference.vectors,
            "{name}: SAT mining and the capacity-1 reference disagree"
        );
    }
}

#[test]
fn full_rejection_is_an_observable_behaviour() {
    // Capacity 1: the spec itself contains "enqueue returned full"
    // vectors — check one is mined for Lpc2 (two producers' enqueues
    // back to back must overflow without an intervening dequeue).
    let t = tests::by_name("Lpc2").expect("catalog");
    let spec = refmodel::mine(Shape::Spsc, &t);
    let has_full = spec
        .vectors
        .iter()
        .any(|v| v.contains(&cf_lsl::Value::Int(0)));
    assert!(has_full, "some serial execution reports a full queue");
}
