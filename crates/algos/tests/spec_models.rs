//! SAT-backend equivalence of the bundled `.cfm` specs and their
//! built-in `Mode` twins on real harnesses.
//!
//! The acceptance bar for the spec subsystem: on the Treiber stack and
//! the two-lock queue, a session encoding built-in modes *and* their
//! compiled spec twins side by side must return identical checker
//! verdicts for every (mode, twin) pair, from a single symbolic
//! execution and a single encoding. A one-shot spec checker run is also
//! compared against the enum path for both a passing and a failing
//! configuration.

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::{Mode, ModeSet};
use cf_spec::bundled;
use checkfence::{
    mine_reference, CheckConfig, Engine, EngineConfig, Harness, ModelSel, Query, TestSpec,
};

/// Sweeps all four hardware modes and their spec twins on one shared
/// engine session and asserts pairwise-identical verdicts.
fn assert_mixed_session_equivalence(harness: &Harness, test: &TestSpec) {
    let hardware: Vec<Mode> = Mode::hardware().to_vec();
    let specs: Vec<cf_spec::ModelSpec> = hardware.iter().map(|&m| bundled::for_mode(m)).collect();
    let config = EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::hardware())
        .with_specs(specs);
    let mut engine = Engine::new(config);
    let spec = mine_reference(harness, test).expect("mines").spec;
    for (i, &mode) in hardware.iter().enumerate() {
        let enum_verdict = engine
            .run(&Query::check_inclusion(harness, test, spec.clone()).on(mode))
            .expect("enum check")
            .passed();
        let spec_verdict = engine
            .run(&Query::check_inclusion(harness, test, spec.clone()).on_model(ModelSel::Spec(i)))
            .expect("spec check")
            .passed();
        assert_eq!(
            enum_verdict, spec_verdict,
            "{} {}: Mode::{mode:?} and its .cfm twin disagree",
            harness.name, test.name
        );
    }
    assert_eq!(engine.stats().sessions, 1, "one pooled session");
    assert_eq!(engine.stats().symexecs, 1, "one symbolic execution");
    assert_eq!(engine.stats().encodes, 1, "one shared encoding");
}

#[test]
fn treiber_unfenced_mixed_session_matches() {
    let h = treiber::harness(Variant::Unfenced);
    let t = tests::by_name("U0").expect("catalog test");
    assert_mixed_session_equivalence(&h, &t);
}

#[test]
fn treiber_fenced_mixed_session_matches() {
    let h = treiber::harness(Variant::Fenced);
    let t = tests::by_name("U0").expect("catalog test");
    assert_mixed_session_equivalence(&h, &t);
}

#[test]
fn ms2_fenced_mixed_session_matches() {
    let h = ms2::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog test");
    assert_mixed_session_equivalence(&h, &t);
}

#[test]
fn single_model_engines_agree_with_the_enum_path() {
    // A failing configuration: the unfenced Treiber stack on Relaxed.
    let h = treiber::harness(Variant::Unfenced);
    let t = tests::by_name("U0").expect("catalog test");
    let obs = mine_reference(&h, &t).expect("mines").spec;
    let spec_engine_config =
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::single(Mode::Relaxed))
            .with_specs(vec![bundled::for_mode(Mode::Relaxed)]);
    let mut engine = Engine::new(spec_engine_config.clone());
    let enum_fail = engine
        .run(&Query::check_inclusion(&h, &t, obs.clone()).on(Mode::Relaxed))
        .expect("enum check");
    let spec_fail = engine
        .run(&Query::check_inclusion(&h, &t, obs).on_model(ModelSel::Spec(0)))
        .expect("spec check");
    assert!(!enum_fail.passed(), "unfenced treiber breaks on relaxed");
    assert!(!spec_fail.passed(), "the spec twin must find the bug too");
    if let Some(cx) = spec_fail.counterexample() {
        assert_eq!(cx.model, "relaxed", "counterexample names the spec");
    }

    // A passing configuration: the fenced build on the same model.
    let h = treiber::harness(Variant::Fenced);
    let obs = mine_reference(&h, &t).expect("mines").spec;
    let mut engine = Engine::new(spec_engine_config);
    assert!(engine
        .run(&Query::check_inclusion(&h, &t, obs.clone()).on(Mode::Relaxed))
        .expect("enum")
        .passed());
    assert!(engine
        .run(&Query::check_inclusion(&h, &t, obs).on_model(ModelSel::Spec(0)))
        .expect("spec")
        .passed());
}

#[test]
fn serial_spec_enumerates_the_mined_specification() {
    // The `serial.cfm` spec (atomic_ops) must enumerate exactly the
    // serial observation set on the SAT path.
    let h = ms2::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog test");
    let mined = mine_reference(&h, &t).expect("mines").spec;
    let config = EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::empty())
        .with_specs(vec![bundled::for_mode(Mode::Serial)]);
    let enumerated = Engine::new(config)
        .run(&Query::enumerate(&h, &t).on_model(ModelSel::Spec(0)))
        .expect("enumerates")
        .into_observations()
        .expect("observations");
    assert_eq!(enumerated, mined, "serial spec = serial semantics");
}

#[test]
fn spec_counterexamples_name_the_violated_sc_axiom() {
    // A failing check under `relaxed.cfm` replays its witness through
    // the explicit oracle and reports which serializability axiom the
    // execution breaks — `sc.cfm` labels its one axiom
    // `program_order`, so that name must appear in the report.
    let program = cf_minic::compile(
        r#"
        int data; int flag;
        void put(int v) { data = v + 1; flag = 1; }
        int get() { int f = flag; if (f == 0) { return 0 - 1; } return data; }
        "#,
    )
    .expect("compiles");
    let h = Harness {
        name: "mailbox".into(),
        program,
        init_proc: None,
        ops: vec![
            checkfence::OpSig {
                key: 'p',
                proc_name: "put".into(),
                num_args: 1,
                has_ret: false,
            },
            checkfence::OpSig {
                key: 'g',
                proc_name: "get".into(),
                num_args: 0,
                has_ret: true,
            },
        ],
    };
    let t = TestSpec::parse("pg", "( p | g )").expect("parses");
    let obs = mine_reference(&h, &t).expect("mines").spec;
    let relaxed = bundled::for_mode(Mode::Relaxed);
    let config =
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::single(Mode::Relaxed))
            .with_specs(vec![relaxed]);
    let mut engine = Engine::new(config);
    let r = engine
        .run(&Query::check_inclusion(&h, &t, obs.clone()).on_model(ModelSel::Spec(0)))
        .expect("spec check runs");
    let Some(cx) = r.counterexample() else {
        panic!("the unfenced mailbox must fail under relaxed.cfm");
    };
    assert_eq!(
        cx.violated_axiom.as_deref(),
        Some("program_order"),
        "witness replay must name sc.cfm's axiom: {cx}"
    );
    let report = format!("{cx}");
    assert!(
        report.contains("breaks serializability at sc axiom `program_order`"),
        "{report}"
    );

    // Built-in models keep the old report shape (no axiom line).
    let r = engine
        .run(&Query::check_inclusion(&h, &t, obs).on(Mode::Relaxed))
        .expect("builtin check runs");
    let Some(cx) = r.counterexample() else {
        panic!("the unfenced mailbox must fail under builtin relaxed");
    };
    assert!(cx.violated_axiom.is_none(), "{cx}");
}
