//! Randomized query/legacy/oneshot equivalence: mixed [`Query`] batches
//! over treiber/ms2 answered by [`Engine::run_batch`] must return
//! exactly the verdicts of (a) the deprecated `CheckSession` method
//! grid and (b) the pre-session `*_oneshot` oracles — shim ≡ query ≡
//! oneshot, on every sampled point of the (kind × model × toggles)
//! space.
//!
//! The generator is a deterministic xorshift (matching the
//! `mutation_equiv.rs` style), so failures replay bit for bit.
//!
//! Equivalence suites are the sanctioned callers of the deprecated
//! method grid, hence the targeted allow.
#![allow(deprecated)]

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::{Mode, ModeSet};
use cf_sat::xorshift::Rng;
use checkfence::mutate::{MutationConfig, MutationPlan};
use checkfence::{
    mine_reference, CheckConfig, CheckOutcome, CheckSession, Checker, Engine, EngineConfig,
    Harness, ModelSel, ObsSet, Query, SessionConfig, TestSpec,
};

/// What a query answered, reduced to comparable data.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    /// Inclusion verdict: pass, or the failure kind's debug name.
    Check(Option<String>),
    /// Enumerated observation vectors.
    Obs(ObsSet),
    /// Loop bounds diverged — a verdict for mutants (the livelock
    /// symptom), and it must diverge identically on every path.
    Diverged,
}

fn of_outcome(o: &CheckOutcome) -> Outcome {
    Outcome::Check(match o {
        CheckOutcome::Pass => None,
        CheckOutcome::Fail(cx) => Some(format!("{:?}", cx.kind)),
    })
}

/// Folds a result into a comparable outcome, treating bound divergence
/// as data and anything else as an infrastructure failure.
fn fold<T>(r: Result<T, checkfence::CheckError>, f: impl FnOnce(T) -> Outcome) -> Outcome {
    match r {
        Ok(v) => f(v),
        Err(checkfence::CheckError::BoundsDiverged { .. }) => Outcome::Diverged,
        Err(e) => panic!("infrastructure error: {e}"),
    }
}

/// One sampled point of the query space.
struct Sample {
    mode: Mode,
    /// Active toggle sites (empty = original program).
    toggles: Vec<u32>,
    /// `true` = inclusion check, `false` = observation enumeration.
    check: bool,
}

fn sample(rng: &mut Rng, max_site: u32) -> Sample {
    let mode = Mode::hardware()[rng.below(4) as usize];
    let toggles = if max_site > 0 && rng.below(2) == 0 {
        vec![rng.below(u64::from(max_site)) as u32]
    } else {
        vec![]
    };
    Sample {
        mode,
        toggles,
        // Enumeration is the rarer, costlier query shape.
        check: rng.below(4) != 0,
    }
}

/// Runs the sampled batch through all three paths on one subject.
fn assert_three_way_equivalence(h: &Harness, t: &TestSpec, seed: u64, n: usize) {
    let plan = MutationPlan::build(
        &h.program,
        &MutationConfig {
            procs: None,
            ..MutationConfig::default()
        },
    );
    assert!(!plan.points.is_empty(), "{}: nothing planned", h.name);
    let instrumented = Harness {
        name: format!("{}+mutants", h.name),
        program: plan.instrumented.clone(),
        init_proc: h.init_proc.clone(),
        ops: h.ops.clone(),
    };
    let spec = mine_reference(h, t).expect("mines").spec;

    let mut rng = Rng::new(seed);
    let samples: Vec<Sample> = (0..n)
        .map(|_| sample(&mut rng, plan.points.len() as u32))
        .collect();

    // Path 1: the engine, batch-scheduled across 3 workers (also
    // exercising the shard scheduler's determinism).
    let mut engine = Engine::new(
        EngineConfig::from_check_config(&CheckConfig::default(), ModeSet::all()).with_jobs(3),
    );
    let queries: Vec<Query> = samples
        .iter()
        .map(|s| {
            let q = if s.check {
                Query::check_inclusion(&instrumented, t, spec.clone())
            } else {
                Query::enumerate(&instrumented, t)
            };
            q.on(s.mode).with_toggles(&s.toggles)
        })
        .collect();
    let engine_outcomes: Vec<Outcome> = engine
        .run_batch(&queries)
        .into_iter()
        .map(|v| {
            // The batch path must surface real phase stats — a past
            // regression filled `PhaseStats::default()` here, so a
            // default-looking phase on a solved verdict is a bug.
            if let Ok(v) = &v {
                assert!(
                    v.phase.sat_solves >= 1 && v.phase.sat_vars > 0,
                    "{}: batch verdict dropped its solver phase stats",
                    h.name
                );
                assert!(
                    v.phase.total_time > std::time::Duration::ZERO,
                    "{}: batch verdict carries no elapsed time",
                    h.name
                );
            }
            fold(v, |v| match v.answer {
                checkfence::Answer::Outcome(o) => of_outcome(&o),
                checkfence::Answer::Observations(obs) => Outcome::Obs(obs),
                // No budgets are configured on any path of this suite.
                checkfence::Answer::Inconclusive { reason, .. } => {
                    panic!("unbudgeted run came back inconclusive: {reason}")
                }
            })
        })
        .collect();
    // One pool key, sharded: every session encodes exactly once.
    let stats = engine.stats();
    assert_eq!(stats.encodes as usize, stats.sessions, "{}", h.name);

    // Path 2: the deprecated CheckSession method grid, sequentially on
    // one legacy session.
    let mut session = CheckSession::with_config(
        &instrumented,
        t,
        SessionConfig::from_check_config(&CheckConfig::default(), ModeSet::all()),
    );
    for (i, s) in samples.iter().enumerate() {
        let legacy = if s.check {
            fold(
                session.check_inclusion_toggled(ModelSel::Builtin(s.mode), &spec, &s.toggles),
                |r| of_outcome(&r.outcome),
            )
        } else {
            fold(
                session.enumerate_observations_toggled(ModelSel::Builtin(s.mode), &s.toggles),
                Outcome::Obs,
            )
        };
        assert_eq!(
            engine_outcomes[i],
            legacy,
            "{}/{} sample {i}: engine and legacy shim disagree (mode {}, toggles {:?})",
            h.name,
            t.name,
            s.mode.name(),
            s.toggles
        );
    }

    // Path 3: the one-shot oracles on concretely mutated builds.
    for (i, s) in samples.iter().enumerate() {
        let build = match s.toggles.first() {
            None => h.clone(),
            Some(&id) => Harness {
                name: format!("{}+m{id}", h.name),
                program: plan.mutant(id),
                init_proc: h.init_proc.clone(),
                ops: h.ops.clone(),
            },
        };
        let checker = Checker::new(&build, t).with_memory_model(s.mode);
        let oneshot = if s.check {
            fold(checker.check_inclusion_oneshot(&spec), |r| {
                of_outcome(&r.outcome)
            })
        } else {
            fold(checker.enumerate_observations_oneshot(s.mode), Outcome::Obs)
        };
        assert_eq!(
            engine_outcomes[i],
            oneshot,
            "{}/{} sample {i}: engine and one-shot oracle disagree (mode {}, toggles {:?})",
            h.name,
            t.name,
            s.mode.name(),
            s.toggles
        );
    }
}

#[test]
fn treiber_random_query_batches_match_legacy_and_oneshot() {
    let h = treiber::harness(Variant::Fenced);
    let t = tests::by_name("U0").expect("catalog");
    assert_three_way_equivalence(&h, &t, 0x5EED_CAFE, 10);
}

#[test]
fn ms2_random_query_batches_match_legacy_and_oneshot() {
    let h = ms2::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    assert_three_way_equivalence(&h, &t, 0xFACE_FEED, 10);
}

#[test]
fn mining_queries_match_the_legacy_and_oneshot_paths() {
    for h in [
        treiber::harness(Variant::Fenced),
        ms2::harness(Variant::Fenced),
    ] {
        let t = tests::by_name(if h.name.contains("treiber") {
            "U0"
        } else {
            "T0"
        })
        .expect("catalog");
        let query = Query::mine(&h, &t)
            .run()
            .expect("engine mining")
            .into_observations()
            .expect("observations");
        let legacy = CheckSession::new(&h, &t).mine_spec().expect("legacy").spec;
        let oneshot = Checker::new(&h, &t)
            .mine_spec_oneshot()
            .expect("oneshot")
            .spec;
        assert_eq!(query, legacy, "{}: engine vs legacy mining", h.name);
        assert_eq!(query, oneshot, "{}: engine vs one-shot mining", h.name);
    }
}

#[test]
fn commit_queries_match_the_legacy_and_oneshot_paths() {
    use checkfence::commit::AbstractType;
    let h = treiber::harness(Variant::Fenced);
    let t = tests::by_name("U0").expect("catalog");
    for mode in [Mode::Sc, Mode::Relaxed] {
        let query = Query::commit_method(&h, &t, AbstractType::Stack)
            .on(mode)
            .run()
            .expect("engine commit");
        let legacy = CheckSession::new(&h, &t)
            .check_commit_method(mode, AbstractType::Stack)
            .expect("legacy commit");
        let oneshot = Checker::new(&h, &t)
            .with_memory_model(mode)
            .check_commit_method_oneshot(AbstractType::Stack)
            .expect("oneshot commit");
        assert_eq!(
            of_outcome(query.outcome().expect("outcome")),
            of_outcome(&legacy.outcome),
            "{}: engine vs legacy commit on {}",
            h.name,
            mode.name()
        );
        assert_eq!(
            of_outcome(&legacy.outcome),
            of_outcome(&oneshot.outcome),
            "{}: legacy vs one-shot commit on {}",
            h.name,
            mode.name()
        );
    }
}
