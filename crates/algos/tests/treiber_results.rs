//! Verification results for the Treiber stack extension: the same
//! qualitative battery the paper runs on its five algorithms (§4),
//! plus commit-point method agreement.

use cf_algos::{refmodel, tests, treiber, Shape, Variant};
use cf_memmodel::Mode;
use checkfence::commit::AbstractType;
use checkfence::{mine_reference, CheckOutcome, Harness, Query};

fn outcome(h: &Harness, test_name: &str, mode: Mode) -> CheckOutcome {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = mine_reference(h, &t).expect("mines").spec;
    Query::check_inclusion(h, &t, spec)
        .on(mode)
        .run()
        .expect("checks")
        .into_outcome()
        .expect("outcome")
}

#[test]
fn fenced_passes_u0_and_ui2_on_relaxed() {
    let h = treiber::harness(Variant::Fenced);
    assert!(outcome(&h, "U0", Mode::Relaxed).passed());
    assert!(outcome(&h, "Ui2", Mode::Relaxed).passed());
}

#[test]
fn unfenced_passes_on_sc_and_tso_but_fails_on_pso_and_relaxed() {
    let h = treiber::harness(Variant::Unfenced);
    assert!(outcome(&h, "U0", Mode::Sc).passed(), "correct under SC");
    assert!(
        outcome(&h, "U0", Mode::Tso).passed(),
        "both fence kinds automatic on TSO"
    );
    assert!(
        !outcome(&h, "U0", Mode::Pso).passed(),
        "store-store fence needed on PSO"
    );
    assert!(
        !outcome(&h, "U0", Mode::Relaxed).passed(),
        "both fences needed on Relaxed"
    );
}

#[test]
fn store_store_only_passes_on_pso_but_not_relaxed() {
    let h = treiber::harness_with_kinds(false, true);
    assert!(outcome(&h, "U0", Mode::Pso).passed());
    assert!(
        !outcome(&h, "U0", Mode::Relaxed).passed(),
        "dependent loads still speculate"
    );
}

#[test]
fn each_fence_is_necessary_on_relaxed() {
    // Deleting either of the two fences individually breaks U0 — via
    // the library-level §4.2 necessity analysis.
    let fenced = treiber::harness(Variant::Fenced);
    let u0 = tests::by_name("U0").expect("catalog");
    let verdicts =
        cf_algos::fences::necessity(&fenced, &[u0], Mode::Relaxed).expect("analysis runs");
    assert_eq!(verdicts.len(), 2);
    for v in &verdicts {
        assert_eq!(
            v.broken_by.as_deref(),
            Some("U0"),
            "removing {} must break U0 on Relaxed",
            v.site
        );
    }
}

#[test]
fn sat_mining_agrees_with_reference_model() {
    let h = treiber::harness(Variant::Fenced);
    for name in ["U0", "Ui2", "Upc2"] {
        let t = tests::by_name(name).expect("catalog");
        let sat = Query::mine(&h, &t)
            .run()
            .expect("sat mining")
            .into_observations()
            .expect("observations");
        let reference = refmodel::mine(Shape::Stack, &t);
        assert_eq!(
            sat.vectors, reference.vectors,
            "{name}: SAT mining and the LIFO reference model disagree"
        );
    }
}

#[test]
fn commit_method_agrees_on_stack_tests() {
    let h = treiber::harness(Variant::Fenced);
    for (name, mode) in [("U0", Mode::Sc), ("Ui2", Mode::Sc), ("U0", Mode::Relaxed)] {
        let t = tests::by_name(name).expect("catalog");
        let v = Query::commit_method(&h, &t, AbstractType::Stack)
            .on(mode)
            .run()
            .expect("runs");
        assert!(
            v.passed(),
            "commit method must pass {name} on {}",
            mode.name()
        );
    }
}

#[test]
fn commit_method_distinguishes_lifo_from_fifo() {
    // A queue is not a stack: with two inserts before the removes, the
    // stack machine rejects msn's FIFO answers...
    let q = cf_algos::msn::harness(Variant::Fenced);
    let t = tests::by_name("Tpc2").expect("catalog");
    let v = Query::commit_method(&q, &t, AbstractType::Stack)
        .on(Mode::Sc)
        .run()
        .expect("runs");
    assert!(!v.passed(), "FIFO answers must violate the LIFO machine");

    // ...and symmetrically the queue machine rejects Treiber's LIFO
    // answers.
    let s = treiber::harness(Variant::Fenced);
    let t = tests::by_name("Upc2").expect("catalog");
    let v = Query::commit_method(&s, &t, AbstractType::Queue)
        .on(Mode::Sc)
        .run()
        .expect("runs");
    assert!(!v.passed(), "LIFO answers must violate the FIFO machine");
}

#[test]
fn unfenced_counterexample_mentions_a_relaxed_failure() {
    let h = treiber::harness(Variant::Unfenced);
    match outcome(&h, "U0", Mode::Relaxed) {
        CheckOutcome::Fail(cx) => {
            let text = format!("{cx}");
            assert!(
                !text.is_empty() && text.contains("pop") || text.contains("push"),
                "trace should mention the operations: {text}"
            );
        }
        CheckOutcome::Pass => panic!("unfenced treiber must fail on Relaxed"),
    }
}
