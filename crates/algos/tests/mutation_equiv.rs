//! Mutation-engine equivalence: the batched matrix (toggle literals on
//! one session) must return exactly the verdicts of the per-mutant
//! one-shot oracle — the mirror of `session_equiv.rs` for the
//! statement-toggle generalization.
//!
//! Three layers:
//!
//! 1. **litmus-style programs** (store buffering, message passing, load
//!    buffering, coherence): every mutant × every model compared
//!    exhaustively, plus the gating check that the instrumented program
//!    with all toggles off is observation-equivalent to the original;
//! 2. **treiber/ms2**: a seeded-random subset of each plan's toggles
//!    compared against concretely mutated one-shot builds on all
//!    hardware models;
//! 3. amortization: every session matrix above answers from one
//!    symbolic execution and one encoding.
//!
//! Equivalence suites are the sanctioned callers of the deprecated
//! method grid (the shims must stay verdict-identical to the query
//! engine and the one-shot oracles), hence the targeted allow.
#![allow(deprecated)]

use cf_algos::{ms2, tests, treiber, Variant};
use cf_memmodel::{Mode, ModeSet};
use cf_sat::xorshift::Rng;
use checkfence::mutate::{
    run_mutation_matrix, run_mutation_matrix_oneshot, MatrixConfig, MutationConfig, MutationPlan,
};
use checkfence::{
    CheckConfig, CheckSession, Checker, Harness, ModelSel, OpSig, SessionConfig, TestSpec,
};

fn harness(name: &str, source: &str, ops: Vec<OpSig>) -> Harness {
    Harness {
        name: name.into(),
        program: cf_minic::compile(source).expect("litmus-style source compiles"),
        init_proc: None,
        ops,
    }
}

fn ret_op(key: char, proc_name: &str) -> OpSig {
    OpSig {
        key,
        proc_name: proc_name.into(),
        num_args: 0,
        has_ret: true,
    }
}

/// The four classic two-thread shapes as mini-C harnesses.
fn litmus_catalog() -> Vec<(Harness, TestSpec)> {
    let two = |name: &str, src: &str, a: &str, b: &str| {
        (
            harness(name, src, vec![ret_op('a', a), ret_op('b', b)]),
            TestSpec::parse(name, "( a | b )").expect("parses"),
        )
    };
    vec![
        two(
            "sb",
            r#"int x; int y;
               int sb0() { x = 1; return y; }
               int sb1() { y = 1; return x; }"#,
            "sb0",
            "sb1",
        ),
        two(
            "mp",
            r#"int data; int flag;
               int mp0() { data = 1; fence("store-store"); flag = 1; return 0; }
               int mp1() { int f = flag; fence("load-load"); int d = data; return f + 2 * d; }"#,
            "mp0",
            "mp1",
        ),
        two(
            "lb",
            r#"int x; int y;
               int lb0() { int r = y; x = 1; return r; }
               int lb1() { int r = x; y = 1; return r; }"#,
            "lb0",
            "lb1",
        ),
        two(
            "corr",
            r#"int x;
               int w() { x = 1; return 0; }
               int rr() { int a = x; fence("load-load"); int b = x; return a + 2 * b; }"#,
            "w",
            "rr",
        ),
    ]
}

/// Session matrix == one-shot matrix, cell for cell.
fn assert_matrix_equiv(h: &Harness, t: &TestSpec, config: &MatrixConfig) -> MutationPlan {
    let plan = MutationPlan::build(&h.program, &MutationConfig::default());
    assert!(!plan.points.is_empty(), "{}: nothing planned", h.name);
    let session = run_mutation_matrix(h, t, &plan, config).expect("session matrix");
    let oneshot = run_mutation_matrix_oneshot(h, t, &plan, config).expect("one-shot matrix");
    assert_eq!(session.baseline, oneshot.baseline, "{}: baseline", h.name);
    for (s, o) in session.rows.iter().zip(&oneshot.rows) {
        assert_eq!(
            s.verdicts, o.verdicts,
            "{} / {}: mutant {} ({}) disagrees",
            h.name, t.name, s.point, s.description
        );
    }
    assert_eq!(session.session.symexecs, 1, "{}: one symexec", h.name);
    assert_eq!(session.session.encodes, 1, "{}: one encode", h.name);
    plan
}

#[test]
fn litmus_catalog_mutants_match_oneshot_on_every_model() {
    let config = MatrixConfig {
        modes: Mode::all().to_vec(),
        ..MatrixConfig::default()
    };
    for (h, t) in litmus_catalog() {
        assert_matrix_equiv(&h, &t, &config);
    }
}

#[test]
fn toggles_off_is_observation_equivalent_to_the_original() {
    // The gating soundness property behind the whole engine: an
    // instrumented program with every toggle pinned off must produce
    // exactly the original program's observation sets, per model.
    for (h, t) in litmus_catalog() {
        let plan = MutationPlan::build(&h.program, &MutationConfig::default());
        let instrumented = Harness {
            name: format!("{}+mutants", h.name),
            program: plan.instrumented.clone(),
            init_proc: h.init_proc.clone(),
            ops: h.ops.clone(),
        };
        let config = SessionConfig::from_check_config(&CheckConfig::default(), ModeSet::hardware());
        let mut session = CheckSession::with_config(&instrumented, &t, config);
        for mode in Mode::hardware() {
            let gated = session
                .enumerate_observations_toggled(ModelSel::Builtin(mode), &[])
                .expect("gated enumeration");
            let plain = Checker::new(&h, &t)
                .with_memory_model(mode)
                .enumerate_observations_oneshot(mode)
                .expect("one-shot enumeration");
            assert_eq!(
                gated.vectors,
                plain.vectors,
                "{} on {}: toggles-off observations differ from the original",
                h.name,
                mode.name()
            );
        }
        assert_eq!(session.stats().encodes, 1);
    }
}

/// A seeded-random sample of one subject's toggles, session vs.
/// one-shot, on all hardware models.
fn assert_random_subset_equiv(h: &Harness, t: &TestSpec, mutation: &MutationConfig, seed: u64) {
    let plan = MutationPlan::build(&h.program, mutation);
    assert!(plan.points.len() >= 4, "{}: plan too small", h.name);
    let mut rng = Rng::new(seed);
    let mut picked: Vec<u32> = Vec::new();
    while picked.len() < 4 {
        let id = rng.below(plan.points.len() as u64) as u32;
        if !picked.contains(&id) {
            picked.push(id);
        }
    }
    let spec = Checker::new(h, t)
        .mine_spec_reference()
        .expect("mines")
        .spec;
    let instrumented = Harness {
        name: format!("{}+mutants", h.name),
        program: plan.instrumented.clone(),
        init_proc: h.init_proc.clone(),
        ops: h.ops.clone(),
    };
    let config = SessionConfig::from_check_config(&CheckConfig::default(), ModeSet::hardware());
    let mut session = CheckSession::with_config(&instrumented, t, config);
    for &id in &picked {
        let mutant = Harness {
            name: format!("{}+m{id}", h.name),
            program: plan.mutant(id),
            init_proc: h.init_proc.clone(),
            ops: h.ops.clone(),
        };
        for mode in Mode::hardware() {
            let s = session
                .check_inclusion_toggled(ModelSel::Builtin(mode), &spec, &[id])
                .map(|r| r.outcome.passed());
            let o = Checker::new(&mutant, t)
                .with_memory_model(mode)
                .check_inclusion_oneshot(&spec)
                .map(|r| r.outcome.passed());
            match (s, o) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a,
                    b,
                    "{} mutant {} ({}) on {}",
                    h.name,
                    id,
                    plan.points[id as usize].description,
                    mode.name()
                ),
                (s, o) => panic!("{}: infrastructure divergence: {s:?} vs {o:?}", h.name),
            }
        }
    }
    assert_eq!(session.stats().encodes, 1, "{}: one encode", h.name);
}

#[test]
fn treiber_random_toggle_subset_matches_oneshot() {
    let h = treiber::harness(Variant::Fenced);
    let t = tests::by_name("U0").expect("catalog");
    let mutation = MutationConfig {
        procs: Some(vec!["push".into(), "pop".into()]),
        ..MutationConfig::default()
    };
    assert_random_subset_equiv(&h, &t, &mutation, 0xC0FFEE);
}

#[test]
fn ms2_random_toggle_subset_matches_oneshot() {
    let h = ms2::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    let mutation = MutationConfig {
        procs: Some(vec!["enqueue".into(), "dequeue".into()]),
        ..MutationConfig::default()
    };
    assert_random_subset_equiv(&h, &t, &mutation, 0xBADCAB);
}
