//! Fence inference on the real algorithms: the automated version of the
//! paper's manual derive-by-counterexample loop (§4.2–4.3).

use cf_algos::{lazylist, msn, tests, Variant};
use cf_lsl::FenceKind;
use cf_memmodel::Mode;
use checkfence::infer::{infer, InferConfig, InferError};
use checkfence::{mine_reference, CheckError, Harness, Query};

/// On PSO, one store-store fence (Fig. 9 line 29: node fields before the
/// linking CAS) is both necessary and sufficient for `T0`: the other
/// Fig. 9 store-store placement (line 44) is subsumed because each CAS
/// starts with a load and PSO preserves load→load and load→store order.
#[test]
fn msn_on_pso_needs_exactly_one_store_store_fence() {
    let h = msn::harness(Variant::Unfenced);
    let t0 = vec![tests::by_name("T0").expect("catalog")];
    let config = InferConfig {
        kinds: vec![FenceKind::StoreStore],
        procs: Some(vec!["enqueue".into(), "dequeue".into()]),
        ..InferConfig::default()
    };
    let r = infer(&h, &t0, Mode::Pso, &config).expect("inference succeeds");
    assert_eq!(r.kept.len(), 1, "kept: {:?}", r.kept);
    assert_eq!(r.kept[0].proc, "enqueue");
    assert_eq!(r.kept[0].kind, FenceKind::StoreStore);

    // The inferred build passes (sufficiency was verified internally;
    // re-verify end to end through the public API).
    let inferred = Harness {
        name: "msn-inferred".into(),
        program: r.program.clone(),
        init_proc: h.init_proc.clone(),
        ops: h.ops.clone(),
    };
    let spec = mine_reference(&inferred, &t0[0]).expect("mines").spec;
    assert!(Query::check_inclusion(&inferred, &t0[0], spec)
        .on(Mode::Pso)
        .run()
        .expect("checks")
        .passed());
}

/// Inference on TSO infers the empty placement for msn — the executable
/// form of "the algorithm works without inserting any fences on these
/// architectures" (§4.2).
#[test]
fn msn_on_tso_needs_no_fences() {
    let h = msn::harness(Variant::Unfenced);
    let t0 = vec![tests::by_name("T0").expect("catalog")];
    let config = InferConfig {
        kinds: vec![FenceKind::StoreStore, FenceKind::LoadLoad],
        procs: Some(vec!["enqueue".into(), "dequeue".into()]),
        ..InferConfig::default()
    };
    let r = infer(&h, &t0, Mode::Tso, &config).expect("inference succeeds");
    assert!(r.kept.is_empty(), "kept: {:?}", r.kept);
}

/// Algorithmic bugs cannot be fenced away: the lazylist initialization
/// bug is found during specification mining, before any search begins.
#[test]
fn lazylist_marked_bug_surfaces_during_inference() {
    let h = lazylist::harness(lazylist::Build::Buggy);
    let tests = vec![tests::by_name("Sac").expect("catalog")];
    match infer(&h, &tests, Mode::Relaxed, &InferConfig::default()) {
        Err(InferError::Check(CheckError::SerialBug(cx))) => {
            assert!(
                cx.errors.iter().any(|e| e.contains("undefined")),
                "expected the undefined-marked-field error, got {:?}",
                cx.errors
            );
        }
        other => panic!("expected the serial bug, got {other:?}"),
    }
}
