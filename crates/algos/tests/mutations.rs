//! Failure injection: deliberately broken builds that the checker must
//! reject. This guards the *detector*, not the algorithms — a checker
//! that silently passes corrupted implementations would make every
//! green test in this repository meaningless.
//!
//! Three families:
//!
//! 1. **fence deletions** (the paper's §4.2 necessity criterion): every
//!    fence of the msn Fig. 9 placement is load-bearing;
//! 2. **logic mutations**: wrong-node reads, lost CAS updates, lock
//!    confusion — algorithmic bugs that must already fail under SC;
//! 3. **specification corruption**: removing a vector from a mined
//!    observation set must turn a passing check into a failing one.

use cf_algos::{fences, ms2, msn, refmodel, snark, tests, treiber, Shape, Variant};
use cf_memmodel::Mode;
use checkfence::{mine_reference, CheckError, Harness, Query};

/// `true` if the build fails the inclusion check against the *reference
/// model's* observation set. Logic mutations that stay deterministic
/// can be invisible to self-mined specifications (the implementation
/// "specifies itself", §2.2); the reference spec catches them.
fn rejected_vs_reference(h: &Harness, shape: Shape, test_name: &str, mode: Mode) -> bool {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = refmodel::mine(shape, &t);
    match Query::check_inclusion(h, &t, spec).on(mode).run() {
        Ok(v) => !v.passed(),
        Err(CheckError::BoundsDiverged { .. }) => true,
        Err(e) => panic!("checking infrastructure error: {e}"),
    }
}

/// `true` if the checker rejects the build: a counterexample, a serial
/// bug found during mining, or diverging retry bounds (the livelock
/// symptom of a missing load-load fence).
fn rejected(h: &Harness, test_name: &str, mode: Mode) -> bool {
    let t = tests::by_name(test_name).expect("catalog test");
    let spec = match mine_reference(h, &t) {
        Ok(m) => m.spec,
        Err(CheckError::SerialBug(_)) => return true,
        Err(e) => panic!("mining infrastructure error: {e}"),
    };
    match Query::check_inclusion(h, &t, spec).on(mode).run() {
        Ok(v) => !v.passed(),
        Err(CheckError::BoundsDiverged { .. }) => true,
        Err(e) => panic!("checking infrastructure error: {e}"),
    }
}

fn mutate(base: &Harness, name: &str, source: &str, from: &str, to: &str) -> Harness {
    assert!(
        source.contains(from),
        "mutation anchor `{from}` not found in {name}'s source"
    );
    let mutated = source.replace(from, to);
    let program = cf_minic::compile(&mutated)
        .unwrap_or_else(|e| panic!("mutated {name} must still compile: {e}"));
    Harness {
        name: name.into(),
        program,
        init_proc: base.init_proc.clone(),
        ops: base.ops.clone(),
    }
}

// ------------------------------------------------------ fence deletions

#[test]
fn every_msn_fence_is_necessary() {
    // §4.2: the Fig. 9 placement is necessary — deleting any single
    // fence makes T0 or Ti2 fail on Relaxed.
    let fenced = msn::harness(Variant::Fenced);
    let sites = fences::fence_sites(&fenced.program);
    assert_eq!(sites.len(), 7, "Fig. 9 places seven fences");
    for site in &sites {
        let program = fences::remove_fence(&fenced.program, site);
        let h = Harness {
            name: format!("msn-minus-{site}"),
            program,
            init_proc: fenced.init_proc.clone(),
            ops: fenced.ops.clone(),
        };
        assert!(
            ["T0", "Ti2", "T1"]
                .iter()
                .any(|tn| rejected(&h, tn, Mode::Relaxed)),
            "removing {site} must break T0, Ti2 or T1 on Relaxed"
        );
    }
}

// ------------------------------------------------------- logic mutations

#[test]
fn msn_reading_the_dummy_nodes_value_is_caught() {
    // Dequeue must return `next->value`; reading `head->value` returns
    // the dummy node's (undefined or stale) value. Fails even under SC.
    let base = msn::harness(Variant::Fenced);
    let h = mutate(
        &base,
        "msn-wrong-node",
        &msn::source(Variant::Fenced),
        "*pvalue = next->value;",
        "*pvalue = head->value;",
    );
    assert!(rejected(&h, "T0", Mode::Sc));
}

#[test]
fn msn_skipping_the_consistency_recheck_still_works_on_sc() {
    // Negative control for the mutation harness: the `head ==
    // queue.head` re-check guards against ABA-style interference, but
    // with only one dequeuer in T0/Ti2 removing it must NOT fail — a
    // mutation the checker rightly accepts on these tests.
    let base = msn::harness(Variant::Fenced);
    let h = mutate(
        &base,
        "msn-no-recheck",
        &msn::source(Variant::Fenced),
        "if (head == queue.head) {",
        "if (head == head) {",
    );
    assert!(!rejected(&h, "T0", Mode::Sc));
}

#[test]
fn treiber_lost_pop_update_is_caught_by_the_reference_spec() {
    // Pop that reinstalls the same top (`t` instead of `next`) never
    // removes anything: every pop returns the same element.
    let base = treiber::harness(Variant::Fenced);
    let h = mutate(
        &base,
        "treiber-lost-pop",
        &treiber::source(Variant::Fenced),
        "if (cas(&stack.top, (unsigned) t, (unsigned) next)) {",
        "if (cas(&stack.top, (unsigned) t, (unsigned) t)) {",
    );
    // Against its own serial executions the mutant *passes*: the bug is
    // deterministic, so the self-mined specification absorbs it. This
    // is the paper's §2.2 point that the specification may (and here
    // must) come from a separate reference implementation.
    assert!(!rejected(&h, "U1", Mode::Sc), "self-spec cannot see it");
    assert!(
        rejected_vs_reference(&h, Shape::Stack, "U1", Mode::Sc),
        "the LIFO reference spec must reject the double pop"
    );
}

#[test]
fn treiber_unfenced_publish_is_caught_only_on_weak_models() {
    // The same missing-fence defect, checked both ways: accepted under
    // SC (it is not a logic bug), rejected under Relaxed.
    let h = treiber::harness(Variant::Unfenced);
    assert!(!rejected(&h, "U0", Mode::Sc));
    assert!(rejected(&h, "U0", Mode::Relaxed));
}

#[test]
fn ms2_without_the_head_lock_is_caught() {
    // Removing dequeue's locking entirely lets two dequeuers race past
    // the same head: both return the *same* element, which no serial
    // order can justify when the two enqueued values differ.
    let base = ms2::harness(Variant::Fenced);
    // NB: replace `unlock` before `lock` — the latter is a substring.
    let source = ms2::source(Variant::Fenced)
        .replace("unlock(&queue.head_lock);", "")
        .replace("lock(&queue.head_lock);", "");
    let program = cf_minic::compile(&source).expect("still compiles");
    let h = Harness {
        name: "ms2-no-head-lock".into(),
        program,
        init_proc: base.init_proc.clone(),
        ops: base.ops.clone(),
    };
    assert!(
        rejected(&h, "T1", Mode::Sc),
        "two unsynchronized dequeuers must double-dequeue"
    );
}

#[test]
fn ms2_lost_enqueue_is_masked_by_small_tests() {
    // The dual mutation — dropping the *tail* lock — is a real bug, but
    // on ( e | e | d | d ) every lost-update observation is still
    // serializable: the lost enqueue can be ordered after both
    // dequeues. A reminder that bounded testing proves inclusion for
    // the given test only (§2.2), recorded here as a negative control.
    let base = ms2::harness(Variant::Fenced);
    let source = ms2::source(Variant::Fenced)
        .replace("unlock(&queue.tail_lock);", "")
        .replace("lock(&queue.tail_lock);", "");
    let program = cf_minic::compile(&source).expect("still compiles");
    let h = Harness {
        name: "ms2-no-tail-lock".into(),
        program,
        init_proc: base.init_proc.clone(),
        ops: base.ops.clone(),
    };
    assert!(!rejected(&h, "T1", Mode::Sc));
}

#[test]
fn ms2_with_a_single_lock_still_passes() {
    // Negative control: taking the head lock in enqueue *serializes*
    // the whole queue on one lock — ugly but correct, and the checker
    // must accept it.
    let base = ms2::harness(Variant::Fenced);
    // NB: replace `unlock` before `lock` — the latter is a substring.
    let source = ms2::source(Variant::Fenced)
        .replace("unlock(&queue.tail_lock);", "unlock(&queue.head_lock);")
        .replace("lock(&queue.tail_lock);", "lock(&queue.head_lock);");
    let program = cf_minic::compile(&source).expect("still compiles");
    let h = Harness {
        name: "ms2-one-lock".into(),
        program,
        init_proc: base.init_proc.clone(),
        ops: base.ops.clone(),
    };
    assert!(!rejected(&h, "T1", Mode::Sc));
}

// ------------------------------------------------ specification corruption

#[test]
fn corrupting_the_mined_spec_fails_the_check() {
    let h = msn::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    let mut spec = mine_reference(&h, &t).expect("mines").spec;
    let mut engine = checkfence::Engine::new(checkfence::EngineConfig::default());
    assert!(engine
        .run(&Query::check_inclusion(&h, &t, spec.clone()).on(Mode::Sc))
        .expect("checks")
        .passed());

    // Remove one legal observation: some execution now has "no serial
    // justification" and the inclusion check must produce it.
    let victim = spec.vectors.iter().next().expect("non-empty").clone();
    spec.vectors.remove(&victim);
    assert!(
        !engine
            .run(&Query::check_inclusion(&h, &t, spec).on(Mode::Sc))
            .expect("checks")
            .passed(),
        "removing {victim:?} from the spec must surface a counterexample"
    );
    // Both checks shared the pooled encoding.
    assert_eq!(engine.stats().encodes, 1);
}

#[test]
fn the_empty_spec_rejects_everything() {
    let h = msn::harness(Variant::Fenced);
    let t = tests::by_name("T0").expect("catalog");
    let empty = checkfence::ObsSet::default();
    assert!(!Query::check_inclusion(&h, &t, empty)
        .on(Mode::Sc)
        .run()
        .expect("checks")
        .passed());
}

// --------------------------------------------- cross-model agreement

#[test]
fn sat_mining_agrees_with_reference_models_on_all_shapes() {
    // The SAT-based Seriality mining and the pure-Rust reference models
    // must enumerate identical observation sets (the paper's "refset"
    // shortcut is only sound if the two agree).
    let cases: [(Harness, Shape, &str); 4] = [
        (msn::harness(Variant::Fenced), Shape::Queue, "Ti2"),
        (
            cf_algos::lazylist::harness(cf_algos::lazylist::Build::Fixed),
            Shape::Set,
            "Sac",
        ),
        (
            snark::harness(snark::Build::Fixed, Variant::Fenced),
            Shape::Deque,
            "D0",
        ),
        (treiber::harness(Variant::Fenced), Shape::Stack, "U0"),
    ];
    for (h, shape, test_name) in &cases {
        let t = tests::by_name(test_name).expect("catalog");
        let sat = Query::mine(h, &t)
            .run()
            .expect("sat mining")
            .into_observations()
            .expect("observations");
        let reference = refmodel::mine(*shape, &t);
        assert_eq!(
            sat.vectors, reference.vectors,
            "{}/{test_name}: SAT mining disagrees with the reference model",
            h.name
        );
    }
}
