//! The pure ordering rules of the paper's memory model axioms (§2.3.2).
//!
//! These tiny functions are the single source of truth shared by the
//! explicit-state checker in this crate and the SAT encoder in
//! `checkfence`: which program-order pairs the memory order must respect,
//! and whether store-to-load forwarding is visible.

use cf_lsl::{FenceKind, FenceSem, MemOrder};

/// Memory access kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// The memory model under which executions are interpreted.
///
/// `Serial` is the paper's formalization of serial executions as a memory
/// model (§2.3.2 "Seriality"): sequential consistency plus atomicity of
/// whole operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// Operations appear atomic and the execution is sequentially
    /// consistent — the specification semantics.
    Serial,
    /// Classic sequential consistency (Lamport).
    Sc,
    /// Total store order (Sun SPARC TSO, §2.3.3): only the store→load
    /// order is relaxed — stores are buffered locally and forwarded to
    /// the issuing processor's own later loads. Loads stay in order,
    /// stores stay in order.
    Tso,
    /// Partial store order (Sun SPARC PSO, §2.3.3): TSO plus relaxation
    /// of store→store order to *different* addresses. Loads still stay
    /// in order.
    Pso,
    /// The paper's `Relaxed` model: load/store reordering, store
    /// buffering with forwarding, same-address load-load reordering and
    /// dependence-free speculation.
    Relaxed,
}

impl Mode {
    /// All modes, strongest first (each allows a superset of the traces
    /// of its predecessor — see [`Mode::at_most_as_strong_as`]).
    pub fn all() -> [Mode; 5] {
        [Mode::Serial, Mode::Sc, Mode::Tso, Mode::Pso, Mode::Relaxed]
    }

    /// Dense index into [`Mode::all`] (used by [`ModeSet`] bitmasks).
    pub fn index(self) -> usize {
        match self {
            Mode::Serial => 0,
            Mode::Sc => 1,
            Mode::Tso => 2,
            Mode::Pso => 3,
            Mode::Relaxed => 4,
        }
    }

    /// The hardware-level models (everything except the `Serial`
    /// specification semantics), strongest first.
    pub fn hardware() -> [Mode; 4] {
        [Mode::Sc, Mode::Tso, Mode::Pso, Mode::Relaxed]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Serial => "serial",
            Mode::Sc => "sc",
            Mode::Tso => "tso",
            Mode::Pso => "pso",
            Mode::Relaxed => "relaxed",
        }
    }

    /// Does this mode interleave operations atomically?
    pub fn operations_atomic(self) -> bool {
        self == Mode::Serial
    }

    /// May a load read a program-order-earlier store that has not yet
    /// performed globally (store-buffer forwarding, §2.3.2 Relaxed
    /// visibility `S(l)`)?
    ///
    /// TSO and PSO buffer stores exactly like Relaxed does; the
    /// difference between the three is only which program-order edges
    /// the memory order must respect ([`Mode::po_edge_required`]).
    pub fn allows_forwarding(self) -> bool {
        matches!(self, Mode::Tso | Mode::Pso | Mode::Relaxed)
    }

    /// Must `x <M y` hold for `x` before `y` in program order (same
    /// thread), ignoring fences and atomic blocks?
    ///
    /// * SC / Serial: always (axiom 1 of the SC formalization).
    /// * TSO: always, except store→load (store buffering). The
    ///   same-address store→load case needs no edge either: visibility
    ///   maximality (axiom 3) already forces the load to return the
    ///   buffered store (or something newer), which is the TSO
    ///   forwarding semantics.
    /// * PSO: like TSO, plus store→store to *different* addresses is
    ///   relaxed (per-address FIFO write buffers).
    /// * Relaxed: only when both target the same address **and** `y` is a
    ///   store (axiom 1 of the Relaxed formalization) — this is what
    ///   permits load-load same-address reordering (relaxation 4) and
    ///   store-load reordering (store buffering, relaxations 2-3).
    pub fn po_edge_required(self, x: AccessKind, y: AccessKind, same_addr: bool) -> bool {
        match self {
            Mode::Serial | Mode::Sc => true,
            Mode::Tso => !(x == AccessKind::Store && y == AccessKind::Load),
            Mode::Pso => match (x, y) {
                (AccessKind::Load, _) => true,
                (AccessKind::Store, AccessKind::Store) => same_addr,
                (AccessKind::Store, AccessKind::Load) => false,
            },
            Mode::Relaxed => same_addr && y == AccessKind::Store,
        }
    }

    /// `true` if this model is at most as strong as `other`: every
    /// program-order edge `other` relaxes, `self` relaxes too, and every
    /// forwarding behaviour `other` exhibits, `self` exhibits too. In the
    /// paper's §2.3.3 terminology `other` is *stronger than* `self`, so
    /// every trace allowed by `other` is allowed by `self`.
    pub fn at_most_as_strong_as(self, other: Mode) -> bool {
        let weaker_edges = [AccessKind::Load, AccessKind::Store].iter().all(|&x| {
            [AccessKind::Load, AccessKind::Store].iter().all(|&y| {
                [false, true].iter().all(|&same| {
                    !self.po_edge_required(x, y, same) || other.po_edge_required(x, y, same)
                })
            })
        });
        let weaker_ops = !self.operations_atomic() || other.operations_atomic();
        let more_forwarding = !other.allows_forwarding() || self.allows_forwarding();
        weaker_edges && weaker_ops && more_forwarding
    }
}

/// A small set of [`Mode`]s, used to group memory-model axioms by which
/// modes require them (the "mode delta" grouping of the incremental
/// checking sessions: one multi-mode encoding emits each axiom clause
/// once per distinct mode *group* rather than once per mode).
///
/// # Examples
///
/// ```
/// use cf_memmodel::{Mode, ModeSet};
///
/// let same_addr_store = ModeSet::po_edge_group(
///     ModeSet::all(),
///     cf_memmodel::AccessKind::Store,
///     cf_memmodel::AccessKind::Store,
///     true,
/// );
/// // Every model orders same-address stores.
/// assert_eq!(same_addr_store, ModeSet::all());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ModeSet(u8);

impl ModeSet {
    /// The empty set.
    pub fn empty() -> ModeSet {
        ModeSet(0)
    }

    /// All five modes.
    pub fn all() -> ModeSet {
        Mode::all().into_iter().collect()
    }

    /// The four hardware models (everything except `Serial`).
    pub fn hardware() -> ModeSet {
        Mode::hardware().into_iter().collect()
    }

    /// A singleton set.
    pub fn single(mode: Mode) -> ModeSet {
        ModeSet(1 << mode.index())
    }

    /// Adds a mode.
    pub fn insert(&mut self, mode: Mode) {
        self.0 |= 1 << mode.index();
    }

    /// Membership test.
    pub fn contains(self, mode: Mode) -> bool {
        self.0 >> mode.index() & 1 == 1
    }

    /// Number of modes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if no mode is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The modes in the set, strongest first.
    pub fn iter(self) -> impl Iterator<Item = Mode> {
        Mode::all().into_iter().filter(move |m| self.contains(*m))
    }

    /// The subset of `universe` whose members require the program-order
    /// edge `x → y` (same thread) under the given aliasing assumption —
    /// the grouping key for the multi-mode Θ encoding.
    pub fn po_edge_group(
        universe: ModeSet,
        x: AccessKind,
        y: AccessKind,
        same_addr: bool,
    ) -> ModeSet {
        universe
            .iter()
            .filter(|m| m.po_edge_required(x, y, same_addr))
            .collect()
    }

    /// The subset of `universe` that exhibits store-to-load forwarding
    /// (visibility of buffered same-thread stores, §2.3.2 `S(l)`).
    pub fn forwarding_group(universe: ModeSet) -> ModeSet {
        universe.iter().filter(|m| m.allows_forwarding()).collect()
    }
}

impl FromIterator<Mode> for ModeSet {
    fn from_iter<I: IntoIterator<Item = Mode>>(iter: I) -> Self {
        let mut s = ModeSet::empty();
        for m in iter {
            s.insert(m);
        }
        s
    }
}

/// Does an `X-Y` fence order a preceding access of kind `x` before a
/// succeeding access of kind `y`?
///
/// An `X-Y` fence guarantees that all accesses of type X before the fence
/// are ordered before all accesses of type Y after it (paper §3.1).
pub fn fence_orders(kind: FenceKind, x: AccessKind, y: AccessKind) -> bool {
    let (before_loads, after_loads) = kind.sides();
    let x_matches = (x == AccessKind::Load) == before_loads;
    let y_matches = (y == AccessKind::Load) == after_loads;
    x_matches && y_matches
}

/// Does a C11 `fence(ord)` order a preceding access of kind `x` before a
/// succeeding access of kind `y`?
///
/// This is the standard hardware mapping of the C11 fences:
///
/// * an **acquire** fence keeps preceding *loads* before everything
///   after it (load-load + load-store);
/// * a **release** fence keeps everything before it ahead of succeeding
///   *stores* (load-store + store-store);
/// * an **acq_rel** fence is both;
/// * a **seq_cst** fence is a full barrier;
/// * a **relaxed** fence orders nothing.
///
/// Built-in hardware [`Mode`]s interpret C11 fences through exactly this
/// table; declarative models additionally see them through the
/// `fence_acq`/`fence_rel`/`fence_sc` pair relations.
pub fn c11_fence_orders(ord: MemOrder, x: AccessKind, y: AccessKind) -> bool {
    match ord {
        MemOrder::Plain | MemOrder::Relaxed => false,
        MemOrder::Acquire => x == AccessKind::Load,
        MemOrder::Release => y == AccessKind::Store,
        MemOrder::AcqRel => x == AccessKind::Load || y == AccessKind::Store,
        MemOrder::SeqCst => true,
    }
}

/// [`fence_orders`]/[`c11_fence_orders`] dispatched on a fence's
/// [`FenceSem`] — the one predicate both backends use for the
/// program-order edges a fence instruction preserves.
pub fn sem_orders(sem: FenceSem, x: AccessKind, y: AccessKind) -> bool {
    match sem {
        FenceSem::Classic(kind) => fence_orders(kind, x, y),
        FenceSem::C11(ord) => c11_fence_orders(ord, x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_orders_everything() {
        for x in [AccessKind::Load, AccessKind::Store] {
            for y in [AccessKind::Load, AccessKind::Store] {
                for same in [false, true] {
                    assert!(Mode::Sc.po_edge_required(x, y, same));
                    assert!(Mode::Serial.po_edge_required(x, y, same));
                }
            }
        }
    }

    #[test]
    fn relaxed_only_orders_same_address_stores() {
        use AccessKind::*;
        // Different addresses: never ordered.
        assert!(!Mode::Relaxed.po_edge_required(Store, Store, false));
        assert!(!Mode::Relaxed.po_edge_required(Load, Load, false));
        // Same address: ordered only when the later access is a store.
        assert!(Mode::Relaxed.po_edge_required(Store, Store, true));
        assert!(Mode::Relaxed.po_edge_required(Load, Store, true));
        // Same-address load-load reordering (relaxation 4) is allowed.
        assert!(!Mode::Relaxed.po_edge_required(Load, Load, true));
        // Store buffering (relaxation 2): store then load unordered.
        assert!(!Mode::Relaxed.po_edge_required(Store, Load, true));
    }

    #[test]
    fn fence_kind_matrix() {
        use AccessKind::*;
        assert!(fence_orders(FenceKind::LoadLoad, Load, Load));
        assert!(!fence_orders(FenceKind::LoadLoad, Store, Load));
        assert!(!fence_orders(FenceKind::LoadLoad, Load, Store));
        assert!(fence_orders(FenceKind::StoreStore, Store, Store));
        assert!(fence_orders(FenceKind::StoreLoad, Store, Load));
        assert!(fence_orders(FenceKind::LoadStore, Load, Store));
        assert!(!fence_orders(FenceKind::LoadStore, Store, Store));
    }

    #[test]
    fn c11_fence_matrix() {
        use AccessKind::*;
        use MemOrder::*;
        // Acquire: loads before → everything after.
        assert!(c11_fence_orders(Acquire, Load, Load));
        assert!(c11_fence_orders(Acquire, Load, Store));
        assert!(!c11_fence_orders(Acquire, Store, Load));
        // Release: everything before → stores after.
        assert!(c11_fence_orders(Release, Load, Store));
        assert!(c11_fence_orders(Release, Store, Store));
        assert!(!c11_fence_orders(Release, Store, Load));
        // AcqRel = union; SeqCst = full barrier; Relaxed = nothing.
        assert!(c11_fence_orders(AcqRel, Load, Load));
        assert!(c11_fence_orders(AcqRel, Store, Store));
        assert!(!c11_fence_orders(AcqRel, Store, Load));
        for x in [Load, Store] {
            for y in [Load, Store] {
                assert!(c11_fence_orders(SeqCst, x, y));
                assert!(!c11_fence_orders(Relaxed, x, y));
            }
        }
        // Dispatch through FenceSem agrees with both tables.
        assert_eq!(
            sem_orders(FenceSem::Classic(FenceKind::StoreLoad), Store, Load),
            fence_orders(FenceKind::StoreLoad, Store, Load)
        );
        assert_eq!(
            sem_orders(FenceSem::C11(SeqCst), Store, Load),
            c11_fence_orders(SeqCst, Store, Load)
        );
    }

    #[test]
    fn mode_set_grouping() {
        use AccessKind::*;
        let all = ModeSet::all();
        assert_eq!(all.len(), 5);
        // Store→load order is only required by Serial and SC.
        let sl = ModeSet::po_edge_group(all, Store, Load, false);
        assert!(sl.contains(Mode::Serial) && sl.contains(Mode::Sc));
        assert!(!sl.contains(Mode::Tso) && !sl.contains(Mode::Relaxed));
        // Same-address store→store order is universal.
        assert_eq!(ModeSet::po_edge_group(all, Store, Store, true), all);
        // Forwarding splits the lattice at TSO.
        let fwd = ModeSet::forwarding_group(all);
        assert_eq!(
            fwd.iter().collect::<Vec<_>>(),
            vec![Mode::Tso, Mode::Pso, Mode::Relaxed]
        );
        // Grouping within a restricted universe stays inside it.
        let single = ModeSet::single(Mode::Relaxed);
        assert_eq!(
            ModeSet::po_edge_group(single, Load, Load, false),
            ModeSet::empty()
        );
        assert!(ModeSet::single(Mode::Sc).iter().eq([Mode::Sc]));
    }

    #[test]
    fn forwarding_only_on_relaxed() {
        assert!(Mode::Relaxed.allows_forwarding());
        assert!(!Mode::Sc.allows_forwarding());
        assert!(!Mode::Serial.allows_forwarding());
    }
}
