//! # cf-memmodel — axiomatic memory models
//!
//! The axiomatic formulations of §2.3.2 of the CheckFence paper:
//! sequential consistency, the paper's `Relaxed` model (load/store
//! reordering, store buffering with forwarding, same-address load-load
//! reordering) and *Seriality* (operation-atomic interleavings, the
//! specification semantics) — plus, as a reproduction extension, the
//! §2.3.3 architecture chain **TSO** and **PSO**, which sit strictly
//! between SC and Relaxed (every model's traces are a subset of the
//! next weaker one's).
//!
//! The crate provides:
//!
//! * [`Mode`] and the pure ordering rules ([`Mode::po_edge_required`],
//!   [`fence_orders`]) shared with the SAT encoder in `checkfence`;
//! * an explicit-state checker ([`ConcreteTrace::allowed`]) that decides
//!   whether an annotated trace satisfies the axioms by brute force —
//!   the oracle used to validate both the encoder and counterexamples;
//! * a litmus-test catalog ([`litmus`]) including the paper's Fig. 2.
//!
//! ## Example
//!
//! ```
//! use cf_memmodel::{litmus, Mode};
//!
//! let sb = litmus::store_buffering();
//! // Both threads reading stale values needs store buffering:
//! assert!(!sb.allows(Mode::Sc, &[0, 0]));
//! assert!(sb.allows(Mode::Relaxed, &[0, 0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explicit;
mod rules;

pub mod litmus;

pub use explicit::{ConcreteTrace, Litmus, LitmusOp, TraceItem};
pub use rules::{c11_fence_orders, fence_orders, sem_orders, AccessKind, Mode, ModeSet};
