//! A catalog of classic litmus tests, including the paper's Fig. 2.
//!
//! Each test documents the *distinguishing outcome* — the register vector
//! whose allowance separates memory models.

use cf_lsl::{FenceKind, MemOrder};

use crate::explicit::{Litmus, LitmusOp};

use LitmusOp::{Fence, Load, Store};

/// Store buffering (Dekker): both threads store then load the other
/// location. Outcome `[0, 0]` requires store-load reordering.
pub fn store_buffering() -> Litmus {
    Litmus {
        name: "SB",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Store buffering with store-load fences: `[0, 0]` forbidden again.
pub fn store_buffering_fenced() -> Litmus {
    Litmus {
        name: "SB+fences",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreLoad),
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreLoad),
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Message passing: writer stores data then flag; reader loads flag then
/// data. Outcome `[1, 0]` (flag seen, stale data) requires reordering.
pub fn message_passing() -> Litmus {
    Litmus {
        name: "MP",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Message passing with a store-store fence (writer) and load-load fence
/// (reader): `[1, 0]` forbidden — this is the paper's "incomplete
/// initialization" fix pattern (§4.3).
pub fn message_passing_fenced() -> Litmus {
    Litmus {
        name: "MP+fences",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreStore),
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Message passing with only the writer-side store-store fence. On PSO
/// this restores order (PSO never reorders loads), on Relaxed the
/// reader's loads still reorder so `[1, 0]` stays allowed.
pub fn message_passing_ss_fence_only() -> Litmus {
    Litmus {
        name: "MP+ss-fence",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreStore),
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Load buffering: both threads load then store the other location.
/// Outcome `[1, 1]` requires load-store reordering.
pub fn load_buffering() -> Litmus {
    Litmus {
        name: "LB",
        threads: vec![
            vec![
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Load buffering with load-store fences: `[1, 1]` forbidden.
pub fn load_buffering_fenced() -> Litmus {
    Litmus {
        name: "LB+fences",
        threads: vec![
            vec![
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadStore),
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadStore),
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// Same-address load-load reordering (the paper's relaxation 4): one
/// writer, one reader issuing two loads of the same location. Outcome
/// `[1, 0]` (new then old) requires reordering the two loads.
pub fn coherence_read_read() -> Litmus {
    Litmus {
        name: "CoRR",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// CoRR with a load-load fence: `[1, 0]` forbidden.
pub fn coherence_read_read_fenced() -> Litmus {
    Litmus {
        name: "CoRR+fence",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// The paper's Fig. 2: independent reads of independent writes with
/// load-load fences. Outcome `[1, 0, 1, 0]` is **not** allowed on Relaxed
/// (stores are globally ordered) although weaker architectures (PPC,
/// IA-32, IA-64) permit it.
pub fn iriw_fenced() -> Litmus {
    Litmus {
        name: "IRIW+fences (Fig. 2)",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![Store {
                addr: 1,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 0,
                    reg: 3,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 4,
    }
}

/// IRIW without fences: the loads may reorder, so `[1, 0, 1, 0]` is
/// allowed on Relaxed.
pub fn iriw_unfenced() -> Litmus {
    Litmus {
        name: "IRIW",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![Store {
                addr: 1,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 3,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 4,
    }
}

/// Store-to-load forwarding: a thread reads its own buffered store before
/// it is globally visible. `[1, 0]` — own store seen, other thread has
/// not — is allowed on Relaxed even though the two threads' observations
/// would be inconsistent under SC... (here the SC check needs the second
/// thread; see the unit tests).
pub fn store_forwarding() -> Litmus {
    Litmus {
        name: "SF",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 3,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 4,
    }
}

/// Store buffering with a fence on only one side: the relaxed outcome
/// stays allowed — repairs must cover *both* reordering sites, a
/// common real-world fencing mistake.
pub fn store_buffering_half_fenced() -> Litmus {
    Litmus {
        name: "SB+one-fence",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreLoad),
                Load {
                    addr: 1,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 2,
    }
}

/// IRIW with only one fenced reader: partial repairs fail — the
/// unfenced reader's loads still reorder on Relaxed, so the
/// disagreeing outcome `[1, 0, 1, 0]` stays allowed there (and only
/// there: TSO/PSO keep loads ordered, and then the total store order
/// forbids the disagreement).
pub fn iriw_one_fence() -> Litmus {
    Litmus {
        name: "IRIW+one-fence",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![Store {
                addr: 1,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 3,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 4,
    }
}

/// The "R" shape (write-write causality): T0 publishes `x` then `y`;
/// T1 overwrites `y` and reads `x`. The classic formulation asks
/// whether `y`'s coherence order can put T1's store last while T1
/// still missed `x`; registers cannot observe final memory state, so
/// a third observer thread witnesses the write-write order by reading
/// `y = 1` before `y = 2` (in a single total memory order, reading the
/// older store at one point and the newer one later proves `y=1 <M
/// y=2`). The distinguishing outcome `[0, 1, 2]` needs T1's store to
/// overtake its own later load — store buffering — so it separates SC
/// from TSO just like SB, but through a *cross-location causality
/// chain*: `x=1 <po y=1 <M y=2 <po r0=x` should force `r0 = 1`.
pub fn write_write_causality() -> Litmus {
    Litmus {
        name: "R",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 2,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 3,
    }
}

/// R with a store-load fence in the overwriting thread: the TSO escape
/// is gone, but PSO can still reorder T0's two stores, breaking the
/// causality chain at its first link — `[0, 1, 2]` stays allowed on
/// PSO and Relaxed. Separates TSO from PSO.
pub fn write_write_causality_sl_fence() -> Litmus {
    Litmus {
        name: "R+sl-fence",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 2,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreLoad),
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 3,
    }
}

/// R with both repairs (store-store in the publisher, store-load in
/// the overwriter): every link of the causality chain is fenced, so
/// `[0, 1, 2]` is forbidden on all four models.
pub fn write_write_causality_fenced() -> Litmus {
    Litmus {
        name: "R+fences",
        threads: vec![
            vec![
                Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreStore),
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Store {
                    addr: 1,
                    value: 2,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::StoreLoad),
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Fence(FenceKind::LoadLoad),
                Load {
                    addr: 1,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 3,
    }
}

/// Write-to-read causality (three threads): T1 observes T0's store and
/// then publishes; T2 observes the publication but misses the original
/// store. Outcome `[1, 1, 0]` needs load-store reordering in T1 or
/// load-load reordering in T2 — allowed only on Relaxed (TSO and PSO
/// keep loads ordered and never hoist stores above loads).
pub fn write_read_causality() -> Litmus {
    Litmus {
        name: "WRC",
        threads: vec![
            vec![Store {
                addr: 0,
                value: 1,
                ord: MemOrder::Plain,
            }],
            vec![
                Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
                Store {
                    addr: 1,
                    value: 1,
                    ord: MemOrder::Plain,
                },
            ],
            vec![
                Load {
                    addr: 1,
                    reg: 1,
                    ord: MemOrder::Plain,
                },
                Load {
                    addr: 0,
                    reg: 2,
                    ord: MemOrder::Plain,
                },
            ],
        ],
        num_regs: 3,
    }
}

/// All catalog entries.
pub fn all() -> Vec<Litmus> {
    vec![
        store_buffering(),
        store_buffering_fenced(),
        message_passing(),
        message_passing_fenced(),
        message_passing_ss_fence_only(),
        load_buffering(),
        load_buffering_fenced(),
        coherence_read_read(),
        coherence_read_read_fenced(),
        iriw_fenced(),
        iriw_unfenced(),
        iriw_one_fence(),
        store_forwarding(),
        store_buffering_half_fenced(),
        write_read_causality(),
        write_write_causality(),
        write_write_causality_sl_fence(),
        write_write_causality_fenced(),
    ]
}

/// One row of the cross-mode expected-outcome matrix (§2.3.3): a litmus
/// test, its distinguishing outcome, and whether each hardware model
/// allows it.
pub struct MatrixRow {
    /// The test.
    pub test: Litmus,
    /// The distinguishing register outcome.
    pub outcome: Vec<i64>,
    /// Expected allowance per hardware mode, in [`crate::Mode::hardware`]
    /// order: `[Sc, Tso, Pso, Relaxed]`.
    pub allowed: [bool; 4],
}

/// The expected-outcome matrix: every catalog test's distinguishing
/// outcome with its per-mode verdict. The rows witness that each model
/// in the §2.3.3 chain is *strictly* weaker than its predecessor, and
/// double as the differencing oracle for user-written specs (`cf-spec`
/// checks its bundled models against exactly this table).
pub fn matrix() -> Vec<MatrixRow> {
    let row = |test, outcome, allowed| MatrixRow {
        test,
        outcome,
        allowed,
    };
    vec![
        // SB separates SC from TSO (store buffering).
        row(store_buffering(), vec![0, 0], [false, true, true, true]),
        row(store_buffering_fenced(), vec![0, 0], [false; 4]),
        row(
            store_buffering_half_fenced(),
            vec![0, 0],
            [false, true, true, true],
        ),
        // MP separates TSO from PSO (store-store reordering).
        row(message_passing(), vec![1, 0], [false, false, true, true]),
        row(message_passing_fenced(), vec![1, 0], [false; 4]),
        row(
            message_passing_ss_fence_only(),
            vec![1, 0],
            [false, false, false, true],
        ),
        // LB and CoRR separate PSO from Relaxed (load reordering).
        row(load_buffering(), vec![1, 1], [false, false, false, true]),
        row(load_buffering_fenced(), vec![1, 1], [false; 4]),
        row(
            coherence_read_read(),
            vec![1, 0],
            [false, false, false, true],
        ),
        row(coherence_read_read_fenced(), vec![1, 0], [false; 4]),
        row(
            iriw_unfenced(),
            vec![1, 0, 1, 0],
            [false, false, false, true],
        ),
        // The paper's Fig. 2: forbidden on every model of this chain.
        row(iriw_fenced(), vec![1, 0, 1, 0], [false; 4]),
        row(
            store_forwarding(),
            vec![1, 0, 1, 0],
            [false, true, true, true],
        ),
        row(
            write_read_causality(),
            vec![1, 1, 0],
            [false, false, false, true],
        ),
        row(
            iriw_one_fence(),
            vec![1, 0, 1, 0],
            [false, false, false, true],
        ),
        // R separates SC from TSO through a write-write causality
        // chain; its store-load repair moves the break to PSO's
        // store-store relaxation; the full repair forbids it everywhere.
        row(
            write_write_causality(),
            vec![0, 1, 2],
            [false, true, true, true],
        ),
        row(
            write_write_causality_sl_fence(),
            vec![0, 1, 2],
            [false, false, true, true],
        ),
        row(write_write_causality_fenced(), vec![0, 1, 2], [false; 4]),
    ]
}

impl MatrixRow {
    /// Expected allowance of the distinguishing outcome under any of
    /// the five built-in models: Seriality has no operation structure
    /// at litmus level, so it behaves exactly like SC.
    pub fn allowed_on(&self, mode: crate::Mode) -> bool {
        let col = match mode {
            crate::Mode::Serial | crate::Mode::Sc => 0,
            crate::Mode::Tso => 1,
            crate::Mode::Pso => 2,
            crate::Mode::Relaxed => 3,
        };
        self.allowed[col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Mode;

    #[test]
    fn sb_distinguishes_models() {
        let t = store_buffering();
        assert!(!t.allows(Mode::Sc, &[0, 0]), "SC forbids both-stale");
        assert!(
            t.allows(Mode::Relaxed, &[0, 0]),
            "Relaxed allows store buffering"
        );
        assert!(t.allows(Mode::Sc, &[1, 1]));
        let f = store_buffering_fenced();
        assert!(
            !f.allows(Mode::Relaxed, &[0, 0]),
            "store-load fences restore SC"
        );
    }

    #[test]
    fn mp_needs_two_fences() {
        let t = message_passing();
        assert!(!t.allows(Mode::Sc, &[1, 0]));
        assert!(t.allows(Mode::Relaxed, &[1, 0]));
        let f = message_passing_fenced();
        assert!(!f.allows(Mode::Relaxed, &[1, 0]));
        assert!(f.allows(Mode::Relaxed, &[1, 1]));
        assert!(f.allows(Mode::Relaxed, &[0, 0]));
        assert!(f.allows(Mode::Relaxed, &[0, 1]), "data may be early");
    }

    #[test]
    fn lb_distinguishes_models() {
        let t = load_buffering();
        assert!(!t.allows(Mode::Sc, &[1, 1]));
        assert!(t.allows(Mode::Relaxed, &[1, 1]));
        assert!(!load_buffering_fenced().allows(Mode::Relaxed, &[1, 1]));
    }

    #[test]
    fn same_address_loads_reorder_on_relaxed() {
        let t = coherence_read_read();
        assert!(!t.allows(Mode::Sc, &[1, 0]));
        assert!(
            t.allows(Mode::Relaxed, &[1, 0]),
            "relaxation 4: same-address load-load reordering"
        );
        assert!(!coherence_read_read_fenced().allows(Mode::Relaxed, &[1, 0]));
    }

    #[test]
    fn fig2_iriw_is_forbidden_on_relaxed() {
        // The paper's Fig. 2: Relaxed globally orders stores, so the two
        // reader threads cannot disagree on the store order.
        let t = iriw_fenced();
        assert!(!t.allows(Mode::Relaxed, &[1, 0, 1, 0]));
        assert!(!t.allows(Mode::Sc, &[1, 0, 1, 0]));
        // Without fences the loads reorder and the outcome is allowed.
        assert!(iriw_unfenced().allows(Mode::Relaxed, &[1, 0, 1, 0]));
    }

    #[test]
    fn forwarding_lets_threads_read_own_stores_early() {
        // Both threads see their own store but not the other's: the
        // classic TSO outcome, forbidden under SC.
        let t = store_forwarding();
        assert!(t.allows(Mode::Relaxed, &[1, 0, 1, 0]));
        assert!(!t.allows(Mode::Sc, &[1, 0, 1, 0]));
    }

    #[test]
    fn relaxed_is_weaker_than_sc_everywhere() {
        // Every SC outcome is also a Relaxed outcome (Relaxed is weaker).
        for t in all() {
            let sc = t.allowed_outcomes(Mode::Sc);
            let rx = t.allowed_outcomes(Mode::Relaxed);
            assert!(
                sc.is_subset(&rx),
                "{}: SC ⊄ Relaxed — SC={sc:?} RX={rx:?}",
                t.name
            );
        }
    }

    #[test]
    fn half_fenced_sb_is_still_broken() {
        let t = store_buffering_half_fenced();
        assert!(t.allows(Mode::Tso, &[0, 0]), "one fence does not repair SB");
        assert!(t.allows(Mode::Relaxed, &[0, 0]));
        assert!(!t.allows(Mode::Sc, &[0, 0]));
    }

    #[test]
    fn tso_relaxes_exactly_store_load() {
        // SB is the TSO-defining behaviour...
        assert!(store_buffering().allows(Mode::Tso, &[0, 0]));
        // ...and forwarding lets each thread see its own store early.
        assert!(store_forwarding().allows(Mode::Tso, &[1, 0, 1, 0]));
        // Everything else stays ordered on TSO.
        assert!(!message_passing().allows(Mode::Tso, &[1, 0]));
        assert!(!load_buffering().allows(Mode::Tso, &[1, 1]));
        assert!(!coherence_read_read().allows(Mode::Tso, &[1, 0]));
        assert!(!iriw_unfenced().allows(Mode::Tso, &[1, 0, 1, 0]));
        // A store-load fence removes the one TSO relaxation.
        assert!(!store_buffering_fenced().allows(Mode::Tso, &[0, 0]));
    }

    #[test]
    fn pso_additionally_relaxes_store_store() {
        // PSO = TSO + store-store reordering: MP breaks...
        assert!(message_passing().allows(Mode::Pso, &[1, 0]));
        assert!(store_buffering().allows(Mode::Pso, &[0, 0]));
        // ...but loads are still in order.
        assert!(!load_buffering().allows(Mode::Pso, &[1, 1]));
        assert!(!coherence_read_read().allows(Mode::Pso, &[1, 0]));
        assert!(!iriw_unfenced().allows(Mode::Pso, &[1, 0, 1, 0]));
        // A single writer-side store-store fence repairs MP on PSO
        // (the paper's §4.2 observation that load-load fences are
        // automatic on some architectures), but not on Relaxed, where
        // the reader's loads also need a fence.
        let ss = message_passing_ss_fence_only();
        assert!(!ss.allows(Mode::Pso, &[1, 0]));
        assert!(ss.allows(Mode::Relaxed, &[1, 0]));
    }

    #[test]
    fn fig2_iriw_is_forbidden_on_all_our_models() {
        // Relaxed globally orders stores, and TSO/PSO are stronger, so
        // no model in this reproduction admits the Fig. 2 trace.
        for mode in Mode::hardware() {
            assert!(
                !iriw_fenced().allows(mode, &[1, 0, 1, 0]),
                "{} must forbid Fig. 2",
                mode.name()
            );
        }
    }

    #[test]
    fn partially_fenced_iriw_is_only_allowed_on_relaxed() {
        // One fenced reader is not a repair: the other reader's loads
        // still reorder on Relaxed.
        let t = iriw_one_fence();
        assert!(t.allows(Mode::Relaxed, &[1, 0, 1, 0]));
        // TSO and PSO keep loads ordered, and the total store order
        // then forbids the readers' disagreement.
        assert!(!t.allows(Mode::Tso, &[1, 0, 1, 0]));
        assert!(!t.allows(Mode::Pso, &[1, 0, 1, 0]));
        assert!(!t.allows(Mode::Sc, &[1, 0, 1, 0]));
    }

    #[test]
    fn r_shape_traces_write_write_causality() {
        // The observer registers pin y=1 <M y=2; with all edges intact
        // the chain x=1 <po y=1 <M y=2 <po r0 forces r0 = 1.
        let t = write_write_causality();
        assert!(!t.allows(Mode::Sc, &[0, 1, 2]));
        // TSO escapes by buffering T1's y=2 past its own x-load.
        assert!(t.allows(Mode::Tso, &[0, 1, 2]));
        assert!(t.allows(Mode::Relaxed, &[0, 1, 2]));
        // The SC-consistent outcome is allowed everywhere.
        assert!(t.allows(Mode::Sc, &[1, 1, 2]));

        // A store-load fence closes the TSO escape; PSO reorders T0's
        // two stores instead, breaking the chain's first link.
        let sl = write_write_causality_sl_fence();
        assert!(!sl.allows(Mode::Tso, &[0, 1, 2]));
        assert!(sl.allows(Mode::Pso, &[0, 1, 2]));
        assert!(sl.allows(Mode::Relaxed, &[0, 1, 2]));

        // Fencing both links forbids the outcome on every model.
        let full = write_write_causality_fenced();
        for mode in Mode::hardware() {
            assert!(!full.allows(mode, &[0, 1, 2]), "{}", mode.name());
        }
    }

    #[test]
    fn matrix_covers_all_five_builtins() {
        // `allowed_on` extends each row to the full Mode::all() chain:
        // Seriality behaves as SC on litmus programs (no operation
        // structure to interleave), and every row must agree with the
        // oracle under all five models.
        for row in matrix() {
            for mode in Mode::all() {
                assert_eq!(
                    row.test.allows(mode, &row.outcome),
                    row.allowed_on(mode),
                    "{} {:?} on {}",
                    row.test.name,
                    row.outcome,
                    mode.name()
                );
            }
        }
    }

    #[test]
    fn expected_outcome_matrix_holds() {
        for row in matrix() {
            for (mode, &expected) in Mode::hardware().iter().zip(&row.allowed) {
                assert_eq!(
                    row.test.allows(*mode, &row.outcome),
                    expected,
                    "{} {:?} on {}",
                    row.test.name,
                    row.outcome,
                    mode.name()
                );
            }
        }
    }

    #[test]
    fn each_hardware_model_is_strictly_weaker_than_the_previous() {
        // §2.3.3: SC ⊂ TSO ⊂ PSO ⊂ Relaxed, strictly — for every
        // adjacent pair some matrix row is forbidden on the stronger
        // model and allowed on the weaker one.
        let rows = matrix();
        for i in 0..3 {
            let witness = rows
                .iter()
                .find(|r| !r.allowed[i] && r.allowed[i + 1])
                .unwrap_or_else(|| {
                    panic!(
                        "no litmus test separates {} from {}",
                        Mode::hardware()[i].name(),
                        Mode::hardware()[i + 1].name()
                    )
                });
            assert!(!witness.test.allows(Mode::hardware()[i], &witness.outcome));
            assert!(witness
                .test
                .allows(Mode::hardware()[i + 1], &witness.outcome));
        }
    }

    #[test]
    fn wrc_needs_full_relaxation() {
        let t = write_read_causality();
        assert!(!t.allows(Mode::Sc, &[1, 1, 0]));
        assert!(
            !t.allows(Mode::Tso, &[1, 1, 0]),
            "TSO keeps R→W and R→R order"
        );
        assert!(!t.allows(Mode::Pso, &[1, 1, 0]), "PSO keeps load order");
        assert!(t.allows(Mode::Relaxed, &[1, 1, 0]));
        // Causality chains that stay intact: all-ones is SC-reachable.
        assert!(t.allows(Mode::Sc, &[1, 1, 1]));
    }

    #[test]
    fn model_lattice_on_catalog() {
        // Serial ⊆ SC ⊆ TSO ⊆ PSO ⊆ Relaxed on every catalog entry.
        let modes = Mode::all();
        for pair in modes.windows(2) {
            assert!(pair[1].at_most_as_strong_as(pair[0]) || pair[0] == Mode::Serial);
            for t in all() {
                let stronger = t.allowed_outcomes(pair[0]);
                let weaker = t.allowed_outcomes(pair[1]);
                assert!(
                    stronger.is_subset(&weaker),
                    "{}: {} ⊄ {}",
                    t.name,
                    pair[0].name(),
                    pair[1].name()
                );
            }
        }
    }
}
