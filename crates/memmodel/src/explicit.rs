//! Explicit-state checking of the memory model axioms.
//!
//! This module brute-forces the existential quantifier in the axioms of
//! §2.3.2 — "there exists a total memory order `<M` such that ..." — by
//! enumerating all linearizations of the per-thread access sequences that
//! respect the required program-order edges. It is exponential and only
//! usable for litmus-sized programs, which is exactly its purpose: it is
//! the *oracle* against which the SAT encoding is validated, and the
//! reference for the Fig. 2 experiment.

use std::collections::{BTreeSet, HashMap};

use cf_lsl::{FenceKind, MemOrder, Value};

use crate::rules::{c11_fence_orders, fence_orders, AccessKind, Mode};

/// One item in a thread of a concrete trace.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceItem {
    /// A memory access with its annotated execution value.
    Access {
        /// Load or store.
        kind: AccessKind,
        /// Absolute location path.
        addr: Vec<u32>,
        /// The value loaded or stored.
        value: Value,
        /// Atomic-block group (scoped to the thread), if any.
        group: Option<u32>,
        /// C11-style ordering annotation (`Plain` for classic accesses).
        ord: MemOrder,
    },
    /// A classic two-sided memory ordering fence.
    Fence(FenceKind),
    /// A C11-style ordering fence.
    CFence(MemOrder),
}

/// A complete annotated execution trace `e = (w1, ..., wn)` (§2.3.1).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct ConcreteTrace {
    /// Per-thread instruction sequences.
    pub threads: Vec<Vec<TraceItem>>,
    /// Initial memory values `i(a)`; locations absent here start
    /// undefined.
    pub init: HashMap<Vec<u32>, Value>,
}

#[derive(Clone, Debug)]
struct Access {
    thread: usize,
    item_index: usize,
    kind: AccessKind,
    addr: Vec<u32>,
    value: Value,
    group: Option<(usize, u32)>,
}

impl ConcreteTrace {
    fn accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for (t, items) in self.threads.iter().enumerate() {
            for (i, item) in items.iter().enumerate() {
                if let TraceItem::Access {
                    kind,
                    addr,
                    value,
                    group,
                    ..
                } = item
                {
                    out.push(Access {
                        thread: t,
                        item_index: i,
                        kind: *kind,
                        addr: addr.clone(),
                        value: value.clone(),
                        group: group.map(|g| (t, g)),
                    });
                }
            }
        }
        out
    }

    /// Required `x <M y` edges between access indices (into the vector
    /// returned by `accesses`).
    fn required_edges(&self, accesses: &[Access], mode: Mode) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, x) in accesses.iter().enumerate() {
            for (j, y) in accesses.iter().enumerate() {
                if x.thread != y.thread || x.item_index >= y.item_index {
                    continue;
                }
                let same_addr = x.addr == y.addr;
                let mut required = mode.po_edge_required(x.kind, y.kind, same_addr);
                // Fences between x and y.
                if !required {
                    for item in &self.threads[x.thread][x.item_index + 1..y.item_index] {
                        let orders = match item {
                            TraceItem::Fence(k) => fence_orders(*k, x.kind, y.kind),
                            TraceItem::CFence(o) => c11_fence_orders(*o, x.kind, y.kind),
                            TraceItem::Access { .. } => false,
                        };
                        if orders {
                            required = true;
                            break;
                        }
                    }
                }
                // Atomic blocks execute in program order internally.
                if !required && x.group.is_some() && x.group == y.group {
                    required = true;
                }
                if required {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    /// Does some total memory order satisfy the axioms of `mode` for this
    /// annotated trace?
    ///
    /// Checks: the required ordering edges (axiom 1 plus fences), atomic
    /// block contiguity, and the value axioms 2–3 against the annotated
    /// load values.
    ///
    /// # Panics
    ///
    /// Panics if the trace has more than 12 accesses (the brute-force
    /// search is factorial; the SAT path handles bigger programs).
    pub fn allowed(&self, mode: Mode) -> bool {
        let accesses = self.accesses();
        assert!(
            accesses.len() <= 12,
            "explicit-state check limited to 12 accesses"
        );
        let edges = self.required_edges(&accesses, mode);
        let mut order = Vec::with_capacity(accesses.len());
        let mut used = vec![false; accesses.len()];
        self.search(&accesses, &edges, mode, &mut order, &mut used)
    }

    fn search(
        &self,
        accesses: &[Access],
        edges: &[(usize, usize)],
        mode: Mode,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
    ) -> bool {
        if order.len() == accesses.len() {
            return self.check_values(accesses, order, mode);
        }
        'next: for c in 0..accesses.len() {
            if used[c] {
                continue;
            }
            // All required predecessors placed?
            for &(a, b) in edges {
                if b == c && !used[a] {
                    continue 'next;
                }
            }
            // Atomic group contiguity: if the group of `c` is already
            // open (some members placed, some not), `c` must belong to it;
            // conversely if `c` opens a group it is fine.
            if let Some(last) = order.last() {
                let open_group = accesses[*last].group.filter(|g| {
                    accesses
                        .iter()
                        .enumerate()
                        .any(|(i, a)| !used[i] && a.group == Some(*g))
                });
                if let Some(g) = open_group {
                    if accesses[c].group != Some(g) {
                        continue 'next;
                    }
                }
            }
            used[c] = true;
            order.push(c);
            if self.search(accesses, edges, mode, order, used) {
                used[c] = false;
                order.pop();
                return true;
            }
            used[c] = false;
            order.pop();
        }
        false
    }

    /// Value axioms 2–3 for a candidate total order.
    fn check_values(&self, accesses: &[Access], order: &[usize], mode: Mode) -> bool {
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &a)| (a, p)).collect();
        for (l_idx, l) in accesses.iter().enumerate() {
            if l.kind != AccessKind::Load {
                continue;
            }
            // Visible stores S(l).
            let mut max_store: Option<usize> = None;
            for (s_idx, s) in accesses.iter().enumerate() {
                if s.kind != AccessKind::Store || s.addr != l.addr {
                    continue;
                }
                let before_m = pos[&s_idx] < pos[&l_idx];
                let forwarded =
                    mode.allows_forwarding() && s.thread == l.thread && s.item_index < l.item_index;
                if before_m || forwarded {
                    max_store = Some(match max_store {
                        None => s_idx,
                        Some(m) if pos[&s_idx] > pos[&m] => s_idx,
                        Some(m) => m,
                    });
                }
            }
            let expected = match max_store {
                Some(s) => accesses[s].value.clone(),
                None => self.init.get(&l.addr).cloned().unwrap_or(Value::Undefined),
            };
            if l.value != expected {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------- litmus

/// One instruction of a litmus thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LitmusOp {
    /// Store a constant.
    Store {
        /// Location (small integer).
        addr: u32,
        /// Stored value.
        value: i64,
        /// C11-style ordering annotation (`Plain` for classic tests).
        ord: MemOrder,
    },
    /// Load into an observation register.
    Load {
        /// Location.
        addr: u32,
        /// Output register index.
        reg: usize,
        /// C11-style ordering annotation (`Plain` for classic tests).
        ord: MemOrder,
    },
    /// A classic two-sided fence.
    Fence(FenceKind),
    /// A C11-style ordering fence.
    CFence(MemOrder),
}

/// A litmus test: straight-line threads over integer locations
/// (initially 0), observing loads into registers.
#[derive(Clone, PartialEq, Debug)]
pub struct Litmus {
    /// Display name.
    pub name: &'static str,
    /// The threads.
    pub threads: Vec<Vec<LitmusOp>>,
    /// Number of observation registers.
    pub num_regs: usize,
}

impl Litmus {
    /// Enumerates all final register outcomes allowed by `mode`
    /// (`Mode::Serial` is treated as SC — litmus programs have no
    /// operation structure).
    pub fn allowed_outcomes(&self, mode: Mode) -> BTreeSet<Vec<i64>> {
        #[derive(Clone)]
        struct A {
            thread: usize,
            item_index: usize,
            kind: AccessKind,
            addr: u32,
            value: i64, // store value; loads filled per order
            reg: Option<usize>,
        }
        let mut accesses = Vec::new();
        for (t, ops) in self.threads.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    LitmusOp::Store { addr, value, .. } => accesses.push(A {
                        thread: t,
                        item_index: i,
                        kind: AccessKind::Store,
                        addr,
                        value,
                        reg: None,
                    }),
                    LitmusOp::Load { addr, reg, .. } => accesses.push(A {
                        thread: t,
                        item_index: i,
                        kind: AccessKind::Load,
                        addr,
                        value: 0,
                        reg: Some(reg),
                    }),
                    LitmusOp::Fence(_) | LitmusOp::CFence(_) => {}
                }
            }
        }
        assert!(
            accesses.len() <= 10,
            "litmus enumeration limited to 10 accesses"
        );

        // Required edges.
        let mut edges = Vec::new();
        for (i, x) in accesses.iter().enumerate() {
            for (j, y) in accesses.iter().enumerate() {
                if x.thread != y.thread || x.item_index >= y.item_index {
                    continue;
                }
                let mut required = mode.po_edge_required(x.kind, y.kind, x.addr == y.addr);
                if !required {
                    for op in &self.threads[x.thread][x.item_index + 1..y.item_index] {
                        let orders = match op {
                            LitmusOp::Fence(k) => fence_orders(*k, x.kind, y.kind),
                            LitmusOp::CFence(o) => c11_fence_orders(*o, x.kind, y.kind),
                            _ => false,
                        };
                        if orders {
                            required = true;
                            break;
                        }
                    }
                }
                if required {
                    edges.push((i, j));
                }
            }
        }

        let mut outcomes = BTreeSet::new();
        let mut order: Vec<usize> = Vec::with_capacity(accesses.len());
        let mut used = vec![false; accesses.len()];

        fn rec(
            accesses: &[A],
            edges: &[(usize, usize)],
            mode: Mode,
            num_regs: usize,
            order: &mut Vec<usize>,
            used: &mut Vec<bool>,
            outcomes: &mut BTreeSet<Vec<i64>>,
        ) {
            if order.len() == accesses.len() {
                // Derive load values from the order.
                let pos: HashMap<usize, usize> =
                    order.iter().enumerate().map(|(p, &a)| (a, p)).collect();
                let mut regs = vec![0i64; num_regs];
                for (l_idx, l) in accesses.iter().enumerate() {
                    let Some(r) = l.reg else { continue };
                    let mut best: Option<usize> = None;
                    for (s_idx, s) in accesses.iter().enumerate() {
                        if s.kind != AccessKind::Store || s.addr != l.addr {
                            continue;
                        }
                        let visible = pos[&s_idx] < pos[&l_idx]
                            || (mode.allows_forwarding()
                                && s.thread == l.thread
                                && s.item_index < l.item_index);
                        if visible {
                            best = Some(match best {
                                None => s_idx,
                                Some(b) if pos[&s_idx] > pos[&b] => s_idx,
                                Some(b) => b,
                            });
                        }
                    }
                    regs[r] = best.map_or(0, |s| accesses[s].value);
                }
                outcomes.insert(regs);
                return;
            }
            'next: for c in 0..accesses.len() {
                if used[c] {
                    continue;
                }
                for &(a, b) in edges {
                    if b == c && !used[a] {
                        continue 'next;
                    }
                }
                used[c] = true;
                order.push(c);
                rec(accesses, edges, mode, num_regs, order, used, outcomes);
                used[c] = false;
                order.pop();
            }
        }
        rec(
            &accesses,
            &edges,
            mode,
            self.num_regs,
            &mut order,
            &mut used,
            &mut outcomes,
        );
        outcomes
    }

    /// Is the given register outcome possible under `mode`?
    pub fn allows(&self, mode: Mode, outcome: &[i64]) -> bool {
        self.allowed_outcomes(mode).contains(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_forwarding() {
        // x = 1; r0 = x  — r0 must be 1 under every model.
        let t = Litmus {
            name: "sf",
            threads: vec![vec![
                LitmusOp::Store {
                    addr: 0,
                    value: 1,
                    ord: MemOrder::Plain,
                },
                LitmusOp::Load {
                    addr: 0,
                    reg: 0,
                    ord: MemOrder::Plain,
                },
            ]],
            num_regs: 1,
        };
        for mode in [Mode::Sc, Mode::Relaxed] {
            let out = t.allowed_outcomes(mode);
            assert_eq!(out, BTreeSet::from([vec![1]]), "{mode:?}");
        }
    }

    #[test]
    fn trace_check_respects_fences() {
        use TraceItem::*;
        // MP with both fences: stale data read must be disallowed on
        // Relaxed.
        let mk = |data_read: i64| ConcreteTrace {
            threads: vec![
                vec![
                    Access {
                        kind: AccessKind::Store,
                        addr: vec![0],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    Fence(FenceKind::StoreStore),
                    Access {
                        kind: AccessKind::Store,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
                vec![
                    Access {
                        kind: AccessKind::Load,
                        addr: vec![1],
                        value: Value::Int(1),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                    Fence(FenceKind::LoadLoad),
                    Access {
                        kind: AccessKind::Load,
                        addr: vec![0],
                        value: Value::Int(data_read),
                        group: None,
                        ord: MemOrder::Plain,
                    },
                ],
            ],
            init: HashMap::from([(vec![0], Value::Int(0)), (vec![1], Value::Int(0))]),
        };
        assert!(mk(1).allowed(Mode::Relaxed));
        assert!(
            !mk(0).allowed(Mode::Relaxed),
            "fenced MP forbids stale read"
        );
    }

    #[test]
    fn atomic_groups_are_contiguous() {
        use TraceItem::*;
        // Two threads perform atomic read-modify-write on the same cell;
        // both reading 0 is impossible because the groups cannot
        // interleave.
        let mk = |r1: i64, r2: i64| ConcreteTrace {
            threads: vec![
                vec![
                    Access {
                        kind: AccessKind::Load,
                        addr: vec![0],
                        value: Value::Int(r1),
                        group: Some(0),
                        ord: MemOrder::Plain,
                    },
                    Access {
                        kind: AccessKind::Store,
                        addr: vec![0],
                        value: Value::Int(1),
                        group: Some(0),
                        ord: MemOrder::Plain,
                    },
                ],
                vec![
                    Access {
                        kind: AccessKind::Load,
                        addr: vec![0],
                        value: Value::Int(r2),
                        group: Some(0),
                        ord: MemOrder::Plain,
                    },
                    Access {
                        kind: AccessKind::Store,
                        addr: vec![0],
                        value: Value::Int(1),
                        group: Some(0),
                        ord: MemOrder::Plain,
                    },
                ],
            ],
            init: HashMap::from([(vec![0], Value::Int(0))]),
        };
        assert!(mk(0, 1).allowed(Mode::Sc));
        assert!(mk(1, 0).allowed(Mode::Sc));
        assert!(!mk(0, 0).allowed(Mode::Sc), "atomicity violated");
        assert!(
            !mk(0, 0).allowed(Mode::Relaxed),
            "atomicity holds on Relaxed too"
        );
    }
}
