//! cf-trace — structured tracing, metrics export, and solver profiling
//! for the CheckFence engine stack.
//!
//! The engine, sessions, solver, mutation matrix, and corpus runner all
//! emit *events* into one process-global collector. Tracing is off by
//! default and **zero-cost when disabled**: every emission site guards
//! on one relaxed atomic load and builds its fields inside a closure
//! that is never called while tracing is off.
//!
//! # Determinism model
//!
//! CheckFence's report tables are bit-identical at any `--jobs` level,
//! and the trace keeps that discipline. Every event carries a canonical
//! coordinate `(batch, item, step)`:
//!
//! * `batch` — a sequence number advanced only by coordinators
//!   ([`next_batch`]), e.g. once per `Engine::run_batch` call;
//! * `item` — the lane within the batch (0 is the coordinator's own
//!   lane, `i + 1` is the batch's `i`-th query);
//! * `step` — a per-lane counter advanced only by deterministic
//!   emissions in that lane.
//!
//! [`take`] sorts events by that coordinate, so the *logical* trace
//! content is independent of scheduling. Two escape hatches carry the
//! nondeterministic remainder:
//!
//! * wall-clock durations live in fields whose names end in `_us`
//!   (microseconds) and are removed by [`strip`];
//! * scheduling events (session spawns, shard layout) are emitted with
//!   [`emit_nd`], rendered with an `"nd":1` marker, and dropped as
//!   whole lines by [`strip`].
//!
//! After stripping, a JSONL trace of a corpus sweep is byte-identical
//! at `--jobs 1` and `--jobs 4` (asserted in `tests/trace.rs`).
//!
//! # Sinks
//!
//! * [`render_jsonl`] — one JSON object per line, schema-stamped;
//! * [`render_prom`] — a Prometheus-style text metrics snapshot;
//! * [`profile`] — an in-process aggregator producing the per-class
//!   cost table behind `checkfence --profile`.
//!
//! ```
//! cf_trace::enable();
//! {
//!     let b = cf_trace::next_batch();
//!     let _scope = cf_trace::scope(b, 1, "demo query");
//!     cf_trace::emit("query_done", || {
//!         vec![("outcome", cf_trace::s("pass")), ("ticks", cf_trace::u(7))]
//!     });
//! }
//! let trace = cf_trace::render_jsonl(&cf_trace::take());
//! cf_trace::disable();
//! assert!(trace.contains("\"k\":\"query_done\""));
//! assert_eq!(cf_trace::strip(&trace), trace); // nothing nd to strip here
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema version stamped into every machine-readable artifact this
/// crate renders (JSONL traces, metrics snapshots) and shared with the
/// CLI's `--stats-json` document and the `BENCH_*.json` writers.
///
/// Version 2 added the static critical-cycle analysis vocabulary: the
/// `cycle_analysis` and `triage` trace events, the
/// `statically_discharged` per-query stats field, and the
/// pruned-candidate counters in the inference artifacts.
///
/// Version 3 added verdict provenance: the `provenance` trace event,
/// the `discharged` query class in the `query_done` stream (so the
/// `--profile` ledger closes at 100% under static triage), the
/// `checkfence_queries_by_class` and per-reason inconclusive metrics,
/// and the `cores_extracted`/`core_size` ledger in the metrics,
/// profile, `--stats-json` and `BENCH_*.json` artifacts.
pub const SCHEMA_VERSION: u32 = 3;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Field {
    /// An unsigned counter (ticks, conflicts, byte counts, …).
    U64(u64),
    /// A short string (outcome, model name, reason, …).
    Str(String),
}

/// Shorthand for a numeric [`Field`].
pub fn u(v: u64) -> Field {
    Field::U64(v)
}

/// Shorthand for a string [`Field`].
pub fn s(v: impl Into<String>) -> Field {
    Field::Str(v.into())
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event kind, e.g. `"query_done"` or `"sat_solve"`.
    pub kind: &'static str,
    /// Coordinator batch sequence number (0 before any batch).
    pub batch: u64,
    /// Lane within the batch: 0 for the coordinator, `i + 1` for the
    /// batch's `i`-th item.
    pub item: u64,
    /// Deterministic step within the lane.
    pub step: u64,
    /// Sub-step for nondeterministic events (0 for deterministic ones).
    pub nd_step: u64,
    /// Scope label (empty in the coordinator lane).
    pub label: String,
    /// True for scheduling events that may differ across `--jobs`
    /// levels; [`strip`] removes these lines wholesale.
    pub nd: bool,
    /// Payload fields, in emission order.
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    /// Looks up a numeric field by name.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Field::U64(n) if *k == name => Some(*n),
            _ => None,
        })
    }

    /// Looks up a string field by name.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            Field::Str(t) if *k == name => Some(t.as_str()),
            _ => None,
        })
    }

    fn sort_key(&self) -> (u64, u64, u64, bool, u64) {
        (self.batch, self.item, self.step, self.nd, self.nd_step)
    }
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static BATCH: AtomicU64 = AtomicU64::new(0);
static COORD_STEP: AtomicU64 = AtomicU64::new(0);
static COORD_ND: AtomicU64 = AtomicU64::new(0);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct ScopeState {
    batch: u64,
    item: u64,
    label: String,
    step: u64,
    nd_step: u64,
}

thread_local! {
    static SCOPE: RefCell<Vec<ScopeState>> = const { RefCell::new(Vec::new()) };
}

/// Turns the collector on, discarding any previously recorded events
/// and resetting the batch/step counters, so that consecutive traced
/// runs in one process are independent and repeatable.
pub fn enable() {
    let mut events = EVENTS.lock().unwrap_or_else(|p| p.into_inner());
    events.clear();
    BATCH.store(0, Ordering::SeqCst);
    COORD_STEP.store(0, Ordering::SeqCst);
    COORD_ND.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the collector off. Recorded events stay available to [`take`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is currently enabled (one relaxed atomic load — this
/// is the fast path every instrumentation site guards on).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch. Wall clock is a
/// nondeterministic side channel: always store it in a field whose name
/// ends in `_us` so [`strip`] can remove it.
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Advances the batch sequence number. Call this only from a
/// coordinator (one thread per batch); returns 0 while disabled so the
/// counter is untouched by untraced runs.
pub fn next_batch() -> u64 {
    if !enabled() {
        return 0;
    }
    BATCH.fetch_add(1, Ordering::SeqCst) + 1
}

/// RAII guard installing a `(batch, item, label)` lane on the current
/// thread; emissions while it lives are stamped with that coordinate
/// and a per-lane step counter. Dropping restores the previous lane.
#[must_use = "the scope ends when this guard drops"]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Enters an item lane (see [`ScopeGuard`]). A no-op while disabled.
pub fn scope(batch: u64, item: u64, label: impl Into<String>) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { active: false };
    }
    SCOPE.with(|s| {
        s.borrow_mut().push(ScopeState {
            batch,
            item,
            label: label.into(),
            step: 0,
            nd_step: 0,
        });
    });
    ScopeGuard { active: true }
}

fn record(kind: &'static str, nd: bool, fields: Vec<(&'static str, Field)>) {
    let event = SCOPE.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(top) = stack.last_mut() {
            let (step, nd_step) = if nd {
                top.nd_step += 1;
                (top.step, top.nd_step)
            } else {
                top.step += 1;
                (top.step, 0)
            };
            Event {
                kind,
                batch: top.batch,
                item: top.item,
                step,
                nd_step,
                label: top.label.clone(),
                nd,
                fields,
            }
        } else {
            // Coordinator lane: step advanced only by deterministic
            // emissions, which by contract happen on one thread.
            let batch = BATCH.load(Ordering::SeqCst);
            let (step, nd_step) = if nd {
                (
                    COORD_STEP.load(Ordering::SeqCst),
                    COORD_ND.fetch_add(1, Ordering::SeqCst) + 1,
                )
            } else {
                (COORD_STEP.fetch_add(1, Ordering::SeqCst) + 1, 0)
            };
            Event {
                kind,
                batch,
                item: 0,
                step,
                nd_step,
                label: String::new(),
                nd,
                fields,
            }
        }
    });
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).push(event);
}

/// Records a deterministic event. The field closure runs only while
/// tracing is enabled, so disabled emission sites cost one atomic load.
#[inline]
pub fn emit(kind: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Field)>) {
    if enabled() {
        record(kind, false, fields());
    }
}

/// Records a *nondeterministic* (scheduling) event — session spawns,
/// shard layout, anything whose presence or order depends on `--jobs`.
/// Rendered with an `"nd":1` marker and dropped by [`strip`].
#[inline]
pub fn emit_nd(kind: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Field)>) {
    if enabled() {
        record(kind, true, fields());
    }
}

/// Drains the collector, returning all recorded events in canonical
/// `(batch, item, step)` order — independent of thread scheduling.
pub fn take() -> Vec<Event> {
    let mut events = std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|p| p.into_inner()));
    events.sort_by_key(Event::sort_key);
    events
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

fn escape_json(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders events as JSON Lines: a `trace_meta` header stamping
/// [`SCHEMA_VERSION`], then one object per event with keys `k` (kind),
/// `b`/`i`/`s` (canonical coordinate), `q` (scope label, when present),
/// `nd`/`ns` (nondeterministic marker and sub-step), and the event's
/// own fields in emission order.
pub fn render_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"k\":\"trace_meta\",\"schema_version\":{SCHEMA_VERSION}}}"
    );
    for e in events {
        let _ = write!(
            out,
            "{{\"k\":\"{}\",\"b\":{},\"i\":{},\"s\":{}",
            e.kind, e.batch, e.item, e.step
        );
        if !e.label.is_empty() {
            out.push_str(",\"q\":\"");
            escape_json(&mut out, &e.label);
            out.push('"');
        }
        if e.nd {
            let _ = write!(out, ",\"nd\":1,\"ns\":{}", e.nd_step);
        }
        for (key, value) in &e.fields {
            match value {
                Field::U64(n) => {
                    let _ = write!(out, ",\"{key}\":{n}");
                }
                Field::Str(t) => {
                    let _ = write!(out, ",\"{key}\":\"");
                    escape_json(&mut out, t);
                    out.push('"');
                }
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Strips the nondeterministic side channels from a rendered JSONL
/// trace: drops every `"nd":1` line wholesale and removes every
/// `*_us` (wall-clock) field. What remains is the logical trace
/// content, byte-identical across `--jobs` levels.
pub fn strip(trace: &str) -> String {
    let mut out = String::new();
    for line in trace.lines() {
        if line.contains("\"nd\":1") {
            continue;
        }
        out.push_str(&strip_line(line));
        out.push('\n');
    }
    out
}

fn strip_line(line: &str) -> String {
    let mut s = line.to_string();
    while let Some(pos) = s.find("_us\":") {
        let Some(key_quote) = s[..pos].rfind('"') else {
            break;
        };
        let mut start = key_quote;
        let has_comma = s[..key_quote].ends_with(',');
        if has_comma {
            start -= 1;
        }
        let mut end = pos + "_us\":".len();
        let bytes = s.as_bytes();
        while end < s.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if !has_comma && end < s.len() && bytes[end] == b',' {
            end += 1;
        }
        if end <= start {
            break;
        }
        s.replace_range(start..end, "");
    }
    s
}

// ---------------------------------------------------------------------
// Metrics sink
// ---------------------------------------------------------------------

/// Renders a Prometheus-style text metrics snapshot aggregated over the
/// events: event counts per kind, solver counter totals (from
/// `sat_solve` events), query outcomes (from `query_done` events), and
/// wall-clock totals per kind. Label values are sorted, so the snapshot
/// is deterministic given the same events.
pub fn render_prom(events: &[Event]) -> String {
    let mut kinds: BTreeMap<&str, u64> = BTreeMap::new();
    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_class: BTreeMap<String, u64> = BTreeMap::new();
    let mut inconclusive: BTreeMap<String, u64> = BTreeMap::new();
    let mut wall: BTreeMap<&str, u64> = BTreeMap::new();
    let (mut solves, mut conflicts, mut propagations, mut ticks) = (0u64, 0u64, 0u64, 0u64);
    let (mut cores_extracted, mut core_size) = (0u64, 0u64);
    for e in events {
        *kinds.entry(e.kind).or_default() += 1;
        if e.kind == "sat_solve" {
            solves += 1;
            conflicts += e.get_u64("conflicts").unwrap_or(0);
            propagations += e.get_u64("propagations").unwrap_or(0);
            ticks += e.get_u64("ticks").unwrap_or(0);
        }
        if e.kind == "query_done" {
            if let Some(outcome) = e.get_str("outcome") {
                *outcomes.entry(outcome.to_string()).or_default() += 1;
                if outcome == "inconclusive" {
                    let reason = e.get_str("reason").unwrap_or("unknown");
                    *inconclusive.entry(reason.to_string()).or_default() += 1;
                }
            }
            if let Some(class) = e.get_str("class") {
                *by_class.entry(class.to_string()).or_default() += 1;
            }
        }
        if e.kind == "provenance" && e.get_str("kind") == Some("proof") {
            cores_extracted += 1;
            core_size += e.get_u64("core_size").unwrap_or(0);
        }
        for (key, value) in &e.fields {
            if let (true, Field::U64(n)) = (key.ends_with("_us"), value) {
                *wall.entry(e.kind).or_default() += n;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP checkfence_schema_version trace/metrics schema version"
    );
    let _ = writeln!(out, "# TYPE checkfence_schema_version gauge");
    let _ = writeln!(out, "checkfence_schema_version {SCHEMA_VERSION}");
    let _ = writeln!(
        out,
        "# HELP checkfence_events_total trace events recorded, by kind"
    );
    let _ = writeln!(out, "# TYPE checkfence_events_total counter");
    for (kind, n) in &kinds {
        let _ = writeln!(out, "checkfence_events_total{{kind=\"{kind}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "# HELP checkfence_solver_solves_total incremental SAT solve calls"
    );
    let _ = writeln!(out, "# TYPE checkfence_solver_solves_total counter");
    let _ = writeln!(out, "checkfence_solver_solves_total {solves}");
    let _ = writeln!(
        out,
        "# HELP checkfence_solver_conflicts_total solver conflicts"
    );
    let _ = writeln!(out, "# TYPE checkfence_solver_conflicts_total counter");
    let _ = writeln!(out, "checkfence_solver_conflicts_total {conflicts}");
    let _ = writeln!(
        out,
        "# HELP checkfence_solver_propagations_total solver propagations"
    );
    let _ = writeln!(out, "# TYPE checkfence_solver_propagations_total counter");
    let _ = writeln!(out, "checkfence_solver_propagations_total {propagations}");
    let _ = writeln!(out, "# HELP checkfence_solver_ticks_total deterministic solver ticks (propagations + conflicts)");
    let _ = writeln!(out, "# TYPE checkfence_solver_ticks_total counter");
    let _ = writeln!(out, "checkfence_solver_ticks_total {ticks}");
    let _ = writeln!(
        out,
        "# HELP checkfence_queries_total finished queries, by outcome"
    );
    let _ = writeln!(out, "# TYPE checkfence_queries_total counter");
    for (outcome, n) in &outcomes {
        let _ = writeln!(out, "checkfence_queries_total{{outcome=\"{outcome}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "# HELP checkfence_queries_by_class finished queries, by class (incl. `discharged` for statically triaged queries)"
    );
    let _ = writeln!(out, "# TYPE checkfence_queries_by_class counter");
    for (class, n) in &by_class {
        let _ = writeln!(out, "checkfence_queries_by_class{{class=\"{class}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "# HELP checkfence_queries_inconclusive_total inconclusive verdicts, by reason"
    );
    let _ = writeln!(out, "# TYPE checkfence_queries_inconclusive_total counter");
    for (reason, n) in &inconclusive {
        let _ = writeln!(
            out,
            "checkfence_queries_inconclusive_total{{reason=\"{reason}\"}} {n}"
        );
    }
    let _ = writeln!(
        out,
        "# HELP checkfence_cores_extracted_total assumption cores extracted for proof provenance"
    );
    let _ = writeln!(out, "# TYPE checkfence_cores_extracted_total counter");
    let _ = writeln!(out, "checkfence_cores_extracted_total {cores_extracted}");
    let _ = writeln!(
        out,
        "# HELP checkfence_core_size_total summed assumption-core literals across extracted cores"
    );
    let _ = writeln!(out, "# TYPE checkfence_core_size_total counter");
    let _ = writeln!(out, "checkfence_core_size_total {core_size}");
    let _ = writeln!(
        out,
        "# HELP checkfence_wall_microseconds_total wall clock spent, by event kind"
    );
    let _ = writeln!(out, "# TYPE checkfence_wall_microseconds_total counter");
    for (kind, us) in &wall {
        let _ = writeln!(
            out,
            "checkfence_wall_microseconds_total{{kind=\"{kind}\"}} {us}"
        );
    }
    out
}

// ---------------------------------------------------------------------
// Profile aggregator
// ---------------------------------------------------------------------

/// One row of the cost profile: a query class (mine, enumerate,
/// inclusion, commit) with its aggregated solver cost.
#[derive(Clone, Debug, Default)]
pub struct ProfileRow {
    /// Query class name.
    pub class: String,
    /// Finished queries of this class.
    pub queries: u64,
    /// Solver solve calls attributed to the class.
    pub solves: u64,
    /// Conflicts attributed to the class.
    pub conflicts: u64,
    /// Propagations attributed to the class.
    pub propagations: u64,
    /// Deterministic ticks (propagations + conflicts).
    pub ticks: u64,
    /// Retry-ladder attempts beyond the first.
    pub retries: u64,
    /// Wall clock spent in the class, microseconds.
    pub wall_us: u64,
}

/// Aggregated cost profile over a trace — the data model behind
/// `checkfence --profile`.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-class rows, sorted by descending ticks then class name.
    pub rows: Vec<ProfileRow>,
    /// Ground-truth solver ticks: the sum over every `sat_solve` hook
    /// event plus the encode-phase ticks reported by `encode` events
    /// (unit clauses propagate eagerly while the CNF is built, outside
    /// any solve call).
    pub total_ticks: u64,
    /// Ticks attributed to finished query spans (`query_done`).
    pub attributed_ticks: u64,
    /// Session encodes observed.
    pub encodes: u64,
    /// Solver ticks spent during encoding (eager unit propagation).
    pub encode_ticks: u64,
    /// Wall clock spent encoding, microseconds.
    pub encode_wall_us: u64,
    /// Assumption cores extracted for proof provenance (`provenance`
    /// events with kind `proof`).
    pub cores_extracted: u64,
    /// Summed core literals across the extracted cores.
    pub core_size: u64,
    /// How many of the extracted cores completed minimization.
    pub cores_minimized: u64,
}

impl Profile {
    /// Fraction of total solver ticks attributed to named query spans,
    /// in `[0, 1]`. Returns 1.0 when no ticks were observed at all.
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_ticks == 0 {
            1.0
        } else {
            self.attributed_ticks as f64 / self.total_ticks as f64
        }
    }

    /// Renders the profile as the `--profile` text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cost profile (schema {SCHEMA_VERSION}):");
        let w = self
            .rows
            .iter()
            .map(|r| r.class.len())
            .chain(["class".len(), "encode".len()])
            .max()
            .unwrap_or(8);
        let _ = writeln!(
            out,
            "  {:<w$} {:>7} {:>7} {:>10} {:>12} {:>10} {:>7} {:>10}",
            "class", "queries", "solves", "conflicts", "propagations", "ticks", "retries", "wall"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<w$} {:>7} {:>7} {:>10} {:>12} {:>10} {:>7} {:>8.1}ms",
                r.class,
                r.queries,
                r.solves,
                r.conflicts,
                r.propagations,
                r.ticks,
                r.retries,
                r.wall_us as f64 / 1e3,
            );
        }
        if self.encodes > 0 {
            let _ = writeln!(
                out,
                "  {:<w$} {:>7} {:>7} {:>10} {:>12} {:>10} {:>7} {:>8.1}ms",
                "encode",
                self.encodes,
                "-",
                "-",
                "-",
                self.encode_ticks,
                "-",
                self.encode_wall_us as f64 / 1e3,
            );
        }
        if self.cores_extracted > 0 {
            let _ = writeln!(
                out,
                "  cores: {} extracted, {} literals, {} minimized",
                self.cores_extracted, self.core_size, self.cores_minimized,
            );
        }
        let unattributed = self.total_ticks.saturating_sub(self.attributed_ticks);
        let _ = writeln!(
            out,
            "  attributed {} / {} solver ticks ({:.1}%); unattributed {} ({:.1}%)",
            self.attributed_ticks,
            self.total_ticks,
            self.attributed_fraction() * 100.0,
            unattributed,
            (1.0 - self.attributed_fraction()) * 100.0,
        );
        out
    }
}

/// Builds the per-query-class cost [`Profile`] from a trace: total
/// solver ticks come from `sat_solve` hook events, attribution from
/// `query_done` span events carrying their accumulated deltas, encode
/// cost from `encode` events.
pub fn profile(events: &[Event]) -> Profile {
    let mut classes: BTreeMap<String, ProfileRow> = BTreeMap::new();
    let mut p = Profile::default();
    for e in events {
        match e.kind {
            "sat_solve" => p.total_ticks += e.get_u64("ticks").unwrap_or(0),
            "encode" => {
                p.encodes += 1;
                let ticks = e.get_u64("ticks").unwrap_or(0);
                p.encode_ticks += ticks;
                p.total_ticks += ticks;
                p.encode_wall_us += e.get_u64("encode_us").unwrap_or(0);
            }
            "query_done" => {
                let class = e.get_str("class").unwrap_or("unknown").to_string();
                let row = classes.entry(class.clone()).or_insert_with(|| ProfileRow {
                    class,
                    ..ProfileRow::default()
                });
                row.queries += 1;
                row.solves += e.get_u64("solves").unwrap_or(0);
                row.conflicts += e.get_u64("conflicts").unwrap_or(0);
                row.propagations += e.get_u64("propagations").unwrap_or(0);
                let ticks = e.get_u64("ticks").unwrap_or(0);
                row.ticks += ticks;
                p.attributed_ticks += ticks;
                row.retries += e.get_u64("retries").unwrap_or(0);
                row.wall_us += e.get_u64("wall_us").unwrap_or(0);
            }
            "provenance" if e.get_str("kind") == Some("proof") => {
                p.cores_extracted += 1;
                p.core_size += e.get_u64("core_size").unwrap_or(0);
                p.cores_minimized += e.get_u64("minimized").unwrap_or(0);
            }
            _ => {}
        }
    }
    let mut rows: Vec<ProfileRow> = classes.into_values().collect();
    rows.sort_by(|a, b| b.ticks.cmp(&a.ticks).then_with(|| a.class.cmp(&b.class)));
    p.rows = rows;
    p
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; serialize the tests that use it.
    static GATE: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_emission_records_nothing_and_never_builds_fields() {
        let _g = locked();
        enable();
        disable();
        emit("never", || {
            panic!("fields must not be built while disabled")
        });
        assert!(take().is_empty());
    }

    #[test]
    fn canonical_order_is_independent_of_emission_order() {
        let _g = locked();
        enable();
        let b = next_batch();
        {
            let _s = scope(b, 2, "second");
            emit("later", Vec::new);
        }
        {
            let _s = scope(b, 1, "first");
            emit("earlier", Vec::new);
            emit_nd("sched", Vec::new);
            emit("earlier2", Vec::new);
        }
        let events = take();
        disable();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["earlier", "sched", "earlier2", "later"]);
        // nd events do not consume deterministic step numbers:
        assert_eq!(events[2].step, 2);
    }

    #[test]
    fn strip_removes_wall_clock_fields_and_nd_lines() {
        let _g = locked();
        enable();
        let b = next_batch();
        {
            let _s = scope(b, 1, "q");
            emit("span", || {
                vec![("ticks", u(5)), ("wall_us", u(1234)), ("n", u(2))]
            });
            emit_nd("session_spawn", || vec![("key", s("k"))]);
            emit("tail", || vec![("solve_us", u(9))]);
        }
        let trace = render_jsonl(&take());
        disable();
        let stripped = strip(&trace);
        assert!(stripped.contains("\"ticks\":5,\"n\":2"));
        assert!(!stripped.contains("_us"));
        assert!(!stripped.contains("session_spawn"));
        assert!(stripped.contains("\"schema_version\":3"));
        // Stripping is idempotent.
        assert_eq!(strip(&stripped), stripped);
    }

    #[test]
    fn profile_attributes_solver_ticks_to_query_classes() {
        let _g = locked();
        enable();
        let b = next_batch();
        {
            let _s = scope(b, 1, "q1");
            emit("sat_solve", || vec![("ticks", u(60))]);
            emit("query_done", || {
                vec![
                    ("class", s("inclusion")),
                    ("outcome", s("pass")),
                    ("ticks", u(60)),
                    ("solves", u(1)),
                ]
            });
        }
        emit("sat_solve", || vec![("ticks", u(40))]); // unattributed
        let events = take();
        disable();
        let p = profile(&events);
        assert_eq!(p.total_ticks, 100);
        assert_eq!(p.attributed_ticks, 60);
        assert!((p.attributed_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(p.rows[0].class, "inclusion");
        let table = p.render();
        assert!(table.contains("inclusion"));
        assert!(table.contains("unattributed 40"));
        let prom = render_prom(&events);
        assert!(prom.contains("checkfence_solver_ticks_total 100"));
        assert!(prom.contains("checkfence_queries_total{outcome=\"pass\"} 1"));
        assert!(prom.contains("checkfence_queries_by_class{class=\"inclusion\"} 1"));
    }

    #[test]
    fn discharged_queries_close_the_profile_ledger() {
        let _g = locked();
        enable();
        let b = next_batch();
        {
            let _s = scope(b, 1, "q1");
            emit("sat_solve", || vec![("ticks", u(50))]);
            emit("query_done", || {
                vec![
                    ("class", s("inclusion")),
                    ("outcome", s("pass")),
                    ("ticks", u(50)),
                ]
            });
        }
        {
            let _s = scope(b, 2, "q2");
            // A statically discharged query: no solver work at all, but
            // it must still appear in the ledger as its own class.
            emit("query_done", || {
                vec![
                    ("class", s("discharged")),
                    ("outcome", s("pass")),
                    ("ticks", u(0)),
                ]
            });
        }
        let events = take();
        disable();
        let p = profile(&events);
        assert!(
            (p.attributed_fraction() - 1.0).abs() < 1e-9,
            "the ledger closes at 100% even with discharged queries"
        );
        let discharged = p
            .rows
            .iter()
            .find(|r| r.class == "discharged")
            .expect("discharged row present");
        assert_eq!(discharged.queries, 1);
        assert_eq!(discharged.ticks, 0);
        let prom = render_prom(&events);
        assert!(prom.contains("checkfence_queries_by_class{class=\"discharged\"} 1"));
    }

    #[test]
    fn provenance_events_feed_the_core_ledger_and_inconclusive_reasons_are_counted() {
        let _g = locked();
        enable();
        let b = next_batch();
        {
            let _s = scope(b, 1, "q1");
            emit("provenance", || {
                vec![
                    ("kind", s("proof")),
                    ("core_size", u(4)),
                    ("minimized", u(1)),
                    ("uses", s("proof uses: fence put#0 (store-store)")),
                ]
            });
            emit("provenance", || {
                vec![
                    ("kind", s("witness")),
                    ("core_size", u(0)),
                    ("minimized", u(0)),
                ]
            });
            emit("query_done", || {
                vec![
                    ("class", s("inclusion")),
                    ("outcome", s("inconclusive")),
                    ("reason", s("budget")),
                    ("ticks", u(0)),
                ]
            });
        }
        let events = take();
        disable();
        let p = profile(&events);
        assert_eq!(p.cores_extracted, 1, "witnesses carry no core");
        assert_eq!(p.core_size, 4);
        assert_eq!(p.cores_minimized, 1);
        assert!(p
            .render()
            .contains("cores: 1 extracted, 4 literals, 1 minimized"));
        let prom = render_prom(&events);
        assert!(prom.contains("checkfence_cores_extracted_total 1"));
        assert!(prom.contains("checkfence_core_size_total 4"));
        assert!(prom.contains("checkfence_queries_inconclusive_total{reason=\"budget\"} 1"));
    }
}
