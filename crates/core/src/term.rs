//! Hash-consed symbolic terms.
//!
//! The symbolic executor produces a term DAG instead of textual SSA: every
//! load introduces a fresh [`VTerm::LoadResult`], every test input a fresh
//! [`VTerm::Arg`], every conditional branch a fresh boolean. This is the
//! register-SSA construction of paper §3.2.1 in DAG form.
//!
//! Construction performs constant folding, so fully concrete subprograms
//! (such as initialization code with fixed arguments) melt away into
//! constants before the CNF encoding ever sees them.

use std::collections::HashMap;

use cf_lsl::{PrimOp, Value};

/// Index of a value term in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VTermId(pub u32);

/// Index of a boolean term in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BTermId(pub u32);

/// Identifies a memory access event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EventId(pub u32);

impl EventId {
    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbolic LSL value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum VTerm {
    /// A concrete value.
    Const(Value),
    /// The value read by a load event (fresh unknown, constrained by the
    /// memory model axioms).
    LoadResult(EventId),
    /// A nondeterministic test argument, restricted to {0, 1} (Fig. 8:
    /// "chosen nondeterministically out of {0,1}").
    Arg(u32),
    /// A primitive operation over value terms.
    Prim(PrimOp, Vec<VTermId>),
    /// A guarded merge: `if c then a else b`.
    Mux(BTermId, VTermId, VTermId),
}

/// A symbolic boolean (guards, path conditions).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BTerm {
    /// Constant.
    Const(bool),
    /// A mutation-toggle literal ([`cf_lsl::Stmt::Toggle`]): true when
    /// the toggle site is active. Encoded as a dedicated SAT variable so
    /// a checking session selects mutants through assumptions, exactly
    /// like candidate-fence activation literals.
    Toggle(u32),
    /// C truthiness of a value term (undefined values are flagged as
    /// errors separately; their truthiness is arbitrary).
    Truthy(VTermId),
    /// The value term is `undefined`.
    IsUndef(VTermId),
    /// Negation.
    Not(BTermId),
    /// Conjunction.
    And(BTermId, BTermId),
    /// Disjunction.
    Or(BTermId, BTermId),
}

/// Arena of hash-consed terms.
#[derive(Default, Debug)]
pub struct TermArena {
    vterms: Vec<VTerm>,
    vhash: HashMap<VTerm, VTermId>,
    bterms: Vec<BTerm>,
    bhash: HashMap<BTerm, BTermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of value terms.
    pub fn num_vterms(&self) -> usize {
        self.vterms.len()
    }

    /// Number of boolean terms.
    pub fn num_bterms(&self) -> usize {
        self.bterms.len()
    }

    /// Interns a value term.
    pub fn vterm(&mut self, t: VTerm) -> VTermId {
        if let Some(&id) = self.vhash.get(&t) {
            return id;
        }
        let id = VTermId(self.vterms.len() as u32);
        self.vterms.push(t.clone());
        self.vhash.insert(t, id);
        id
    }

    /// Interns a boolean term.
    pub fn bterm(&mut self, t: BTerm) -> BTermId {
        if let Some(&id) = self.bhash.get(&t) {
            return id;
        }
        let id = BTermId(self.bterms.len() as u32);
        self.bterms.push(t.clone());
        self.bhash.insert(t, id);
        id
    }

    /// Looks up a value term.
    pub fn vt(&self, id: VTermId) -> &VTerm {
        &self.vterms[id.0 as usize]
    }

    /// Looks up a boolean term.
    pub fn bt(&self, id: BTermId) -> &BTerm {
        &self.bterms[id.0 as usize]
    }

    // ------------------------------------------------------- constructors

    /// A constant value term.
    pub fn const_val(&mut self, v: Value) -> VTermId {
        self.vterm(VTerm::Const(v))
    }

    /// The concrete value of a term, if it is constant.
    pub fn as_const(&self, id: VTermId) -> Option<&Value> {
        match self.vt(id) {
            VTerm::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The concrete truth of a boolean term, if constant.
    pub fn as_const_bool(&self, id: BTermId) -> Option<bool> {
        match self.bt(id) {
            BTerm::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// Constant `true`.
    pub fn btrue(&mut self) -> BTermId {
        self.bterm(BTerm::Const(true))
    }

    /// Constant `false`.
    pub fn bfalse(&mut self) -> BTermId {
        self.bterm(BTerm::Const(false))
    }

    /// The toggle literal of a mutation site (hash-consed: every
    /// unrolling of one site shares the term, hence the SAT variable).
    pub fn toggle(&mut self, site: u32) -> BTermId {
        self.bterm(BTerm::Toggle(site))
    }

    /// A primitive application with constant folding.
    pub fn prim(&mut self, op: PrimOp, args: Vec<VTermId>) -> VTermId {
        // Fold when every argument is constant and evaluation succeeds.
        let consts: Option<Vec<Value>> = args.iter().map(|&a| self.as_const(a).cloned()).collect();
        if let Some(vals) = consts {
            if let Some(v) = op.eval(&vals) {
                return self.const_val(v);
            }
            // Concrete type error: the result is the undefined value
            // (error detection happens at use sites).
            return self.const_val(Value::Undefined);
        }
        // Identity folds structurally.
        if op == PrimOp::Id {
            return args[0];
        }
        self.vterm(VTerm::Prim(op, args))
    }

    /// A guarded merge with folding.
    pub fn mux(&mut self, c: BTermId, a: VTermId, b: VTermId) -> VTermId {
        match self.as_const_bool(c) {
            Some(true) => a,
            Some(false) => b,
            None if a == b => a,
            None => self.vterm(VTerm::Mux(c, a, b)),
        }
    }

    /// Truthiness with folding.
    pub fn truthy(&mut self, v: VTermId) -> BTermId {
        if let Some(val) = self.as_const(v) {
            // Arbitrary choice for undefined (flagged as an error at the
            // use site): undefined counts as false.
            let b = val.truthy().unwrap_or(false);
            return self.bterm(BTerm::Const(b));
        }
        self.bterm(BTerm::Truthy(v))
    }

    /// `IsUndef` with folding.
    pub fn is_undef(&mut self, v: VTermId) -> BTermId {
        if let Some(val) = self.as_const(v) {
            let b = val.is_undefined();
            return self.bterm(BTerm::Const(b));
        }
        self.bterm(BTerm::IsUndef(v))
    }

    /// Negation with folding.
    pub fn not(&mut self, b: BTermId) -> BTermId {
        match self.bt(b) {
            BTerm::Const(v) => {
                let v = !*v;
                self.bterm(BTerm::Const(v))
            }
            BTerm::Not(inner) => *inner,
            _ => self.bterm(BTerm::Not(b)),
        }
    }

    /// Conjunction with folding.
    pub fn and(&mut self, a: BTermId, b: BTermId) -> BTermId {
        match (self.as_const_bool(a), self.as_const_bool(b)) {
            (Some(false), _) | (_, Some(false)) => self.bfalse(),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.bterm(BTerm::And(a, b))
            }
        }
    }

    /// Disjunction with folding.
    pub fn or(&mut self, a: BTermId, b: BTermId) -> BTermId {
        match (self.as_const_bool(a), self.as_const_bool(b)) {
            (Some(true), _) | (_, Some(true)) => self.btrue(),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.bterm(BTerm::Or(a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut a = TermArena::new();
        let x = a.const_val(Value::Int(1));
        let y = a.const_val(Value::Int(1));
        assert_eq!(x, y);
        assert_eq!(a.num_vterms(), 1);
    }

    #[test]
    fn prim_folds_constants() {
        let mut a = TermArena::new();
        let one = a.const_val(Value::Int(1));
        let two = a.const_val(Value::Int(2));
        let sum = a.prim(PrimOp::Add, vec![one, two]);
        assert_eq!(a.as_const(sum), Some(&Value::Int(3)));
    }

    #[test]
    fn prim_type_error_folds_to_undef() {
        let mut a = TermArena::new();
        let p = a.const_val(Value::ptr(vec![0]));
        let bad = a.prim(PrimOp::Lt, vec![p, p]);
        assert_eq!(a.as_const(bad), Some(&Value::Undefined));
    }

    #[test]
    fn bool_folding() {
        let mut a = TermArena::new();
        let t = a.btrue();
        let f = a.bfalse();
        let ev = a.vterm(VTerm::Arg(0));
        let x = a.truthy(ev);
        assert_eq!(a.and(t, x), x);
        assert_eq!(a.and(f, x), f);
        assert_eq!(a.or(t, x), t);
        assert_eq!(a.or(f, x), x);
        let nx = a.not(x);
        assert_eq!(a.not(nx), x, "double negation folds");
        assert_eq!(a.and(x, x), x);
    }

    #[test]
    fn and_is_commutative_in_the_arena() {
        let mut a = TermArena::new();
        let v0 = a.vterm(VTerm::Arg(0));
        let v1 = a.vterm(VTerm::Arg(1));
        let x = a.truthy(v0);
        let y = a.truthy(v1);
        assert_eq!(a.and(x, y), a.and(y, x));
        assert_eq!(a.or(x, y), a.or(y, x));
    }

    #[test]
    fn mux_folding() {
        let mut a = TermArena::new();
        let t = a.btrue();
        let x = a.vterm(VTerm::Arg(0));
        let y = a.vterm(VTerm::Arg(1));
        assert_eq!(a.mux(t, x, y), x);
        let ev = a.vterm(VTerm::Arg(2));
        let c = a.truthy(ev);
        assert_eq!(a.mux(c, x, x), x);
    }

    #[test]
    fn truthy_of_undef_is_false() {
        let mut a = TermArena::new();
        let u = a.const_val(Value::Undefined);
        let b = a.truthy(u);
        assert_eq!(a.as_const_bool(b), Some(false));
        let iu = a.is_undef(u);
        assert_eq!(a.as_const_bool(iu), Some(true));
    }
}
