//! # checkfence — checking consistency of concurrent data types on relaxed memory models
//!
//! A from-scratch reproduction of the CheckFence verifier (Burckhardt,
//! Alur, Martin; PLDI 2007). Given a concurrent data type implementation
//! (mini-C compiled to LSL by `cf-minic`), a bounded symbolic test
//! ([`TestSpec`], Fig. 8 notation) and a memory model
//! ([`cf_memmodel::Mode`]), the checker:
//!
//! 1. **mines the specification**: the set of observations (operation
//!    argument/return vectors) of all *serial* executions, via
//!    incremental SAT enumeration or concrete interleaving;
//! 2. **checks inclusion**: encodes *all* concurrent executions on the
//!    chosen model as a SAT formula (thread-local circuits + the
//!    axiomatic memory model of §2.3.2) and solves for an execution whose
//!    observation is not serializable, or which raises a runtime error
//!    (assertion failure, undefined-value use, invalid address);
//! 3. decodes **counterexample traces** in memory order when the check
//!    fails.
//!
//! The crate also implements the *commit-point method* of the authors'
//! earlier CAV 2006 paper as the baseline for the paper's Fig. 12 speed
//! comparison.
//!
//! ## Beyond the one-shot pipeline
//!
//! * [`query`] — **the public checking surface**: a composable
//!   [`Query`] value per question (mine / enumerate / inclusion /
//!   commit × model × fence and toggle assumption vectors) answered by
//!   an [`Engine`] pooling incremental [`CheckSession`]s per (harness,
//!   test, model universe), with batch sharding across worker threads
//!   and per-query solver attribution ([`QueryStats`]);
//! * [`CheckSession`] — the underlying incremental session: one
//!   persistent solver per (harness, test), with built-in
//!   [`cf_memmodel::Mode`]s and declarative [`cf_spec::ModelSpec`]s
//!   selected per query through assumption literals (encode once,
//!   solve many); its per-question method grid is deprecated in favor
//!   of [`query`];
//! * [`infer`] — automatic 1-minimal fence placement, candidate fences
//!   as activation literals on pooled sessions;
//! * [`mutate`] — batched Fig. 11-style mutation checking: statement
//!   deletions, fence weakenings and adjacent-operation swaps as
//!   per-site *toggle literals*, the whole mutant × model matrix
//!   answered as one engine batch;
//! * [`commit`] — the commit-point baseline.
//!
//! ## Example
//!
//! ```
//! use checkfence::{mine_reference, Harness, OpSig, Query, TestSpec};
//! use cf_memmodel::Mode;
//!
//! // A trivially racy "register" data type: set / get.
//! let program = cf_minic::compile(r#"
//!     int cell;
//!     void set_op(int v) { cell = v; }
//!     int get_op() { return cell; }
//! "#).expect("compiles");
//! let harness = Harness {
//!     name: "register".into(),
//!     program,
//!     init_proc: None,
//!     ops: vec![
//!         OpSig { key: 's', proc_name: "set_op".into(), num_args: 1, has_ret: false },
//!         OpSig { key: 'g', proc_name: "get_op".into(), num_args: 0, has_ret: true },
//!     ],
//! };
//! let test = TestSpec::parse("T", "( s | g )").expect("parses");
//! let spec = mine_reference(&harness, &test).expect("mines").spec;
//! let verdict = Query::check_inclusion(&harness, &test, spec)
//!     .on(Mode::Relaxed)
//!     .run()
//!     .expect("checks");
//! assert!(verdict.passed(), "a single racy register is serializable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod cnf;
mod encode;
mod fxhash;
mod mine;
mod range;
mod session;
mod spec_compile;
mod symexec;
mod term;
mod test_spec;

pub mod commit;
pub mod cycles;
pub mod infer;
pub mod mutate;
mod obs_text;
pub mod provenance;
pub mod query;

pub use checker::{
    CheckConfig, CheckError, CheckOutcome, Checker, Counterexample, FailureKind, InclusionResult,
    InconclusiveReason, MiningResult, ObsSet, PhaseStats, TraceStep,
};
pub use cnf::CnfBuilder;
pub use encode::{EncVal, Encoding, ModelSel, OrderEncoding};
pub use fxhash::{FxHashMap, FxHasher};
pub use mine::mine_reference;
pub use obs_text::ParseObsError;
pub use provenance::{Provenance, ProvenanceKind};
pub use query::{Answer, Engine, EngineConfig, EngineStats, Query, QueryKind, QueryStats, Verdict};
pub use range::{analyze, RangeInfo, ValueSet};
pub use session::{CheckSession, SessionConfig, SessionStats};
pub use symexec::{
    execute, ErrorCond, ErrorKind, Event, FenceEvt, LoopBounds, ObsEntry, ObsRole, SymExec,
    SymExecError, UnrollStats,
};
pub use term::{BTerm, BTermId, EventId, TermArena, VTerm, VTermId};
pub use test_spec::{Harness, OpInvocation, OpSig, ParseTestError, TestSpec};
