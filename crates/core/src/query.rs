//! The composable query API: one value type per question, one engine
//! for all of them.
//!
//! CheckFence's core loop is *encode once, answer many related
//! questions* (paper Fig. 6), but the session surface historically grew
//! one method per question shape: `check_inclusion` /
//! `enumerate_observations` × `_model` × `_toggled` × `_with_fences` ×
//! `_oneshot`, doubling with every new axis. This module collapses that
//! grid into two types:
//!
//! * [`Query`] — a declarative description of one question: the
//!   implementation ([`Harness`]) and symbolic test ([`TestSpec`]), the
//!   model ([`ModelSel`]: a built-in [`Mode`] or a declarative spec),
//!   the assumption vectors (active candidate-fence sites, active
//!   mutation toggles) and the question kind ([`QueryKind`]: mine,
//!   enumerate, inclusion check, commit-point method). All axes are
//!   orthogonal and builder-composable.
//! * [`Engine`] — a pool of [`CheckSession`]s keyed by (harness, test,
//!   model universe), the universe being engine-wide configuration
//!   ([`EngineConfig::modes`] + [`EngineConfig::specs`]).
//!   [`Engine::run`] answers one query; [`Engine::run_batch`] groups a
//!   mixed batch by session key, reuses live encodings across calls,
//!   and fans large groups out across worker threads (one session per
//!   worker shard, so every session still encodes exactly once).
//!
//! Every [`Verdict`] carries per-query solver attribution
//! ([`QueryStats`], computed with [`cf_sat::Stats::since`]) next to the
//! per-phase [`PhaseStats`], so batch drivers can report cost per
//! question instead of only session totals.
//!
//! # Examples
//!
//! One engine answering a mode sweep and a mutant from one encoding:
//!
//! ```
//! use checkfence::query::{Engine, EngineConfig, Query};
//! use checkfence::{Harness, OpSig, TestSpec};
//! use cf_memmodel::Mode;
//!
//! let program = cf_minic::compile(r#"
//!     int data; int flag;
//!     void put(int v) { data = v + 1; fence("store-store"); flag = 1; }
//!     int get() { int f = flag; fence("load-load");
//!                 if (f == 0) { return 0 - 1; } return data; }
//! "#).expect("compiles");
//! let harness = Harness {
//!     name: "mailbox".into(),
//!     program,
//!     init_proc: None,
//!     ops: vec![
//!         OpSig { key: 'p', proc_name: "put".into(), num_args: 1, has_ret: false },
//!         OpSig { key: 'g', proc_name: "get".into(), num_args: 0, has_ret: true },
//!     ],
//! };
//! let test = TestSpec::parse("pg", "( p | g )").expect("parses");
//!
//! let mut engine = Engine::new(EngineConfig::default());
//! let spec = engine
//!     .run(&Query::mine(&harness, &test))
//!     .expect("mines")
//!     .into_observations()
//!     .expect("mining yields observations");
//! let queries: Vec<Query> = Mode::hardware()
//!     .iter()
//!     .map(|&m| Query::check_inclusion(&harness, &test, spec.clone()).on(m))
//!     .collect();
//! for verdict in engine.run_batch(&queries) {
//!     assert!(verdict.expect("runs").passed(), "fenced mailbox passes");
//! }
//! // The mine + four checks shared one session and one encoding.
//! let stats = engine.stats();
//! assert_eq!(stats.sessions, 1);
//! assert_eq!(stats.encodes, 1);
//! assert_eq!(stats.queries, 5);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cf_memmodel::{Mode, ModeSet};
use cf_spec::ModelSpec;

use crate::checker::{
    CheckConfig, CheckError, CheckOutcome, Counterexample, InclusionResult, InconclusiveReason,
    ObsSet, PhaseStats,
};
use crate::commit::AbstractType;
use crate::encode::ModelSel;
use crate::provenance::{Provenance, ProvenanceKind};
use crate::session::{CheckSession, SessionConfig, SessionStats};
use crate::test_spec::{Harness, TestSpec};

/// The question a [`Query`] asks.
#[derive(Clone, Debug)]
pub enum QueryKind {
    /// Mine the specification: enumerate the observations of all
    /// error-free *serial* executions with the SAT encoding (§3.2).
    /// The model axis is ignored — mining always runs under Seriality.
    Mine,
    /// Enumerate the observations of all error-free executions under
    /// the query's model.
    Enumerate,
    /// Check that every execution under the query's model observes a
    /// member of `spec` and raises no runtime error.
    CheckInclusion {
        /// The specification (a mined observation set). Shared, so
        /// cloning a query for another cell of a matrix — the
        /// batch-building idiom — does not copy the set.
        spec: Arc<ObsSet>,
    },
    /// Run the commit-point method (the Fig. 12 baseline) against the
    /// given abstract machine. Requires a built-in model.
    CommitMethod {
        /// The abstract data type the machine simulates.
        ty: AbstractType,
    },
}

impl QueryKind {
    /// Short display name of the question.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Mine => "mine",
            QueryKind::Enumerate => "enumerate",
            QueryKind::CheckInclusion { .. } => "check",
            QueryKind::CommitMethod { .. } => "commit",
        }
    }
}

/// One declarative question about one (implementation, test) pair.
///
/// A query names every axis the engine can vary — the model, the active
/// candidate-fence sites, the active mutation toggles, and the question
/// kind — so drivers describe *what* they want answered and leave
/// session pooling, encoding reuse and parallel scheduling to the
/// [`Engine`].
#[derive(Clone, Debug)]
pub struct Query<'h> {
    harness: &'h Harness,
    test: &'h TestSpec,
    model: ModelSel,
    fences: Vec<u32>,
    toggles: Vec<u32>,
    kind: QueryKind,
    budget: Option<u64>,
    deadline: Option<Duration>,
    provenance: bool,
}

impl<'h> Query<'h> {
    fn with_kind(harness: &'h Harness, test: &'h TestSpec, kind: QueryKind) -> Query<'h> {
        Query {
            harness,
            test,
            model: ModelSel::Builtin(Mode::Relaxed),
            fences: Vec::new(),
            toggles: Vec::new(),
            kind,
            budget: None,
            deadline: None,
            provenance: false,
        }
    }

    /// A specification-mining query (SAT enumeration under Seriality).
    pub fn mine(harness: &'h Harness, test: &'h TestSpec) -> Query<'h> {
        Query::with_kind(harness, test, QueryKind::Mine)
    }

    /// An observation-enumeration query (defaults to `relaxed`; pick the
    /// model with [`Query::on`] / [`Query::on_model`]).
    pub fn enumerate(harness: &'h Harness, test: &'h TestSpec) -> Query<'h> {
        Query::with_kind(harness, test, QueryKind::Enumerate)
    }

    /// An inclusion-check query against `spec` (defaults to `relaxed`).
    /// The spec is stored behind an [`Arc`], so building a matrix by
    /// cloning one base query per cell shares it instead of copying.
    pub fn check_inclusion(
        harness: &'h Harness,
        test: &'h TestSpec,
        spec: impl Into<Arc<ObsSet>>,
    ) -> Query<'h> {
        Query::with_kind(
            harness,
            test,
            QueryKind::CheckInclusion { spec: spec.into() },
        )
    }

    /// A commit-point-method query (defaults to `relaxed`; built-in
    /// models only).
    pub fn commit_method(harness: &'h Harness, test: &'h TestSpec, ty: AbstractType) -> Query<'h> {
        Query::with_kind(harness, test, QueryKind::CommitMethod { ty })
    }

    /// Selects a built-in memory model (chainable).
    #[must_use]
    pub fn on(mut self, mode: Mode) -> Query<'h> {
        self.model = ModelSel::Builtin(mode);
        self
    }

    /// Selects any model of the engine's universe — a built-in mode or
    /// a declarative spec by its index in [`EngineConfig::specs`]
    /// (chainable).
    #[must_use]
    pub fn on_model(mut self, model: ModelSel) -> Query<'h> {
        self.model = model;
        self
    }

    /// Activates exactly the given candidate-fence sites
    /// ([`cf_lsl::Stmt::CandidateFence`]); all other sites stay inactive
    /// (chainable).
    #[must_use]
    pub fn with_fences(mut self, sites: &[u32]) -> Query<'h> {
        self.fences = sites.to_vec();
        self
    }

    /// Switches exactly the given mutation toggle sites
    /// ([`cf_lsl::Stmt::Toggle`]) to their mutant branch (chainable).
    #[must_use]
    pub fn with_toggles(mut self, sites: &[u32]) -> Query<'h> {
        self.toggles = sites.to_vec();
        self
    }

    /// Sets this query's initial tick budget, overriding
    /// [`CheckConfig::tick_budget`]. Ticks (solver propagations +
    /// conflicts) are deterministic: the same query against the same
    /// session state spends the same ticks on every machine. When the
    /// ladder of escalating retries (see [`CheckConfig::max_retries`])
    /// still exhausts the budget, the verdict is
    /// [`Answer::Inconclusive`] rather than an error (chainable).
    #[must_use]
    pub fn with_budget(mut self, ticks: u64) -> Query<'h> {
        self.budget = Some(ticks);
        self
    }

    /// Sets this query's wall-clock deadline, overriding
    /// [`CheckConfig::deadline`]. Unlike tick budgets, deadlines are
    /// machine-dependent; use them as a safety net, not for
    /// reproducible cutoffs (chainable).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Query<'h> {
        self.deadline = Some(deadline);
        self
    }

    /// Requests verdict [`Provenance`] for this query (chainable).
    /// Inclusion-check verdicts then carry the assumption core of the
    /// decisive solve mapped back to named artifacts — which fences,
    /// axioms, toggles and gates the proof (or witness) leaned on.
    /// Extraction adds **zero extra solves**; sessions answering
    /// provenance queries are pooled separately from plain ones, so a
    /// provenance-free query's verdict and solver statistics never
    /// change. See also [`EngineConfig::provenance`] for the
    /// engine-wide switch and [`CheckConfig::core_minimize_ticks`] for
    /// optional core minimization.
    #[must_use]
    pub fn with_provenance(mut self) -> Query<'h> {
        self.provenance = true;
        self
    }

    /// The implementation under test.
    pub fn harness(&self) -> &'h Harness {
        self.harness
    }

    /// The symbolic test.
    pub fn test(&self) -> &'h TestSpec {
        self.test
    }

    /// The selected model.
    pub fn model(&self) -> ModelSel {
        self.model
    }

    /// The question kind.
    pub fn kind(&self) -> &QueryKind {
        &self.kind
    }

    /// A short human-readable label (for per-query stats tables), e.g.
    /// `check treiber/U0@relaxed+t3`.
    pub fn describe(&self) -> String {
        let model = match self.model {
            ModelSel::Builtin(m) => m.name().to_string(),
            ModelSel::Spec(i) => format!("spec#{i}"),
        };
        let mut out = format!(
            "{} {}/{}@{model}",
            self.kind.name(),
            self.harness.name,
            self.test.name
        );
        for f in &self.fences {
            out.push_str(&format!("+f{f}"));
        }
        for t in &self.toggles {
            out.push_str(&format!("+t{t}"));
        }
        out
    }

    /// Answers this query on a throwaway single-use [`Engine`] whose
    /// universe holds exactly this query's model — the one-off
    /// convenience for tests and small tools, at the same encoding cost
    /// as the old one-shot checkers. Batch drivers should build an
    /// [`Engine`] and reuse it. Spec models need an engine configured
    /// with [`EngineConfig::specs`], so they cannot run through this
    /// helper.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    pub fn run(&self) -> Result<Verdict, CheckError> {
        let modes = match (&self.kind, self.model) {
            (QueryKind::Mine, _) => ModeSet::single(Mode::Serial),
            (_, ModelSel::Builtin(m)) => ModeSet::single(m),
            // Rejected by validate() on a spec-less engine anyway.
            (_, ModelSel::Spec(_)) => ModeSet::empty(),
        };
        Engine::new(EngineConfig {
            modes,
            ..EngineConfig::default()
        })
        .run(self)
    }
}

/// The payload of a [`Verdict`]: what the question produced.
#[derive(Clone, Debug)]
pub enum Answer {
    /// A pass/fail outcome (inclusion checks, the commit method).
    Outcome(CheckOutcome),
    /// An observation set (mining, enumeration).
    Observations(ObsSet),
    /// The engine ran out of resources before the question was decided
    /// — a first-class verdict, not an error, so batch drivers render a
    /// `?` cell and keep going instead of aborting the table.
    Inconclusive {
        /// Why the query could not be decided.
        reason: InconclusiveReason,
        /// Solver ticks spent across all retry attempts.
        spent: u64,
    },
}

/// Per-query solver attribution, measured with [`cf_sat::Stats::since`]
/// around exactly this query's solver activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Solver calls issued by this query (incl. bound-overflow probes).
    pub solves: u64,
    /// Conflicts attributable to this query.
    pub conflicts: u64,
    /// Restarts attributable to this query.
    pub restarts: u64,
    /// Propagations attributable to this query.
    pub propagations: u64,
    /// Assumption literals passed for this query.
    pub assumed_literals: u64,
    /// Wall-clock time of the query end to end (including retries).
    pub wall: Duration,
    /// Budget-escalation retries the engine spent on this query.
    pub retries: u32,
    /// The query never reached the solver: the static critical-cycle
    /// analysis discharged it ([`EngineConfig::static_triage`]). All
    /// solver counters are zero on a discharged query.
    pub statically_discharged: bool,
}

impl QueryStats {
    fn from_delta(delta: cf_sat::Stats, wall: Duration, retries: u32) -> QueryStats {
        QueryStats {
            solves: delta.solves,
            conflicts: delta.conflicts,
            restarts: delta.restarts,
            propagations: delta.propagations,
            assumed_literals: delta.assumed_literals,
            wall,
            retries,
            statically_discharged: false,
        }
    }
}

/// The unified result of one [`Query`]: the answer plus this query's
/// phase breakdown and solver attribution.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The answer payload.
    pub answer: Answer,
    /// Encode/solve/bound-round breakdown of the query.
    pub phase: PhaseStats,
    /// Per-query solver counters ([`cf_sat::Stats::since`] deltas).
    pub stats: QueryStats,
    /// What the verdict leaned on, when provenance was requested
    /// ([`Query::with_provenance`] / [`EngineConfig::provenance`]) and
    /// the query produced a pass/fail outcome. `None` for
    /// observation-shaped answers, inconclusive verdicts, statically
    /// discharged queries (their explanation is the cycle analysis, not
    /// an assumption core) and whenever provenance is off.
    pub provenance: Option<Provenance>,
}

impl Verdict {
    /// `true` unless the answer is a failing outcome. Inconclusive
    /// verdicts did not pass: nothing was proved.
    pub fn passed(&self) -> bool {
        match &self.answer {
            Answer::Outcome(o) => o.passed(),
            Answer::Observations(_) => true,
            Answer::Inconclusive { .. } => false,
        }
    }

    /// The pass/fail outcome, if the query produced one.
    pub fn outcome(&self) -> Option<&CheckOutcome> {
        match &self.answer {
            Answer::Outcome(o) => Some(o),
            _ => None,
        }
    }

    /// Consumes the verdict into its outcome.
    pub fn into_outcome(self) -> Option<CheckOutcome> {
        match self.answer {
            Answer::Outcome(o) => Some(o),
            _ => None,
        }
    }

    /// The observation set, if the query produced one.
    pub fn observations(&self) -> Option<&ObsSet> {
        match &self.answer {
            Answer::Observations(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the verdict into its observation set.
    pub fn into_observations(self) -> Option<ObsSet> {
        match self.answer {
            Answer::Observations(s) => Some(s),
            _ => None,
        }
    }

    /// The counterexample of a failing outcome.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.answer {
            Answer::Outcome(CheckOutcome::Fail(cx)) => Some(cx),
            _ => None,
        }
    }

    /// Why the query was left undecided, if it was.
    pub fn inconclusive(&self) -> Option<InconclusiveReason> {
        match &self.answer {
            Answer::Inconclusive { reason, .. } => Some(*reason),
            _ => None,
        }
    }

    /// Converts an inconclusive verdict back into the legacy
    /// [`CheckError::Exhausted`] error the deprecated one-query shims
    /// report, passing conclusive verdicts through.
    pub(crate) fn or_exhausted(self) -> Result<Verdict, CheckError> {
        match self.answer {
            Answer::Inconclusive { reason, .. } => Err(CheckError::Exhausted(reason)),
            _ => Ok(self),
        }
    }

    /// Consumes an outcome-shaped verdict into the legacy result type —
    /// the shared adapter of the deprecated shims.
    ///
    /// # Errors
    ///
    /// Inconclusive verdicts surface as [`CheckError::Exhausted`], the
    /// pre-verdict contract of the shims.
    ///
    /// # Panics
    ///
    /// Panics on an observation-shaped answer (mining/enumeration).
    pub(crate) fn into_inclusion_result(self) -> Result<InclusionResult, CheckError> {
        let Verdict { answer, phase, .. } = self;
        match answer {
            Answer::Outcome(outcome) => Ok(InclusionResult {
                outcome,
                stats: phase,
            }),
            Answer::Inconclusive { reason, .. } => Err(CheckError::Exhausted(reason)),
            Answer::Observations(_) => {
                unreachable!("outcome-shaped queries only")
            }
        }
    }
}

/// Configuration of an [`Engine`]: the model universe every pooled
/// session encodes, plus scheduling knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The built-in modes of the model universe. Every session the
    /// engine creates encodes exactly these (mode axioms are gated by
    /// selector literals, so a wide universe costs formula size, not
    /// re-encodes). Queries selecting a mode outside the universe are
    /// rejected with [`CheckError::BadQuery`]; mining queries need
    /// [`Mode::Serial`] in the set. Defaults to all five modes.
    pub modes: ModeSet,
    /// Declarative models of the universe ([`ModelSel::Spec`] indexes
    /// this list). Compiled into every session next to the built-ins.
    pub specs: Vec<ModelSpec>,
    /// Check settings (order encoding, bounds, budgets). The
    /// `memory_model` field is ignored — queries name their models.
    pub check: CheckConfig,
    /// Worker threads for [`Engine::run_batch`]. `0` and `1` both mean
    /// sequential. With more, large per-session query groups are
    /// sharded round-robin across workers, one session replica per
    /// shard (each replica encodes once — parallelism trades redundant
    /// encodings for wall-clock time).
    pub jobs: usize,
    /// Discharge inclusion checks on built-in models without solving
    /// when the static critical-cycle analysis ([`crate::cycles`])
    /// proves the test has **no critical cycle at all**: every
    /// execution under every built-in model is then
    /// conflict-serializable, so it reproduces the observations and
    /// error behavior of some serial execution and the check passes.
    ///
    /// **Opt-in**, default `false`: the argument is only sound when the
    /// query's spec is the *complete* serial observation set of the
    /// same (harness, test) — exactly what sweep drivers mine — not a
    /// hand-narrowed spec a serializable execution could still violate.
    /// A discharged verdict is always `Pass` with
    /// [`QueryStats::statically_discharged`] set; cells the analysis
    /// cannot prove robust fall through to the solver unchanged, and
    /// queries with fence/toggle assumption vectors or declarative
    /// models are never triaged.
    pub static_triage: bool,
    /// Engine-wide provenance: every query behaves as if it had
    /// [`Query::with_provenance`] set. Off by default; with it off,
    /// queries that do not individually request provenance run on
    /// provenance-free sessions with byte-identical verdicts and solver
    /// statistics.
    pub provenance: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            modes: ModeSet::all(),
            specs: Vec::new(),
            check: CheckConfig::default(),
            jobs: 1,
            static_triage: false,
            provenance: false,
        }
    }
}

impl EngineConfig {
    /// A universe holding a single built-in mode (the cheapest session
    /// for one-model drivers; mirrors the old one-shot encoding cost).
    pub fn single(mode: Mode) -> EngineConfig {
        EngineConfig {
            modes: ModeSet::single(mode),
            ..EngineConfig::default()
        }
    }

    /// An engine configuration derived from one-shot check settings,
    /// restricted to the given built-in universe.
    pub fn from_check_config(check: &CheckConfig, modes: ModeSet) -> EngineConfig {
        EngineConfig {
            modes,
            specs: Vec::new(),
            check: check.clone(),
            jobs: 1,
            static_triage: false,
            provenance: false,
        }
    }

    /// Sets the declarative-model pool (chainable).
    #[must_use]
    pub fn with_specs(mut self, specs: Vec<ModelSpec>) -> EngineConfig {
        self.specs = specs;
        self
    }

    /// Sets the worker-thread count (chainable).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> EngineConfig {
        self.jobs = jobs;
        self
    }

    /// Enables static critical-cycle triage (chainable); see
    /// [`EngineConfig::static_triage`] for the soundness contract.
    #[must_use]
    pub fn with_static_triage(mut self, on: bool) -> EngineConfig {
        self.static_triage = on;
        self
    }

    /// Enables engine-wide provenance (chainable); see
    /// [`EngineConfig::provenance`].
    #[must_use]
    pub fn with_provenance(mut self, on: bool) -> EngineConfig {
        self.provenance = on;
        self
    }
}

/// Aggregated pool counters: the amortization ledger of the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Live sessions in the pool (one per (harness, test, model
    /// universe, shard) key).
    pub sessions: usize,
    /// Symbolic executions across all sessions.
    pub symexecs: u32,
    /// CNF encodings built across all sessions (== `sessions` unless
    /// lazy unrolling grew a loop bound).
    pub encodes: u32,
    /// Queries answered across all sessions.
    pub queries: u32,
}

/// One pooled session: the key identifies the (harness, test, shard)
/// cell it answers (the model universe is engine-wide).
struct Slot<'h> {
    /// Address-identity of the harness (stable while the caller holds
    /// the `&'h` borrows the engine requires).
    hkey: usize,
    tkey: usize,
    shard: usize,
    /// Whether the session was built with provenance instrumentation.
    /// Part of the pool key: provenance queries must never reuse a
    /// plain session (no gates to extract) and plain queries must never
    /// reuse an instrumented one (its formula differs).
    prov: bool,
    session: CheckSession<'h>,
}

/// A pool of [`CheckSession`]s answering [`Query`] values.
///
/// Sessions are created lazily, keyed by (harness identity, test
/// identity, worker shard) — the model universe is fixed per engine —
/// and persist across [`Engine::run`] / [`Engine::run_batch`] calls,
/// so repeated batches on the same key reuse the live encoding.
pub struct Engine<'h> {
    config: EngineConfig,
    pool: Vec<Slot<'h>>,
}

impl<'h> Engine<'h> {
    /// Creates an engine with the given configuration (no sessions yet).
    pub fn new(config: EngineConfig) -> Engine<'h> {
        Engine {
            config,
            pool: Vec::new(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration, for adjusting resource
    /// governance (budgets, deadlines, retries) between batches. The
    /// model universe of already-pooled sessions is fixed — changing
    /// `modes`/`specs` mid-flight only affects sessions created later,
    /// so restrict mutation to the scheduling and budget knobs.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Aggregated amortization counters over the whole pool.
    pub fn stats(&self) -> EngineStats {
        let mut out = EngineStats {
            sessions: self.pool.len(),
            ..EngineStats::default()
        };
        for slot in &self.pool {
            let s: SessionStats = slot.session.stats();
            out.symexecs += s.symexecs;
            out.encodes += s.encodes;
            out.queries += s.queries;
        }
        out
    }

    /// Cumulative SAT statistics summed over every pooled solver.
    pub fn solver_stats(&self) -> cf_sat::Stats {
        let mut out = cf_sat::Stats::default();
        for slot in &self.pool {
            out.add(&slot.session.solver_stats());
        }
        out
    }

    /// Answers one query (on worker shard 0 of its pool key).
    ///
    /// # Errors
    ///
    /// Verification failures are answers ([`CheckOutcome::Fail`]);
    /// errors are infrastructure-level: invalid queries
    /// ([`CheckError::BadQuery`]), solver budget exhaustion, diverging
    /// loop bounds, serial bugs found while mining.
    pub fn run(&mut self, query: &Query<'h>) -> Result<Verdict, CheckError> {
        self.run_batch(std::slice::from_ref(query))
            .pop()
            .expect("one query in, one verdict out")
    }

    /// Answers a batch, returning verdicts in query order.
    ///
    /// Queries are grouped by (harness, test, model universe); each
    /// group runs on one pooled session, and with [`EngineConfig::jobs`]
    /// workers large groups are sharded round-robin across session
    /// replicas so a single big matrix parallelizes too. Per-query
    /// failures (including [`CheckError::BoundsDiverged`], which
    /// mutation drivers treat as a verdict) are returned in place, not
    /// propagated.
    pub fn run_batch(&mut self, queries: &[Query<'h>]) -> Vec<Result<Verdict, CheckError>> {
        let batch = cf_trace::next_batch();
        let batch_t0 = Instant::now();
        cf_trace::emit("batch_start", || {
            vec![("queries", cf_trace::u(queries.len() as u64))]
        });
        let mut results: Vec<Option<Result<Verdict, CheckError>>> = Vec::new();
        results.resize_with(queries.len(), || None);

        // Validate up front; invalid queries never touch the pool.
        let mut valid: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match self.validate(q) {
                Ok(()) => valid.push(i),
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        // Static triage (planning phase, coordinator lane): discharge
        // inclusion checks whose test has no critical cycle at all —
        // conflict-serializable under every built-in model, hence PASS
        // against its mined serial spec. Runs sequentially before any
        // sharding, so triage decisions and their trace events carry
        // the same deterministic coordinates at every `--jobs` level.
        if self.config.static_triage {
            let mut cache: Vec<(usize, usize, bool)> = Vec::new();
            valid.retain(|&i| {
                let q = &queries[i];
                if !matches!(q.kind, QueryKind::CheckInclusion { .. })
                    || !matches!(q.model, ModelSel::Builtin(_))
                    || !q.fences.is_empty()
                    || !q.toggles.is_empty()
                {
                    return true;
                }
                let (hkey, tkey) = (
                    std::ptr::from_ref(q.harness) as usize,
                    std::ptr::from_ref(q.test) as usize,
                );
                let robust = match cache.iter().find(|c| c.0 == hkey && c.1 == tkey) {
                    Some(c) => c.2,
                    None => {
                        let analysis = crate::cycles::analyze(q.harness, q.test);
                        let robust = analysis.robust_serializable();
                        cf_trace::emit("cycle_analysis", || {
                            vec![
                                ("consumer", cf_trace::s("triage")),
                                (
                                    "target",
                                    cf_trace::s(format!("{}/{}", q.harness.name, q.test.name)),
                                ),
                                ("cycles", cf_trace::u(analysis.cycles().len() as u64)),
                                ("reliable", cf_trace::u(analysis.reliable() as u64)),
                            ]
                        });
                        cache.push((hkey, tkey, robust));
                        robust
                    }
                };
                if !robust {
                    return true;
                }
                cf_trace::emit("triage", || {
                    vec![
                        ("query", cf_trace::u(i as u64 + 1)),
                        ("outcome", cf_trace::s("pass")),
                    ]
                });
                // Discharged queries close the `--profile` ledger: they
                // appear in the query_done stream as a zero-tick class
                // of their own instead of silently vanishing from it.
                cf_trace::emit("query_done", || {
                    vec![
                        ("class", cf_trace::s("discharged")),
                        ("outcome", cf_trace::s("pass")),
                        ("ticks", cf_trace::u(0)),
                        ("conflicts", cf_trace::u(0)),
                        ("propagations", cf_trace::u(0)),
                        ("solves", cf_trace::u(0)),
                        ("retries", cf_trace::u(0)),
                        ("wall_us", cf_trace::u(0)),
                    ]
                });
                results[i] = Some(Ok(Verdict {
                    answer: Answer::Outcome(CheckOutcome::Pass),
                    phase: PhaseStats::default(),
                    stats: QueryStats {
                        statically_discharged: true,
                        ..QueryStats::default()
                    },
                    provenance: None,
                }));
                false
            });
        }

        // Group by (harness, test, provenance) identity; the model
        // universe is engine-wide, so the pool key reduces to identity
        // + provenance bit + shard. Provenance queries get their own
        // (instrumented) sessions so plain queries keep byte-identical
        // formulas and stats.
        struct Group {
            hkey: usize,
            tkey: usize,
            prov: bool,
            members: Vec<usize>,
        }
        let mut groups: Vec<Group> = Vec::new();
        for &i in &valid {
            let q = &queries[i];
            let (hkey, tkey) = (
                std::ptr::from_ref(q.harness) as usize,
                std::ptr::from_ref(q.test) as usize,
            );
            let prov = self.config.provenance || q.provenance;
            let group = match groups
                .iter_mut()
                .find(|g| g.hkey == hkey && g.tkey == tkey && g.prov == prov)
            {
                Some(g) => g,
                None => {
                    groups.push(Group {
                        hkey,
                        tkey,
                        prov,
                        members: Vec::new(),
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            group.members.push(i);
        }

        // Shard each group across workers. Every task *owns* its
        // session for the duration of the batch (taken out of the pool,
        // returned afterwards), so a worker panic can poison at most
        // its own task's cell — never a neighbour's session.
        let jobs = self.config.jobs.max(1);
        let shard_size = valid.len().div_ceil(jobs).max(1);
        struct Task<'h> {
            hkey: usize,
            tkey: usize,
            shard: usize,
            prov: bool,
            /// `None` after a panic discarded the session; the task
            /// loop rebuilds it from the query's key.
            session: Mutex<Option<CheckSession<'h>>>,
            members: Vec<usize>,
        }
        let mut tasks: Vec<Task<'h>> = Vec::new();
        for g in &groups {
            let shards = g
                .members
                .len()
                .div_ceil(shard_size)
                .clamp(1, jobs.min(g.members.len().max(1)));
            for shard in 0..shards {
                let session =
                    self.take_session(g.hkey, g.tkey, shard, g.prov, &queries[g.members[0]]);
                let members: Vec<usize> = g
                    .members
                    .iter()
                    .enumerate()
                    .filter(|(pos, _)| pos % shards == shard)
                    .map(|(_, &i)| i)
                    .collect();
                cf_trace::emit_nd("shard_spawn", || {
                    vec![
                        ("shard", cf_trace::u(shard as u64)),
                        ("members", cf_trace::u(members.len() as u64)),
                    ]
                });
                tasks.push(Task {
                    hkey: g.hkey,
                    tkey: g.tkey,
                    shard,
                    prov: g.prov,
                    session: Mutex::new(Some(session)),
                    members,
                });
            }
        }

        // Results travel over a channel: unlike a shared Vec under a
        // Mutex, a panicking worker cannot poison the collection path —
        // everything sent before the unwind still arrives.
        let (tx, rx) = mpsc::channel::<(usize, Result<Verdict, CheckError>)>();
        let config = &self.config;
        let run_task =
            |task: &Task<'h>, tx: &mpsc::Sender<(usize, Result<Verdict, CheckError>)>| {
                let mut slot = task.session.lock().unwrap_or_else(|p| p.into_inner());
                for &i in &task.members {
                    // Item lane i+1: lane 0 is the coordinator. The scope
                    // pins every event of this query to its canonical
                    // (batch, item) coordinate regardless of which worker
                    // thread runs it, so traces sort identically at any
                    // `--jobs` level.
                    let _scope = cf_trace::enabled()
                        .then(|| cf_trace::scope(batch, i as u64 + 1, queries[i].describe()));
                    let _ = tx.send((i, exec_isolated(&mut slot, &queries[i], config)));
                }
            };
        if jobs <= 1 || tasks.len() <= 1 {
            for task in &tasks {
                run_task(task, &tx);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(tasks.len()) {
                    let tx = tx.clone();
                    let (next, tasks, run_task) = (&next, &tasks, &run_task);
                    scope.spawn(move || loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(t) else {
                            break;
                        };
                        run_task(task, &tx);
                    });
                }
            });
        }
        drop(tx);
        for (i, r) in rx.try_iter() {
            results[i] = Some(r);
        }

        // Return the surviving sessions to the pool. A session whose
        // second life also crashed stays discarded; the next batch on
        // its key starts fresh.
        for task in tasks {
            let session = task.session.into_inner().unwrap_or_else(|p| p.into_inner());
            if let Some(session) = session {
                self.pool.push(Slot {
                    hkey: task.hkey,
                    tkey: task.tkey,
                    shard: task.shard,
                    prov: task.prov,
                    session,
                });
            }
        }

        cf_trace::emit("batch_done", || {
            vec![(
                "batch_us",
                cf_trace::u(batch_t0.elapsed().as_micros() as u64),
            )]
        });
        results
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// Rejects queries outside the engine's model universe before any
    /// session work.
    fn validate(&self, q: &Query<'h>) -> Result<(), CheckError> {
        crate::checker::validate_test_shape(q.test)?;
        match q.model {
            ModelSel::Spec(i) => {
                if i >= self.config.specs.len() {
                    return Err(CheckError::BadQuery(format!(
                        "query selects spec #{i}, but the engine holds {} spec(s)",
                        self.config.specs.len()
                    )));
                }
                if matches!(q.kind, QueryKind::CommitMethod { .. }) {
                    return Err(CheckError::BadQuery(
                        "the commit-point method needs a built-in model".into(),
                    ));
                }
            }
            ModelSel::Builtin(m) => {
                if !matches!(q.kind, QueryKind::Mine) && !self.config.modes.contains(m) {
                    return Err(CheckError::BadQuery(format!(
                        "query selects mode `{}`, which is outside the engine's universe",
                        m.name()
                    )));
                }
            }
        }
        if matches!(q.kind, QueryKind::Mine) && !self.config.modes.contains(Mode::Serial) {
            return Err(CheckError::BadQuery(
                "mining queries need `serial` in the engine's universe".into(),
            ));
        }
        // Mine and CommitMethod run without assumption vectors; accepting
        // fences/toggles and silently answering for the unmutated build
        // would be a wrong answer, not a convenience.
        if matches!(q.kind, QueryKind::Mine | QueryKind::CommitMethod { .. })
            && !(q.fences.is_empty() && q.toggles.is_empty())
        {
            return Err(CheckError::BadQuery(format!(
                "`{}` queries do not support fence/toggle assumption vectors",
                q.kind.name()
            )));
        }
        Ok(())
    }

    /// Removes the pooled session for a key, creating it if the key is
    /// new. The caller owns the session for the batch and pushes the
    /// survivors back.
    fn take_session(
        &mut self,
        hkey: usize,
        tkey: usize,
        shard: usize,
        prov: bool,
        query: &Query<'h>,
    ) -> CheckSession<'h> {
        if let Some(i) = self
            .pool
            .iter()
            .position(|s| s.hkey == hkey && s.tkey == tkey && s.shard == shard && s.prov == prov)
        {
            return self.pool.swap_remove(i).session;
        }
        build_session(query, &self.config)
    }
}

/// Builds a fresh session for a query's (harness, test) key under the
/// engine's model universe — session creation and post-panic rebuild
/// share this path.
fn build_session<'h>(query: &Query<'h>, config: &EngineConfig) -> CheckSession<'h> {
    // Which thread (and when) a session gets built depends on shard
    // scheduling, so this is a non-deterministic detail event.
    cf_trace::emit_nd("session_spawn", || {
        vec![(
            "key",
            cf_trace::s(format!("{}/{}", query.harness.name, query.test.name)),
        )]
    });
    // Recomputing the provenance bit here (instead of threading it in)
    // keeps the post-panic rebuild path honest: a resubmitted provenance
    // query gets an instrumented session again, so a shard crash never
    // silently drops provenance.
    let sc = SessionConfig::from_check_config(&config.check, config.modes)
        .with_specs(config.specs.clone())
        .with_provenance(config.provenance || query.provenance);
    CheckSession::with_config(query.harness, query.test, sc)
}

/// Runs one query with panic isolation: a panicking session (a solver
/// bug, or an injected worker fault) is discarded and rebuilt from the
/// query's key, and the in-flight query is resubmitted once. If the
/// retry dies too, only this query degrades — to
/// [`InconclusiveReason::ShardCrashed`] — and the slot stays empty for
/// the remaining members, each rebuilding at most once more.
fn exec_isolated<'h>(
    slot: &mut Option<CheckSession<'h>>,
    query: &Query<'h>,
    config: &EngineConfig,
) -> Result<Verdict, CheckError> {
    // The phase accumulator lives outside the resubmit loop so a
    // crashed-shard verdict still reports the encode/solve work done
    // before the panic instead of an all-zero placeholder.
    let mut phase = PhaseStats::default();
    for resubmit in 0..2u64 {
        let session = slot.get_or_insert_with(|| build_session(query, config));
        #[cfg(feature = "faults")]
        let injected = cf_sat::faults::hit(&format!("worker:{}", query.describe()));
        // AssertUnwindSafe: on unwind the session is dropped below and
        // never observed again, so torn state cannot leak.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "faults")]
            if injected == Some(cf_sat::faults::FaultKind::Panic) {
                panic!("injected worker fault: {}", query.describe());
            }
            exec(session, query, &config.check, &mut phase)
        }));
        match attempt {
            Ok(result) => return result,
            Err(_) => {
                *slot = None;
                cf_trace::emit("shard_crash", || vec![("resubmit", cf_trace::u(resubmit))]);
            }
        }
    }
    cf_trace::emit("query_done", || {
        vec![
            ("class", cf_trace::s(query.kind.name())),
            ("outcome", cf_trace::s("inconclusive")),
            ("reason", cf_trace::s("shard-crashed")),
            ("ticks", cf_trace::u(0)),
            ("conflicts", cf_trace::u(0)),
            ("propagations", cf_trace::u(0)),
            ("solves", cf_trace::u(0)),
            ("retries", cf_trace::u(0)),
            ("wall_us", cf_trace::u(0)),
        ]
    });
    Ok(Verdict {
        answer: Answer::Inconclusive {
            reason: InconclusiveReason::ShardCrashed,
            spent: 0,
        },
        phase,
        stats: QueryStats::default(),
        provenance: None,
    })
}

/// Runs one query on its session with the escalating retry ladder,
/// attributing solver work and wall time across all attempts.
///
/// Attempt `n` runs with the base budgets (the query's override, else
/// the engine's [`CheckConfig`]) scaled by `retry_growth^n`; the
/// wall-clock deadline, if any, is re-armed fresh per attempt so a
/// transient stall does not starve the retry. When the last permitted
/// attempt still exhausts, the query resolves to
/// [`Answer::Inconclusive`] with the ticks spent across every attempt.
fn exec(
    session: &mut CheckSession<'_>,
    query: &Query<'_>,
    check: &CheckConfig,
    phase: &mut PhaseStats,
) -> Result<Verdict, CheckError> {
    let t0 = Instant::now();
    let before = session.solver_stats();
    let base_ticks = query.budget.or(check.tick_budget);
    let base_conflicts = check.conflict_budget;
    let deadline = query.deadline.or(check.deadline);
    let mut scale: u64 = 1;
    let mut retries: u32 = 0;
    cf_trace::emit("query_start", || {
        vec![
            ("class", cf_trace::s(query.kind.name())),
            (
                "model",
                cf_trace::s(match query.model {
                    ModelSel::Builtin(m) => m.name().to_string(),
                    ModelSel::Spec(i) => format!("spec#{i}"),
                }),
            ),
        ]
    });
    let done = |delta: cf_sat::Stats,
                outcome: &'static str,
                reason: Option<String>,
                retries: u32,
                wall: Duration| {
        cf_trace::emit("query_done", || {
            let mut fields = vec![
                ("class", cf_trace::s(query.kind.name())),
                ("outcome", cf_trace::s(outcome)),
            ];
            if let Some(r) = reason {
                fields.push(("reason", cf_trace::s(r)));
            }
            fields.extend([
                ("ticks", cf_trace::u(delta.ticks())),
                ("conflicts", cf_trace::u(delta.conflicts)),
                ("propagations", cf_trace::u(delta.propagations)),
                ("solves", cf_trace::u(delta.solves)),
                ("retries", cf_trace::u(u64::from(retries))),
                ("wall_us", cf_trace::u(wall.as_micros() as u64)),
            ]);
            fields
        });
    };
    loop {
        session.config.tick_budget = base_ticks.map(|b| b.saturating_mul(scale));
        session.config.conflict_budget = base_conflicts.map(|b| b.saturating_mul(scale));
        session.config.deadline_at = deadline.map(|d| Instant::now() + d);
        cf_trace::emit("attempt", || {
            let mut fields = vec![("n", cf_trace::u(u64::from(retries)))];
            if let Some(b) = session.config.tick_budget {
                fields.push(("tick_budget", cf_trace::u(b)));
            }
            fields
        });
        match exec_once(session, query, phase) {
            Err(CheckError::Exhausted(reason)) => {
                if retries < check.max_retries {
                    retries += 1;
                    scale = scale.saturating_mul(check.retry_growth.max(1));
                    cf_trace::emit("retry", || {
                        vec![
                            ("attempt", cf_trace::u(u64::from(retries))),
                            ("reason", cf_trace::s(reason.slug())),
                            (
                                "spent",
                                cf_trace::u(session.solver_stats().since(&before).ticks()),
                            ),
                        ]
                    });
                    continue;
                }
                let delta = session.solver_stats().since(&before);
                phase.total_time = t0.elapsed();
                done(
                    delta,
                    "inconclusive",
                    Some(reason.slug().to_string()),
                    retries,
                    t0.elapsed(),
                );
                // Drop any provenance a half-finished attempt left
                // behind; an inconclusive verdict proves nothing.
                let _ = session.take_provenance();
                return Ok(Verdict {
                    answer: Answer::Inconclusive {
                        reason,
                        spent: delta.ticks(),
                    },
                    phase: phase.clone(),
                    stats: QueryStats::from_delta(delta, t0.elapsed(), retries),
                    provenance: None,
                });
            }
            Err(e) => {
                let delta = session.solver_stats().since(&before);
                phase.total_time = t0.elapsed();
                done(delta, "error", None, retries, t0.elapsed());
                return Err(e);
            }
            Ok(answer) => {
                let delta = session.solver_stats().since(&before);
                phase.total_time = t0.elapsed();
                let outcome = match &answer {
                    Answer::Outcome(o) if o.passed() => "pass",
                    Answer::Outcome(_) => "fail",
                    Answer::Observations(_) => "observations",
                    Answer::Inconclusive { .. } => "inconclusive",
                };
                done(delta, outcome, None, retries, t0.elapsed());
                let provenance = session.take_provenance();
                if let Some(p) = &provenance {
                    cf_trace::emit("provenance", || {
                        vec![
                            (
                                "kind",
                                cf_trace::s(match p.kind {
                                    ProvenanceKind::Proof => "proof",
                                    ProvenanceKind::Witness => "witness",
                                }),
                            ),
                            ("core_size", cf_trace::u(p.core_size as u64)),
                            ("minimized", cf_trace::u(u64::from(p.minimized))),
                            ("uses", cf_trace::s(p.summary())),
                        ]
                    });
                }
                return Ok(Verdict {
                    answer,
                    phase: phase.clone(),
                    stats: QueryStats::from_delta(delta, t0.elapsed(), retries),
                    provenance,
                });
            }
        }
    }
}

/// One un-retried attempt at a query: dispatch by kind, plus the
/// `solve:` fault hook (synthetic exhaustion consumes no solver work;
/// a stall sleeps here, *after* the deadline was armed, so the solver's
/// own deadline check is what trips). Phase timings accumulate into
/// `phase` on every path, so exhausted and crashed attempts keep their
/// partial attribution.
fn exec_once(
    session: &mut CheckSession<'_>,
    query: &Query<'_>,
    phase: &mut PhaseStats,
) -> Result<Answer, CheckError> {
    #[cfg(feature = "faults")]
    match cf_sat::faults::hit(&format!("solve:{}", query.describe())) {
        Some(cf_sat::faults::FaultKind::Exhaust) => {
            return Err(CheckError::Exhausted(InconclusiveReason::Budget));
        }
        Some(cf_sat::faults::FaultKind::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(cf_sat::faults::FaultKind::Panic) => {
            panic!("injected solve fault: {}", query.describe());
        }
        None => {}
    }
    match &query.kind {
        QueryKind::Mine => session.query_mine(phase).map(Answer::Observations),
        QueryKind::Enumerate => session
            .query_enumerate(query.model, &query.fences, &query.toggles, phase)
            .map(Answer::Observations),
        QueryKind::CheckInclusion { spec } => session
            .query_inclusion(
                query.model,
                spec.as_ref(),
                &query.fences,
                &query.toggles,
                phase,
            )
            .map(Answer::Outcome),
        QueryKind::CommitMethod { ty } => {
            let ModelSel::Builtin(mode) = query.model else {
                unreachable!("validated: commit queries use built-in models");
            };
            session.query_commit(mode, *ty, phase).map(Answer::Outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_spec::OpSig;

    fn mailbox() -> (Harness, TestSpec) {
        let program = cf_minic::compile(
            r#"
            int data; int flag;
            void put(int v) { data = v + 1; fence("store-store"); flag = 1; }
            int get() { int f = flag; fence("load-load");
                        if (f == 0) { return 0 - 1; } return data; }
            "#,
        )
        .expect("compiles");
        let harness = Harness {
            name: "mailbox".into(),
            program,
            init_proc: None,
            ops: vec![
                OpSig {
                    key: 'p',
                    proc_name: "put".into(),
                    num_args: 1,
                    has_ret: false,
                },
                OpSig {
                    key: 'g',
                    proc_name: "get".into(),
                    num_args: 0,
                    has_ret: true,
                },
            ],
        };
        let test = TestSpec::parse("pg", "( p | g )").expect("parses");
        (harness, test)
    }

    #[test]
    fn queries_outside_the_universe_fail_fast() {
        let (h, t) = mailbox();
        let mut engine = Engine::new(EngineConfig::single(Mode::Tso));
        // A mode the engine does not encode.
        let err = engine
            .run(&Query::enumerate(&h, &t).on(Mode::Relaxed))
            .expect_err("relaxed is outside the universe");
        assert!(matches!(err, CheckError::BadQuery(_)), "{err}");
        // A spec index the engine does not hold.
        let err = engine
            .run(&Query::enumerate(&h, &t).on_model(ModelSel::Spec(0)))
            .expect_err("no specs configured");
        assert!(matches!(err, CheckError::BadQuery(_)), "{err}");
        // Mining needs Seriality in the universe.
        let err = engine
            .run(&Query::mine(&h, &t))
            .expect_err("serial is outside the universe");
        assert!(matches!(err, CheckError::BadQuery(_)), "{err}");
        // Nothing above touched the pool.
        assert_eq!(engine.stats().sessions, 0);
    }

    #[test]
    fn assumption_vectors_are_rejected_on_kinds_that_ignore_them() {
        // Mine and CommitMethod run without fence/toggle assumptions;
        // silently answering for the unmutated build would be a wrong
        // answer, so the engine must refuse.
        let (h, t) = mailbox();
        let mut engine = Engine::new(EngineConfig::default());
        let err = engine
            .run(&Query::mine(&h, &t).with_toggles(&[0]))
            .expect_err("mine ignores toggles");
        assert!(matches!(err, CheckError::BadQuery(_)), "{err}");
        let err = engine
            .run(
                &Query::commit_method(&h, &t, AbstractType::Queue)
                    .on(Mode::Sc)
                    .with_fences(&[0]),
            )
            .expect_err("commit ignores fences");
        assert!(matches!(err, CheckError::BadQuery(_)), "{err}");
    }
}
